//! `coane-cli` — end-to-end command-line workflow:
//!
//! ```text
//! # 1. get a graph (synthetic preset, or bring your own LINQS/edge-list files)
//! coane-cli generate --preset cora --scale 0.2 --seed 42 --out graph.json
//! coane-cli generate --preset scale --nodes 1000000 --seed 42 --out big.json
//! coane-cli convert  --content cora.content --cites cora.cites --out graph.json
//! coane-cli convert  --edges graph.edges --out graph.json
//!
//! # 2. embed it (--threads is a pure speed knob: output is bit-identical)
//! coane-cli embed --graph graph.json --method coane --dim 128 --epochs 10 \
//!                 --threads 4 --out embedding.csv
//!
//! # 2b. embed under a memory budget (streamed walks, blocked co-occurrence,
//! #     budgeted context-row cache — output stays bit-identical)
//! coane-cli embed --graph big.json --method coane --out embedding.csv \
//!                 --walk-block 4096 --coocc-block 65536 \
//!                 --max-cache-bytes 2000000000
//!
//! # 2a. observability: per-epoch progress on stderr, structured JSONL
//! #     telemetry (per-epoch loss terms, throughput, phase timings), or
//! #     silence — none of it changes the embedding by a single bit
//! coane-cli embed --graph graph.json --method coane --out embedding.csv \
//!                 --log-every 1 --metrics-json metrics.jsonl
//! coane-cli embed --graph graph.json --method coane --out embedding.csv --quiet
//!
//! # 2b. long runs: checkpoint every epoch; re-running the same command after
//! #     an interruption resumes from the newest valid checkpoint and yields
//! #     bit-identical output to an uninterrupted run
//! coane-cli embed --graph graph.json --method coane --out embedding.csv \
//!                 --checkpoint-dir ckpts --checkpoint-every 1
//!
//! # 3. evaluate
//! coane-cli evaluate --graph graph.json --embedding embedding.csv --task cluster
//! coane-cli evaluate --graph graph.json --embedding embedding.csv --task classify --ratio 0.2
//!
//! # 4. (CoANE only) persist the trained model, embed new nodes later
//! coane-cli embed --graph graph.json --method coane --out embedding.csv \
//!                 --save-model model.json
//! coane-cli infer --model model.json --graph extended.json --nodes 300,301 \
//!                 --out new_embeddings.csv
//!
//! # 5. serve it: pack the embedding into a binary store, start the HTTP
//! #    server (kNN / link scoring / inductive encoding), query it
//! coane-cli export-store --embedding embedding.csv --out embedding.store
//! coane-cli serve --store embedding.store --model model.json --graph graph.json \
//!                 --addr 127.0.0.1:0 --addr-file server.addr
//! coane-cli query --addr-file server.addr --route knn --body '{"ids":[0],"k":5}'
//! coane-cli query --addr-file server.addr --route shutdown
//!
//! # 5c. quantized serving: pack (or load) the store at f16/int8 precision —
//! #     the ANN path scans 2–4× fewer bytes and every answer is re-ranked
//! #     against the exact f32 sidecar (top k·rerank-factor candidates), so
//! #     final scores are full-precision either way
//! coane-cli export-store --embedding embedding.csv --out embedding.store \
//!                 --precision int8
//! coane-cli serve --store embedding.store --precision int8 --rerank-factor 4 \
//!                 --addr 127.0.0.1:0 --addr-file server.addr
//!
//! # 5b. mutable serving: accept live upserts and tombstone deletes,
//! #     journaled to a CRC-checked write-ahead log under --data-dir and
//! #     folded into fresh on-disk generations every --compact-every
//! #     mutations. kill -9 at any instant and restart with the same
//! #     --data-dir: the server comes back with exactly the acked prefix.
//! coane-cli serve --store embedding.store --mutable --data-dir server-data \
//!                 --compact-every 64 --addr 127.0.0.1:0 --addr-file server.addr
//! coane-cli query --addr-file server.addr --route upsert \
//!                 --body '{"nodes":[{"id":9001,"vector":[0.1,0.2,0.3]}]}'
//! coane-cli query --addr-file server.addr --route delete --body '{"ids":[9001]}'
//!
//! # 5a. load mode: N keep-alive clients hammer one route concurrently and a
//! #     JSON summary (qps, ok/shed/failed counts) lands on stdout. Shed
//! #     requests (HTTP 429) are counted, not fatal — the server is
//! #     load-shedding, not broken.
//! coane-cli query --addr-file server.addr --route knn \
//!                 --body '{"ids":[0],"k":5}' --concurrency 8 --repeat 50
//! ```
//!
//! Output discipline: stdout carries only *results* (evaluation scores);
//! progress, summaries, and telemetry go to stderr or the `--metrics-json`
//! sink, so every command stays pipe-clean. `--quiet` silences the progress
//! stream entirely (errors still reach stderr).
//!
//! Failures map to stable exit codes by error kind: 2 = invalid
//! configuration/usage, 3 = I/O, 4 = parse, 5 = graph structure,
//! 6 = numeric, 7 = checkpoint, 8 = embedding store, 9 = server busy
//! (load shed — retry later), 10 = unusable mutation log / generation
//! state (see `CoaneError::exit_code`).
//!
//! (Link prediction needs the split to happen *before* embedding; use the
//! `exp_linkpred` harness binary or the library API for that protocol.)

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use coane::prelude::*;
use coane::{baselines::skipgram::SkipGramConfig, eval, graph::io as gio};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Flags that never take a value.
const BOOL_FLAGS: &[&str] = &["quiet", "mutable"];

struct Cli {
    values: HashMap<String, String>,
}

impl Cli {
    fn parse(args: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut i = 0usize;
        while i < args.len() {
            if let Some(k) = args[i].strip_prefix("--") {
                if BOOL_FLAGS.contains(&k) {
                    values.insert(k.to_string(), "true".to_string());
                    i += 1;
                    continue;
                }
                if i + 1 < args.len() {
                    values.insert(k.to_string(), args[i + 1].clone());
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        Self { values }
    }

    fn get(&self, k: &str) -> Option<&str> {
        self.values.get(k).map(String::as_str)
    }

    fn req(&self, k: &str) -> Result<&str, CoaneError> {
        self.get(k).ok_or_else(|| CoaneError::config(format!("missing required flag --{k}")))
    }

    fn num<T: std::str::FromStr>(&self, k: &str, default: T) -> T {
        self.get(k).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn flag(&self, k: &str) -> bool {
        self.get(k).is_some()
    }
}

/// Progress sink: everything goes to stderr (stdout is reserved for
/// results), and `--quiet` drops it entirely.
struct Log {
    quiet: bool,
}

impl Log {
    fn new(cli: &Cli) -> Self {
        Self { quiet: cli.flag("quiet") }
    }

    fn info(&self, msg: impl std::fmt::Display) {
        if !self.quiet {
            eprintln!("{msg}");
        }
    }
}

/// Builds the observer for a command: enabled iff telemetry has somewhere
/// to go (`--metrics-json`) or something to drive (`--log-every`).
fn observer(cli: &Cli) -> Obs {
    if cli.get("metrics-json").is_some() || cli.num("log-every", 0usize) > 0 {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// Writes the JSONL telemetry stream to `--metrics-json` (if given) and
/// prints the human-readable summary to stderr (unless `--quiet`).
fn finish_metrics(cli: &Cli, log: &Log, obs: &Obs) -> Result<(), CoaneError> {
    if !obs.is_enabled() {
        return Ok(());
    }
    if let Some(path) = cli.get("metrics-json") {
        let mut file =
            std::fs::File::create(path).map_err(|e| CoaneError::io(Path::new(path), e))?;
        obs.write_jsonl(&mut file).map_err(|e| CoaneError::io(Path::new(path), e))?;
        log.info(format!("wrote telemetry to {path} ({} event(s))", obs.num_events()));
    }
    if !log.quiet {
        eprint!("{}", obs.summary());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!(
            "usage: coane-cli <generate|convert|embed|infer|evaluate|export-store|serve|query> [flags]"
        );
        return ExitCode::from(2);
    };
    let cli = Cli::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&cli),
        "convert" => cmd_convert(&cli),
        "embed" => cmd_embed(&cli),
        "infer" => cmd_infer(&cli),
        "evaluate" => cmd_evaluate(&cli),
        "export-store" => cmd_export_store(&cli),
        "serve" => cmd_serve(&cli),
        "query" => cmd_query(&cli),
        other => Err(CoaneError::config(format!("unknown command: {other}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn print_graph_summary(log: &Log, out: &str, graph: &AttributedGraph) {
    log.info(format!(
        "wrote {out}: {} nodes, {} edges, {} attrs, {} labels",
        graph.num_nodes(),
        graph.num_edges(),
        graph.attr_dim(),
        graph.num_labels()
    ));
}

fn cmd_generate(cli: &Cli) -> Result<(), CoaneError> {
    let seed: u64 = cli.num("seed", 42);
    let out = cli.req("out")?;
    let name = cli.req("preset")?;
    // `--preset scale --nodes N` is the parameterized million-node
    // generator (power-law degrees, planted communities, latent-factor
    // attributes); everything else is a fixed citation-network preset.
    let graph = if name.eq_ignore_ascii_case("scale") {
        let cfg = coane::datasets::ScaleConfig {
            seed,
            ..coane::datasets::ScaleConfig::with_nodes(cli.num("nodes", 100_000usize))
        };
        coane::datasets::scale_graph(&cfg).0
    } else {
        let preset = Preset::parse(name).ok_or_else(|| {
            CoaneError::config(
                "unknown preset (try: cora, citeseer, pubmed, webkb-cornell, flickr, scale)",
            )
        })?;
        let scale: f64 = cli.num("scale", 1.0);
        preset.generate_scaled(scale, seed).0
    };
    gio::save_json(&graph, Path::new(out))?;
    print_graph_summary(&Log::new(cli), out, &graph);
    Ok(())
}

fn cmd_convert(cli: &Cli) -> Result<(), CoaneError> {
    let out = cli.req("out")?;
    let graph = if let Some(edges) = cli.get("edges") {
        // Whitespace-separated `u v [w]` lines; `--nodes N` pins the node
        // count (ids >= N are then rejected instead of growing the graph).
        let num_nodes = cli.get("nodes").map(|v| v.parse::<usize>()).transpose().map_err(|e| {
            CoaneError::config(format!("--nodes must be a non-negative integer: {e}"))
        })?;
        gio::load_edge_list(Path::new(edges), num_nodes)?
    } else {
        let content = cli.req("content")?;
        let cites = cli.req("cites")?;
        gio::load_linqs(Path::new(content), Path::new(cites))?
    };
    gio::save_json(&graph, Path::new(out))?;
    print_graph_summary(&Log::new(cli), out, &graph);
    Ok(())
}

fn cmd_embed(cli: &Cli) -> Result<(), CoaneError> {
    let log = Log::new(cli);
    let obs = observer(cli);
    let graph = gio::load_json(Path::new(cli.req("graph")?))?;
    let method = cli.get("method").unwrap_or("coane").to_lowercase();
    let dim: usize = cli.num("dim", 128);
    let epochs: usize = cli.num("epochs", 10);
    let seed: u64 = cli.num("seed", 42);
    let threads: usize = cli.num("threads", CoaneConfig::default().threads);
    let log_every: usize = cli.num("log-every", 0);
    // Pure performance knob — embeddings are bit-identical for any value.
    coane::nn::pool::set_threads(threads);
    let out = cli.req("out")?;
    obs.event("run", &run_record(&method, &graph));
    let started = std::time::Instant::now();
    let embedding = match method.as_str() {
        "coane" => {
            let cfg = CoaneConfig {
                embed_dim: dim,
                epochs,
                seed,
                threads,
                // Memory-scaling knobs (DESIGN.md §2.12). All three are
                // bit-transparent: any setting reproduces the default
                // output exactly.
                max_cache_bytes: cli.num("max-cache-bytes", 0usize),
                walk_block_size: cli.num("walk-block", 0usize),
                coocc_block_size: cli.num("coocc-block", 0usize),
                ..Default::default()
            };
            let trainer = Coane::try_new(cfg.clone())?.with_observer(obs.clone());
            let ck = cli.get("checkpoint-dir").map(|dir| CheckpointConfig {
                every_epochs: cli.num("checkpoint-every", 1),
                ..CheckpointConfig::new(dir)
            });
            // `--log-every` reads its numbers straight out of the telemetry
            // stream: the trainer has already emitted this epoch's record by
            // the time the callback runs.
            let on_epoch = |e: usize, _z: &Matrix| {
                if log_every > 0 && (e + 1).is_multiple_of(log_every) {
                    match epoch_loss_from(&obs) {
                        Some((loss, secs)) => log
                            .info(format!("epoch {}/{epochs}: loss {loss:.4} ({secs:.2}s)", e + 1)),
                        None => log.info(format!("epoch {}/{epochs} done", e + 1)),
                    }
                }
            };
            let (z, model, stats) = trainer.try_fit_full(&graph, ck.as_ref(), on_epoch)?;
            if let Some(e) = stats.resumed_from_epoch {
                log.info(format!("resumed from checkpoint at epoch {e}"));
            }
            if stats.recoveries > 0 {
                log.info(format!(
                    "recovered from non-finite loss {} time(s); final lr {:e}",
                    stats.recoveries, stats.final_lr
                ));
            }
            if let Some(ck) = &ck {
                log.info(format!(
                    "wrote {} checkpoint(s) to {}",
                    stats.checkpoints_written,
                    ck.dir.display()
                ));
            }
            if let Some(model_path) = cli.get("save-model") {
                coane::core::save_model(Path::new(model_path), &model, &cfg, graph.attr_dim())?;
                log.info(format!("saved model to {model_path}"));
            }
            z
        }
        "deepwalk" => DeepWalk { config: SkipGramConfig { dim, seed, ..Default::default() } }
            .embed_observed(&graph, &obs),
        "node2vec" => Node2Vec {
            config: SkipGramConfig { dim, seed, ..Default::default() },
            p: cli.num("p", 1.0f32),
            q: cli.num("q", 1.0f32),
        }
        .embed_observed(&graph, &obs),
        "line" => Line { dim, seed, ..Default::default() }.embed_observed(&graph, &obs),
        "gae" => Gae { kind: GaeKind::Plain, dim, epochs: epochs * 10, seed, ..Default::default() }
            .embed_observed(&graph, &obs),
        "vgae" => {
            Gae { kind: GaeKind::Variational, dim, epochs: epochs * 10, seed, ..Default::default() }
                .embed_observed(&graph, &obs)
        }
        "graphsage" => GraphSage { dim, epochs: epochs * 6, seed, ..Default::default() }
            .embed_observed(&graph, &obs),
        "asne" => Asne { dim, epochs, seed, ..Default::default() }.embed_observed(&graph, &obs),
        "dane" => Dane { dim, epochs, seed, ..Default::default() }.embed_observed(&graph, &obs),
        "anrl" => Anrl { dim, epochs, seed, ..Default::default() }.embed_observed(&graph, &obs),
        "stne" => Stne { dim, epochs, seed, ..Default::default() }.embed_observed(&graph, &obs),
        "arga" => Arga { epochs: epochs * 10, dim, seed, ..Default::default() }
            .embed_observed(&graph, &obs),
        "arvga" => Arga { variational: true, epochs: epochs * 10, dim, seed, ..Default::default() }
            .embed_observed(&graph, &obs),
        other => return Err(CoaneError::config(format!("unknown method: {other}"))),
    };
    eval::io::save_embedding_csv(Path::new(out), embedding.as_slice(), embedding.cols())
        .map_err(|e| CoaneError::io(Path::new(out), e))?;
    log.info(format!(
        "wrote {out}: {}×{} embedding ({} via {method}, {:.1}s)",
        embedding.rows(),
        embedding.cols(),
        graph.num_nodes(),
        started.elapsed().as_secs_f64()
    ));
    finish_metrics(cli, &log, &obs)
}

/// Run-level telemetry record: method and graph shape.
fn run_record(method: &str, graph: &AttributedGraph) -> coane::obs::Value {
    use coane::obs::Value;
    let mut m = std::collections::BTreeMap::new();
    m.insert("method".to_string(), Value::String(method.to_string()));
    m.insert("nodes".to_string(), Value::Number(graph.num_nodes() as f64));
    m.insert("edges".to_string(), Value::Number(graph.num_edges() as f64));
    m.insert("attrs".to_string(), Value::Number(graph.attr_dim() as f64));
    Value::Object(m)
}

/// Pulls `(loss, seconds)` out of the most recent per-epoch telemetry
/// record, if one exists.
fn epoch_loss_from(obs: &Obs) -> Option<(f64, f64)> {
    use coane::obs::Value;
    let events = obs.events_of("epoch");
    let Value::Object(m) = events.last()? else { return None };
    let num = |k: &str| match m.get(k) {
        Some(Value::Number(x)) => Some(*x),
        _ => None,
    };
    Some((num("loss")?, num("seconds")?))
}

fn cmd_infer(cli: &Cli) -> Result<(), CoaneError> {
    let log = Log::new(cli);
    let obs = observer(cli);
    let (model, cfg) = coane::core::load_model(Path::new(cli.req("model")?))?;
    let graph = gio::load_json(Path::new(cli.req("graph")?))?;
    let nodes: Vec<u32> = match cli.get("nodes") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map_err(|e| CoaneError::config(format!("bad node id {t:?}: {e}")))
            })
            .collect::<Result<_, _>>()?,
        None => (0..graph.num_nodes() as u32).collect(),
    };
    if let Some(&bad) = nodes.iter().find(|&&v| v as usize >= graph.num_nodes()) {
        return Err(CoaneError::graph(format!(
            "node {bad} out of range (graph has {})",
            graph.num_nodes()
        )));
    }
    let out = cli.req("out")?;
    let z = coane::core::embed_nodes_obs(&model, &cfg, &graph, &nodes, &obs);
    eval::io::save_embedding_csv(Path::new(out), z.as_slice(), z.cols())
        .map_err(|e| CoaneError::io(Path::new(out), e))?;
    log.info(format!("wrote {out}: {} inductively embedded nodes × {}", z.rows(), z.cols()));
    finish_metrics(cli, &log, &obs)
}

fn cmd_evaluate(cli: &Cli) -> Result<(), CoaneError> {
    let graph = gio::load_json(Path::new(cli.req("graph")?))?;
    let emb_path = cli.req("embedding")?;
    let (embedding, dim) = eval::io::load_embedding_csv(Path::new(emb_path))
        .map_err(|e| CoaneError::io(Path::new(emb_path), e))?;
    if embedding.len() != graph.num_nodes() * dim {
        return Err(CoaneError::graph(format!(
            "embedding rows ({}) don't match graph nodes ({})",
            embedding.len() / dim,
            graph.num_nodes()
        )));
    }
    let labels = graph.labels().ok_or_else(|| CoaneError::graph("graph has no labels"))?;
    let seed: u64 = cli.num("seed", 42);
    match cli.req("task")? {
        "cluster" => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let score = nmi_clustering(&embedding, dim, labels, &mut rng);
            println!("clustering NMI = {score:.4}");
        }
        "classify" => {
            let ratio: f64 = cli.num("ratio", 0.2);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (train, test) =
                coane::graph::split::node_label_split(graph.num_nodes(), ratio, &mut rng);
            let scores = classify_nodes(&embedding, dim, labels, &train, &test, 1e-3);
            println!(
                "classification @ {:.0}%: macro-F1 = {:.4}, micro-F1 = {:.4}",
                ratio * 100.0,
                scores.macro_f1,
                scores.micro_f1
            );
        }
        other => {
            return Err(CoaneError::config(format!("unknown task: {other} (use cluster|classify)")))
        }
    }
    Ok(())
}

/// Packs an embedding CSV into the versioned, CRC-checked binary store
/// format the server loads. `--ids` (optional) is a file with one external
/// id per line; without it, ids are row indices.
fn cmd_export_store(cli: &Cli) -> Result<(), CoaneError> {
    let log = Log::new(cli);
    let emb_path = cli.req("embedding")?;
    let out = cli.req("out")?;
    let (embedding, dim) = eval::io::load_embedding_csv(Path::new(emb_path))
        .map_err(|e| CoaneError::io(Path::new(emb_path), e))?;
    let ids = match cli.get("ids") {
        None => None,
        Some(ids_path) => {
            let text = std::fs::read_to_string(ids_path)
                .map_err(|e| CoaneError::io(Path::new(ids_path), e))?;
            let ids: Vec<u64> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(|l| {
                    l.parse::<u64>()
                        .map_err(|e| CoaneError::parse(format!("bad node id {l:?}: {e}")))
                })
                .collect::<Result<_, _>>()?;
            Some(ids)
        }
    };
    let meta = cli.get("meta").unwrap_or("").to_string();
    let store = coane::serve::EmbeddingStore::new(embedding, dim, ids, meta)?
        .with_precision(parse_precision(cli)?)?;
    store.save(Path::new(out))?;
    log.info(format!(
        "wrote {out}: {} vectors × {dim} ({}, {} scan bytes)",
        store.len(),
        store.precision().name(),
        store.store_bytes()
    ));
    Ok(())
}

/// The `--precision {f32,f16,int8}` flag (default f32 — byte-identical to
/// stores written before quantization existed).
fn parse_precision(cli: &Cli) -> Result<coane::serve::Precision, CoaneError> {
    let name = cli.get("precision").unwrap_or("f32");
    coane::serve::Precision::parse(name)
        .ok_or_else(|| CoaneError::config(format!("unknown precision {name:?} (f32, f16, int8)")))
}

/// Loads an embedding store, builds the deterministic HNSW index, and
/// serves kNN / link-scoring / encoding over HTTP until `/shutdown`.
fn cmd_serve(cli: &Cli) -> Result<(), CoaneError> {
    let log = Log::new(cli);
    // `--precision` re-encodes the scoring table at load; absent, the
    // store serves at the precision it was exported with. Conversion is
    // lossless in any direction: quantized stores carry the exact f32
    // sidecar, so the result is byte-identical to an export at that
    // precision. In mutable mode this store only seeds a fresh
    // --data-dir — an existing data-dir keeps the precision its
    // generations were created with.
    let mut store = coane::serve::EmbeddingStore::open(Path::new(cli.req("store")?))?;
    if cli.get("precision").is_some() {
        store = store.with_precision(parse_precision(cli)?)?;
    }
    let threads: usize = cli.num("threads", CoaneConfig::default().threads);
    coane::nn::pool::set_threads(threads);
    let scorer_name = cli.get("scorer").unwrap_or("cosine");
    let scorer = coane::nn::Scorer::parse(scorer_name)
        .ok_or_else(|| CoaneError::config(format!("unknown scorer {scorer_name:?}")))?;
    let hnsw = coane::serve::HnswConfig {
        m: cli.num("m", coane::serve::HnswConfig::default().m),
        ef_construction: cli
            .num("ef-construction", coane::serve::HnswConfig::default().ef_construction),
        ef_search: cli.num("ef-search", coane::serve::HnswConfig::default().ef_search),
        seed: cli.num("hnsw-seed", coane::serve::HnswConfig::default().seed),
        max_generation: cli
            .num("max-generation", coane::serve::HnswConfig::default().max_generation),
    };
    let inductive = match (cli.get("model"), cli.get("graph")) {
        (Some(model_path), Some(graph_path)) => {
            let (model, config) = coane::core::load_model(Path::new(model_path))?;
            let graph = gio::load_json(Path::new(graph_path))?;
            Some(coane::serve::InductiveContext { model, config, graph })
        }
        (None, None) => None,
        _ => {
            return Err(CoaneError::config(
                "--model and --graph enable /encode and must be given together",
            ))
        }
    };
    let started = std::time::Instant::now();
    let index = coane::serve::HnswIndex::build(&store, scorer, hnsw);
    log.info(format!(
        "built HNSW index over {} vectors ({} edges, {:.2}s)",
        store.len(),
        index.num_edges(),
        started.elapsed().as_secs_f64()
    ));
    let limits = coane::serve::EngineLimits {
        max_batch: cli.num("max-batch", coane::serve::EngineLimits::default().max_batch),
        queue_cap: cli.num("queue-cap", coane::serve::EngineLimits::default().queue_cap),
        rerank_factor: cli
            .num("rerank-factor", coane::serve::EngineLimits::default().rerank_factor),
    };
    // /stats reads live telemetry, so the server always observes itself
    // (observation-only: answers are bit-identical either way).
    let obs = Obs::enabled();
    let engine = if cli.flag("mutable") {
        let data_dir = cli.req("data-dir").map_err(|_| {
            CoaneError::config("--mutable needs --data-dir for the generation files")
        })?;
        let mutation = coane::serve::MutationConfig {
            dir: std::path::PathBuf::from(data_dir),
            compact_every: cli.num("compact-every", 64usize),
        };
        let (engine, report) = coane::serve::QueryEngine::new_mutable(
            store,
            index,
            inductive,
            limits,
            obs.clone(),
            mutation,
        )?;
        log.info(format!(
            "mutable store at {data_dir}: generation {} seq {} ({} mutation(s) replayed{})",
            report.generation,
            report.seq,
            report.replayed,
            if report.fell_back { ", fell back to previous generation" } else { "" }
        ));
        for note in &report.notes {
            log.info(format!("recovery: {note}"));
        }
        std::sync::Arc::new(engine)
    } else {
        std::sync::Arc::new(coane::serve::QueryEngine::new(
            store,
            index,
            inductive,
            limits,
            obs.clone(),
        )?)
    };
    let defaults = coane::serve::ServerConfig::default();
    let server_config = coane::serve::ServerConfig {
        addr: cli.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        threads: cli.num("http-threads", 4),
        addr_file: cli.get("addr-file").map(std::path::PathBuf::from),
        // Keep-alive idle timeout and slow-request deadline in seconds,
        // micro-batch coalescing window in milliseconds (0 disables the
        // linger; answers are bit-identical for any window).
        keep_alive_timeout: std::time::Duration::from_secs_f64(
            cli.num("keep-alive-timeout", defaults.keep_alive_timeout.as_secs_f64()),
        ),
        read_deadline: std::time::Duration::from_secs_f64(
            cli.num("read-deadline", defaults.read_deadline.as_secs_f64()),
        ),
        batch_window: std::time::Duration::from_secs_f64(
            cli.num("batch-window", defaults.batch_window.as_secs_f64() * 1e3) / 1e3,
        ),
    };
    let server = coane::serve::HttpServer::bind(engine, server_config)?;
    log.info(format!("listening on {}", server.local_addr()));
    server.run()?;
    log.info("shutdown requested; server stopped");
    if let Some(path) = cli.get("metrics-json") {
        let mut file =
            std::fs::File::create(path).map_err(|e| CoaneError::io(Path::new(path), e))?;
        obs.write_jsonl(&mut file).map_err(|e| CoaneError::io(Path::new(path), e))?;
        log.info(format!("wrote telemetry to {path}"));
    }
    Ok(())
}

/// Waits for the addr-file rendezvous: the server writes its bound address
/// after binding, so a script can start both sides without racing. Polls
/// until the file holds an address or the deadline passes (typed error —
/// the caller's CI step fails fast instead of hanging).
fn wait_for_addr_file(path: &str, timeout: std::time::Duration) -> Result<String, CoaneError> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        if std::time::Instant::now() >= deadline {
            return Err(CoaneError::config(format!(
                "server address file {path} did not appear within {:.1}s — is the server up?",
                timeout.as_secs_f64()
            )));
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// Sends one JSON request to a running server and prints the response body
/// (the result) to stdout. With `--concurrency`, switches to load mode:
/// N keep-alive clients send the same request `--repeat` times each and a
/// summary JSON (qps, ok/shed/failed) is printed instead.
fn cmd_query(cli: &Cli) -> Result<(), CoaneError> {
    let addr = match (cli.get("addr"), cli.get("addr-file")) {
        (Some(addr), _) => addr.to_string(),
        (None, Some(path)) => {
            let timeout = std::time::Duration::from_secs_f64(cli.num("addr-timeout", 10.0));
            wait_for_addr_file(path, timeout)?
        }
        (None, None) => return Err(CoaneError::config("need --addr or --addr-file")),
    };
    let route = cli.req("route")?;
    let path = if route.starts_with('/') { route.to_string() } else { format!("/{route}") };
    let method = match path.as_str() {
        "/healthz" | "/stats" => "GET",
        _ => "POST",
    };
    let body = cli.get("body").unwrap_or("");
    if let Some(concurrency) = cli.get("concurrency") {
        let concurrency: usize = concurrency
            .parse()
            .map_err(|e| CoaneError::config(format!("bad --concurrency: {e}")))?;
        let repeat: usize = cli.num("repeat", 1);
        return query_load(&addr, method, &path, body, concurrency.max(1), repeat.max(1));
    }
    let (status, response) = coane::serve::http_request(&addr, method, &path, body)?;
    if status == 429 {
        eprintln!("{response}");
        return Err(CoaneError::busy(format!("server shed the request to {path}"), 1));
    }
    if !(200..300).contains(&status) {
        eprintln!("{response}");
        return Err(CoaneError::config(format!("server returned HTTP {status} for {path}")));
    }
    println!("{response}");
    Ok(())
}

/// Load mode: `concurrency` threads, each with one persistent keep-alive
/// [`coane::serve::HttpClient`], each sending `repeat` identical requests.
/// Shed responses (429) count separately from failures — under deliberate
/// overload they are the server working as designed. The summary JSON goes
/// to stdout; a transport-level failure makes the command fail.
fn query_load(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    concurrency: usize,
    repeat: usize,
) -> Result<(), CoaneError> {
    let started = std::time::Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|_| {
            let (addr, method, path, body) =
                (addr.to_string(), method.to_string(), path.to_string(), body.to_string());
            std::thread::spawn(move || {
                let mut client = coane::serve::HttpClient::new(addr);
                let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
                for _ in 0..repeat {
                    match client.request(&method, &path, &body) {
                        Ok((status, _)) if (200..300).contains(&status) => ok += 1,
                        Ok((429, _)) => shed += 1,
                        Ok(_) | Err(_) => failed += 1,
                    }
                }
                (ok, shed, failed)
            })
        })
        .collect();
    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
    for w in workers {
        let (o, s, f) = w.join().map_err(|_| CoaneError::config("load worker panicked"))?;
        ok += o;
        shed += s;
        failed += f;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total = (concurrency * repeat) as u64;
    println!(
        "{{\"concurrency\":{concurrency},\"repeat\":{repeat},\"total\":{total},\"ok\":{ok},\"shed\":{shed},\"failed\":{failed},\"elapsed_secs\":{elapsed:.4},\"qps\":{:.1}}}",
        total as f64 / elapsed.max(1e-9)
    );
    if failed > 0 {
        return Err(CoaneError::config(format!(
            "{failed} of {total} requests failed outright (ok {ok}, shed {shed})"
        )));
    }
    Ok(())
}
