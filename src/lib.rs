//! # coane
//!
//! A complete Rust reproduction of **CoANE: Modeling Context Co-occurrence
//! for Attributed Network Embedding** (I-Chung Hsieh & Cheng-Te Li, ICDE
//! 2022), including every substrate the paper depends on: an attributed
//! graph library, a random-walk/context engine, a CPU autograd tensor
//! library, eleven baseline embedding methods, an evaluation toolkit, and a
//! benchmark harness regenerating every table and figure of the paper's
//! evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use coane::prelude::*;
//!
//! // A scaled-down Cora-like attributed network (synthetic; see DESIGN.md).
//! let (graph, _) = Preset::Cora.generate_scaled(0.05, 42);
//!
//! // Train CoANE.
//! let config = CoaneConfig { epochs: 3, embed_dim: 32, ..Default::default() };
//! let embedding = Coane::new(config).fit(&graph);
//! assert_eq!(embedding.rows(), graph.num_nodes());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`coane_graph`] | `G = (V, E, X)` in CSR form, splits, I/O |
//! | [`coane_datasets`] | synthetic social-circle networks calibrated to the paper's Table 1 |
//! | [`coane_nn`] | matrices, reverse-mode autograd, layers, Adam |
//! | [`coane_walks`] | random walks, contexts, co-occurrence matrices, contextual negative sampling |
//! | [`coane_core`] | the CoANE model, objective, and trainer |
//! | [`coane_baselines`] | DeepWalk, node2vec, LINE, GAE, VGAE, GraphSAGE, ASNE, DANE, ANRL, ARGA, ARVGA, STNE |
//! | [`coane_eval`] | classification / clustering / link prediction / t-SNE |
//! | [`coane_obs`] | timing scopes, counters/gauges, JSONL telemetry sink |
//! | [`coane_serve`] | embedding store, deterministic HNSW index, query engine, HTTP server |

pub use coane_baselines as baselines;
pub use coane_core as core;
pub use coane_datasets as datasets;
pub use coane_eval as eval;
pub use coane_graph as graph;
pub use coane_nn as nn;
pub use coane_obs as obs;
pub use coane_serve as serve;
pub use coane_walks as walks;

/// Convenience re-exports for typical usage.
pub mod prelude {
    pub use coane_baselines::{
        Anrl, Arga, Asne, Dane, DeepWalk, Embedder, Gae, GaeKind, GraphSage, Line, Node2Vec, Stne,
    };
    pub use coane_core::{
        Ablation, CheckpointConfig, Coane, CoaneConfig, CoaneError, CoaneResult, ContextSource,
        EncoderKind,
    };
    pub use coane_datasets::{social_circle_graph, Preset, SocialCircleConfig};
    pub use coane_eval::{classify_nodes, link_prediction_auc, nmi_clustering, tsne, TsneConfig};
    pub use coane_graph::{AttributedGraph, EdgeSplit, GraphBuilder, NodeAttributes, SplitConfig};
    pub use coane_nn::Matrix;
    pub use coane_obs::Obs;
}
