#!/bin/bash
# Regenerates every table and figure of the paper's evaluation, writing
# console records under results/. Sized for a small multi-core box; raise
# --scale toward 1.0 (Table 1 sizes) on bigger machines. WebKB always runs
# full-size regardless of --scale (the subnetworks are tiny).
set -x
cd "$(dirname "$0")"
R=results
mkdir -p $R
cargo build --release -q -p coane-bench --bins
B=target/release

# Tables 2–3: node classification
$B/exp_classification --scale 0.15 --epochs 8 > $R/exp_classification.txt 2>&1
# Table 4 left: link prediction (flickr reduced further: dense + 12k attrs)
$B/exp_linkpred --scale 0.1 --epochs 6 --datasets cora,citeseer,pubmed,webkb > $R/exp_linkpred.txt 2>&1
$B/exp_linkpred --scale 0.05 --epochs 6 --datasets flickr > $R/exp_linkpred_flickr.txt 2>&1
# Table 4 right + Table 5: clustering
$B/exp_clustering --scale 0.1 --epochs 6 --datasets cora,citeseer,pubmed,webkb > $R/exp_clustering.txt 2>&1
$B/exp_clustering --scale 0.05 --epochs 6 --datasets flickr > $R/exp_clustering_flickr.txt 2>&1
$B/exp_clustering --datasets webkb-each --scale 1.0 --epochs 8 > $R/exp_clustering_webkb.txt 2>&1
# Figures
$B/fig3_tsne --scale 0.1 --epochs 6 --out $R > $R/fig3_tsne.txt 2>&1
$B/fig4_sensitivity --scale 1.0 --epochs 6 > $R/fig4_sensitivity.txt 2>&1
$B/fig4_runtime --scale 0.05 --epochs 5 > $R/fig4_runtime.txt 2>&1
$B/fig5_neighbors --scale 0.12 > $R/fig5_neighbors.txt 2>&1
$B/fig6_ablation --scale 0.12 --epochs 6 > $R/fig6_ablation.txt 2>&1
$B/fig6_filters --scale 0.12 --epochs 6 --out $R > $R/fig6_filters.txt 2>&1
# Table 1 replica verification
$B/dataset_stats --skip-large > $R/dataset_stats.txt 2>&1
echo ALL_DONE
