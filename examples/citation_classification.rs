//! Node-label classification on a citation network (the Tables 2–3 task):
//! train CoANE and two representative baselines, then compare Macro/Micro-F1
//! of a one-vs-rest logistic-regression classifier at a 20% training ratio.
//!
//! Run with: `cargo run --release --example citation_classification`

use coane::graph::split::node_label_split;
use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (graph, _) = Preset::Citeseer.generate_scaled(0.1, 11);
    println!(
        "citation network: {} papers, {} citations, {} classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_labels()
    );
    let labels = graph.labels().unwrap().to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let (train, test) = node_label_split(graph.num_nodes(), 0.2, &mut rng);

    let report = |name: &str, emb: &Matrix| {
        let scores = classify_nodes(emb.as_slice(), emb.cols(), &labels, &train, &test, 1e-3);
        println!("{name:>10}: macro-F1 {:.3}  micro-F1 {:.3}", scores.macro_f1, scores.micro_f1);
        scores.micro_f1
    };

    // CoANE
    let coane_emb =
        Coane::new(CoaneConfig { embed_dim: 64, epochs: 8, ..Default::default() }).fit(&graph);
    let coane_score = report("CoANE", &coane_emb);

    // DeepWalk (structure only — no attributes)
    let dw = DeepWalk {
        config: coane::baselines::skipgram::SkipGramConfig {
            dim: 64,
            walks_per_node: 5,
            walk_length: 40,
            ..Default::default()
        },
    };
    let dw_emb = dw.embed(&graph);
    report("DeepWalk", &dw_emb);

    // GAE (graph autoencoder with attributes)
    let gae = Gae { kind: GaeKind::Plain, hidden: 64, dim: 64, epochs: 80, ..Default::default() };
    let gae_emb = gae.embed(&graph);
    report("GAE", &gae_emb);

    assert!(coane_score > 0.3, "CoANE should clearly beat chance");
    println!("(paper reference, Citeseer @20%: CoANE micro-F1 0.680, Table 2)");
}
