//! Quickstart: embed a small attributed network with CoANE and inspect the
//! result on a link-prediction task.
//!
//! Run with: `cargo run --release --example quickstart`

use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. An attributed network. Here: a scaled-down synthetic replica of the
    //    Cora citation network (~270 nodes, 1433 binary attributes, 7 labels;
    //    see DESIGN.md for the substitution rationale).
    let (graph, _) = Preset::Cora.generate_scaled(0.1, 7);
    println!(
        "graph: {} nodes, {} edges, {} attributes, {} labels",
        graph.num_nodes(),
        graph.num_edges(),
        graph.attr_dim(),
        graph.num_labels()
    );

    // 2. Hold out 30% of edges for evaluation (70/10/20 split as in the paper).
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);

    // 3. Train CoANE on the residual graph.
    let config = CoaneConfig { embed_dim: 64, epochs: 8, context_size: 5, ..Default::default() };
    let embedding = Coane::new(config).fit(&split.train_graph);
    println!("embedding: {} × {}", embedding.rows(), embedding.cols());

    // 4. Score held-out edges.
    let auc = link_prediction_auc(
        embedding.as_slice(),
        embedding.cols(),
        &split.train_pos,
        &split.train_neg,
        &split.test_pos,
        &split.test_neg,
    );
    println!("link prediction AUC = {auc:.3}");
    assert!(auc > 0.5, "embedding should beat chance");
}
