//! Inductive embedding: CoANE's encoder is a function of contexts and
//! attributes, not a lookup table — so a trained model can embed nodes that
//! did not exist at training time. This example trains on a network, adds a
//! brand-new member to one community, and embeds it without retraining.
//!
//! Run with: `cargo run --release --example inductive`

use coane::core::embed_nodes;
use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    (dot / (na * nb + 1e-12)) as f64
}

fn main() {
    // Train on a 3-community network.
    let cfg = SocialCircleConfig {
        num_nodes: 300,
        num_communities: 3,
        attr_dim: 150,
        num_edges: 1000,
        mixing: 0.1,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (graph, assignment) = social_circle_graph(&cfg, &mut rng);
    let coane_cfg = CoaneConfig { embed_dim: 32, epochs: 8, ..Default::default() };
    let (trained, model, _) = Coane::new(coane_cfg.clone()).fit_with_model(&graph);
    println!("trained on {} nodes", graph.num_nodes());

    // A new member joins community 1: copy a member's attributes, add ties.
    let n = graph.num_nodes();
    let members: Vec<u32> =
        (0..n as u32).filter(|&v| assignment.community[v as usize] == 1).collect();
    let mut b = GraphBuilder::new(n + 1, graph.attr_dim());
    for (u, v, w) in graph.edges() {
        b.add_edge(u, v, w);
    }
    for &u in members.iter().take(5) {
        b.add_edge(n as u32, u, 1.0);
    }
    let mut rows: Vec<Vec<(u32, f32)>> = (0..n as u32)
        .map(|v| {
            let (idx, val) = graph.attrs().row(v);
            idx.iter().copied().zip(val.iter().copied()).collect()
        })
        .collect();
    let (didx, dval) = graph.attrs().row(members[0]);
    rows.push(didx.iter().copied().zip(dval.iter().copied()).collect());
    let extended = b.with_attrs(NodeAttributes::from_sparse_rows(graph.attr_dim(), &rows)).build();

    // Embed the newcomer with the *frozen* model.
    let z_new = embed_nodes(&model, &coane_cfg, &extended, &[n as u32]);
    println!("embedded new node {} inductively (no retraining)", n);

    // Where did it land? Mean cosine to each community.
    for c in 0..3u32 {
        let comm: Vec<usize> = (0..n).filter(|&v| assignment.community[v] == c).collect();
        let mean: f64 = comm.iter().map(|&v| cosine(z_new.row(0), trained.row(v))).sum::<f64>()
            / comm.len() as f64;
        let marker = if c == 1 { "  ← joined this one" } else { "" };
        println!("mean cosine to community {c}: {mean:+.3}{marker}");
    }
}
