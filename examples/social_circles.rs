//! Social-circle discovery: the scenario from the paper's introduction.
//!
//! A user's neighbourhood contains several latent circles ("CS dept",
//! "family", "labmates") that are simultaneously densely linked and
//! attribute-coherent. This example generates such a network, trains CoANE,
//! and verifies that k-means on the embeddings recovers the planted
//! communities far better than chance — then peeks at the learned
//! convolution filters (the paper's Fig. 6b analysis).
//!
//! Run with: `cargo run --release --example social_circles`

use coane::prelude::*;
use coane::walks::analysis::mean_coverage;
use coane::walks::{ContextSet, ContextsConfig, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 600-person social network: 5 communities, each split into 3 circles,
    // with attribute prototypes per community and per circle.
    let cfg = SocialCircleConfig {
        num_nodes: 600,
        num_communities: 5,
        circles_per_community: 3,
        attr_dim: 300,
        num_edges: 2400,
        mixing: 0.15,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (graph, assignment) = social_circle_graph(&cfg, &mut rng);
    println!(
        "network: {} people, {} ties, {} circles planted",
        graph.num_nodes(),
        graph.num_edges(),
        assignment.circle_members.len()
    );

    // How do random-walk contexts compare to 2-hop neighbourhoods at staying
    // inside the anchor's community? (the paper's Fig. 5 argument)
    let walker = Walker::new(&graph, WalkConfig::default());
    let walks = walker.generate_all(4);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ContextsConfig::default());
    let (walk_cov, hop_cov) = mean_coverage(&graph, &contexts, 2);
    println!(
        "context label purity: walks {:.3} vs 2-hop {:.3} (region sizes {} vs {})",
        walk_cov.label_purity, hop_cov.label_purity, walk_cov.region_size, hop_cov.region_size
    );

    // Train CoANE and cluster.
    let config = CoaneConfig { embed_dim: 64, epochs: 10, ..Default::default() };
    let (embedding, model, stats) = coane::core::Coane::new(config).fit_with_model(&graph);
    println!(
        "trained: {} contexts, k_p = {}, final epoch loss {:.1}",
        stats.num_contexts,
        stats.k_p,
        stats.epoch_losses.last().unwrap()
    );

    let mut rng2 = ChaCha8Rng::seed_from_u64(9);
    let score =
        nmi_clustering(embedding.as_slice(), embedding.cols(), graph.labels().unwrap(), &mut rng2);
    println!("community recovery NMI = {score:.3} (chance ≈ 0)");
    assert!(score > 0.1, "clustering should clearly beat chance");

    // Filter inspection (Fig. 6b): positional weight mass per context slot.
    let filters = model.filters();
    let heat = filters.mean_abs_by_position();
    print!("mean |filter weight| by context position:");
    for p in 0..heat.rows() {
        let mass: f32 = heat.row(p).iter().sum::<f32>() / heat.cols() as f32;
        print!(" p{p}={mass:.4}");
    }
    println!();
}
