//! Link prediction head-to-head (the Table 4 task): hold out 30% of edges,
//! train CoANE, node2vec and VGAE on the residual graph, and compare
//! held-out ROC-AUC with Hadamard edge features.
//!
//! Run with: `cargo run --release --example link_prediction`

use coane::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (graph, _) = Preset::WebKbCornell.generate(5);
    println!(
        "network: {} nodes, {} edges (WebKB-Cornell replica)",
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);

    let score = |name: &str, emb: &Matrix| -> f64 {
        let auc = link_prediction_auc(
            emb.as_slice(),
            emb.cols(),
            &split.train_pos,
            &split.train_neg,
            &split.test_pos,
            &split.test_neg,
        );
        println!("{name:>10}: AUC {auc:.3}");
        auc
    };

    let coane_emb = Coane::new(CoaneConfig {
        embed_dim: 64,
        epochs: 10,
        context_size: 5,
        ..Default::default()
    })
    .fit(&split.train_graph);
    let coane_auc = score("CoANE", &coane_emb);

    let n2v = Node2Vec {
        config: coane::baselines::skipgram::SkipGramConfig {
            dim: 64,
            walks_per_node: 5,
            walk_length: 40,
            ..Default::default()
        },
        p: 1.0,
        q: 1.0,
    };
    score("node2vec", &n2v.embed(&split.train_graph));

    let vgae =
        Gae { kind: GaeKind::Variational, hidden: 64, dim: 64, epochs: 80, ..Default::default() };
    score("VGAE", &vgae.embed(&split.train_graph));

    assert!(coane_auc > 0.5, "CoANE should beat chance");
    println!("(paper reference, WebKB: CoANE AUC 0.784, Table 4)");
}
