#!/usr/bin/env python3
"""Validates a --metrics-json JSONL stream emitted by coane-cli.

Usage: validate_metrics.py <metrics.jsonl> <expected_epoch_records>

Every line must be a self-describing JSON object with a float `t` and an
`event` kind. Each per-epoch record must carry all three objective-term
losses, wall time, throughput, and cache/prefetch statistics, and the stream
must end with scope/counter/gauge aggregates plus a summary line.
"""

import json
import sys

EPOCH_KEYS = {
    "epoch",
    "loss",
    "loss_pos",
    "loss_neg",
    "loss_att",
    "grad_norm",
    "lr",
    "seconds",
    "nodes",
    "nodes_per_sec",
    "batches",
    "cache_rows",
    "nnz",
    "prefetch_depth",
    "prefetch_occupancy",
}


def main() -> None:
    path, expected_epochs = sys.argv[1], int(sys.argv[2])
    kinds, epochs = [], 0
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            assert isinstance(rec.pop("t"), (int, float)), f"missing t: {line!r}"
            kinds.append(rec["event"])
            if rec["event"] == "epoch":
                epochs += 1
                missing = EPOCH_KEYS - rec.keys()
                assert not missing, f"epoch record missing {missing}"
                for key in EPOCH_KEYS:
                    assert isinstance(rec[key], (int, float)), f"{key} is not numeric"
    assert epochs == expected_epochs, f"expected {expected_epochs} epoch records, got {epochs}"
    for kind in ("run", "scope", "counter", "gauge", "summary"):
        assert kind in kinds, f"missing {kind} record"
    print(f"{path} OK: {len(kinds)} lines, {epochs} epoch records")


if __name__ == "__main__":
    main()
