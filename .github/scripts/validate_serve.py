#!/usr/bin/env python3
"""Validates serving-path artifacts captured by CI.

Usage:
  validate_serve.py <dir>              # route-response schemas (integration step)
  validate_serve.py --load <dir>       # concurrent load summary + shed stats
  validate_serve.py --bench <file>     # BENCH_serve.json concurrency sweep
  validate_serve.py --mutations <dir>  # mutation soak: kill -9 recovery + replay equality

Default mode expects one response per route saved into <dir>: healthz.json,
knn.json, links.json, encode.json, stats.json. Each file must parse as JSON
and carry the documented response schema (README "Serving"), including the
per-route latency histograms under /stats.

--load expects <dir>/load.json (the `coane-cli query --concurrency` summary
against a deliberately tiny admission queue) and <dir>/stats_load.json: every
request must have completed as 200 or a fast 429 — none hung, none errored —
and the server must have recorded the shed decisions it made.

--bench validates the committed BENCH_serve.json micro-batching section (a
concurrency sweep with strictly increasing connection counts, finite positive
throughput/latency, and a batched speedup >= 2x over the per-request baseline
that is arithmetically consistent with the recorded points) and the
per-precision quantization sweep: exactly f32/f16/int8 points at >= 100k
nodes, every recall@k >= 0.95, scan footprints shrinking f32 > f16 > int8,
and an int8-over-f32 brute-force speedup >= 1.3x that follows from the
recorded throughputs.

--mutations expects the artifacts of the CI mutation soak: acks.jsonl (one
upsert/delete response per acked mutation), health_before.json (just before
the SIGKILL) and health_after.json (after restarting on the same data dir),
knn_recovered.json / knn_replayed.json (the same exact-kNN query against the
crash-recovered server and against a fresh server that replayed the identical
mutation stream), stats_mut.json (recovered server, after compaction settled)
and stats_replay.json (replay server). It enforces the determinism contract:
ack seqs dense from 1, the recovered seq equals the acked prefix, the settled
generation arithmetic holds (generation = seq div compact_every), and the
recovered and replayed kNN answers match exactly — the generation stamp is the
one field allowed to differ, since a crash may land before or after a fold.
"""

import json
import sys

SPEEDUP_FLOOR = 2.0
PRECISION_MIN_NODES = 100_000
PRECISION_RECALL_FLOOR = 0.95
INT8_SPEEDUP_FLOOR = 1.3


def load(path: str):
    with open(path) as f:
        return json.load(f)


def check_neighbors(results, k: int, nodes: int, what: str) -> None:
    assert isinstance(results, list) and results, f"{what}: empty results"
    for res in results:
        neigh = res["neighbors"]
        assert len(neigh) == k, f"{what}: expected {k} neighbors, got {len(neigh)}"
        scores = [n["score"] for n in neigh]
        assert scores == sorted(scores, reverse=True), f"{what}: scores not descending"
        for n in neigh:
            assert isinstance(n["id"], int) and 0 <= n["id"] < nodes, f"{what}: bad id {n['id']}"
            assert isinstance(n["score"], (int, float)), f"{what}: non-numeric score"


def check_histogram(histograms, name: str) -> None:
    assert name in histograms, f"histogram {name} missing from {sorted(histograms)}"
    h = histograms[name]
    assert h["count"] > 0, f"histogram {name} recorded nothing"
    for field in ("min_us", "max_us", "p50_us", "p90_us", "p99_us"):
        v = h[field]
        assert isinstance(v, (int, float)) and v >= 0, f"histogram {name}.{field} invalid: {v}"
    assert h["p50_us"] <= h["p99_us"] <= h["max_us"], f"histogram {name} percentiles disordered"


def validate_routes(d: str) -> None:
    health = load(f"{d}/healthz.json")
    assert health["status"] == "ok", f"unhealthy: {health}"
    nodes, dim = health["nodes"], health["dim"]
    assert nodes > 0 and dim > 0, f"degenerate store: {health}"
    assert health["encode"] is True, "encode should be enabled in the CI smoke"
    assert isinstance(health["scorer"], str)

    knn = load(f"{d}/knn.json")
    assert knn["scorer"] == health["scorer"]
    check_neighbors(knn["results"], knn["k"], nodes, "knn")
    # Id queries exclude themselves (the smoke queries ids 0 and 1).
    for qid, res in zip((0, 1), knn["results"]):
        assert all(n["id"] != qid for n in res["neighbors"]), f"knn: query {qid} in own results"

    links = load(f"{d}/links.json")
    assert isinstance(links["scores"], list) and links["scores"], "links: no scores"
    assert all(isinstance(s, (int, float)) for s in links["scores"]), "links: non-numeric score"

    encode = load(f"{d}/encode.json")
    assert encode["dim"] == dim
    assert len(encode["embeddings"]) == 1, "encode: expected one embedded node"
    assert len(encode["embeddings"][0]) == dim, "encode: wrong embedding width"
    assert all(isinstance(x, (int, float)) for x in encode["embeddings"][0])
    check_neighbors(encode["neighbors"], 3, nodes, "encode.neighbors")

    stats = load(f"{d}/stats.json")
    counters = stats["counters"]
    assert counters.get("serve/knn/requests", 0) >= 2, f"knn uncounted: {counters}"
    assert counters.get("serve/links/requests", 0) >= 1, f"links uncounted: {counters}"
    assert counters.get("serve/encode/requests", 0) >= 1, f"encode uncounted: {counters}"
    assert "serve/queue_depth" in stats["gauges"], "queue-depth gauge missing"
    scopes = stats["scopes"]
    for cls in ("serve/knn", "serve/links", "serve/encode"):
        assert cls in scopes and scopes[cls]["calls"] > 0, f"scope {cls} missing from {scopes}"
    # Every route driven before /stats must have a latency histogram.
    for route in ("healthz", "knn", "links", "encode"):
        check_histogram(stats["histograms"], f"serve/http/{route}")

    print(f"{d} OK: {nodes} nodes x {dim}, all route schemas valid")


def validate_load(d: str) -> None:
    summary = load(f"{d}/load.json")
    total = summary["total"]
    assert total == summary["concurrency"] * summary["repeat"], f"load total mismatch: {summary}"
    # The 429-not-hangs contract: every request reached a terminal status.
    assert summary["failed"] == 0, f"load run had hard failures: {summary}"
    assert summary["ok"] + summary["shed"] == total, f"load accounting broken: {summary}"
    assert summary["ok"] >= 1, f"nothing got through the saturated queue: {summary}"
    # queue_cap=1 under 8 concurrent clients: shedding must actually happen,
    # otherwise the admission gate silently queued past its bound.
    assert summary["shed"] >= 1, f"saturated queue never shed: {summary}"
    assert summary["qps"] > 0 and summary["elapsed_secs"] > 0, f"degenerate timing: {summary}"

    stats = load(f"{d}/stats_load.json")
    shed = stats["counters"].get("serve/shed", 0)
    assert shed >= summary["shed"], f"server recorded {shed} sheds, client saw {summary['shed']}"
    check_histogram(stats["histograms"], "serve/http/knn")

    print(f"{d} OK: {summary['ok']} served / {summary['shed']} shed of {total}, none hung")


def validate_precisions(prec) -> None:
    assert prec["nodes"] >= PRECISION_MIN_NODES, (
        f"precision sweep ran at {prec['nodes']} nodes, need >= {PRECISION_MIN_NODES}"
    )
    assert prec["rerank_factor"] >= 1, f"degenerate rerank factor: {prec}"
    points = prec["points"]
    names = [p["precision"] for p in points]
    assert names == ["f32", "f16", "int8"], f"precision points are {names}"
    for p in points:
        for field in ("hnsw_qps", "exact_qps", "build_ms"):
            assert p[field] > 0, f"{p['precision']}: non-positive {field}: {p[field]}"
        assert p["recall_at_k"] >= PRECISION_RECALL_FLOOR, (
            f"{p['precision']}: recall {p['recall_at_k']:.4f} below {PRECISION_RECALL_FLOOR}"
        )
        assert p["store_bytes"] > 0 and p["file_bytes"] > 0, f"{p['precision']}: zero byte counts"
    f32, f16, int8 = points
    assert f32["store_bytes"] > f16["store_bytes"] > int8["store_bytes"], (
        "scan footprints must shrink f32 > f16 > int8: "
        + str([p["store_bytes"] for p in points])
    )
    speedup = prec["int8_speedup"]
    assert speedup >= INT8_SPEEDUP_FLOOR, (
        f"int8 speedup {speedup:.2f} below {INT8_SPEEDUP_FLOOR}x"
    )
    recomputed = int8["exact_qps"] / f32["exact_qps"]
    assert abs(recomputed - speedup) <= 0.1 * speedup, (
        f"int8_speedup {speedup:.2f} inconsistent with points ({recomputed:.2f})"
    )
    assert prec["rerank_sidecar_us"] > 0 and prec["rerank_dequant_us"] > 0, (
        "rerank cost comparison is non-positive"
    )
    print(
        f"  precisions OK: int8 {speedup:.2f}x f32 at {prec['nodes']} nodes, "
        f"recalls {[round(p['recall_at_k'], 4) for p in points]}, "
        f"scan bytes {[p['store_bytes'] for p in points]}"
    )


def validate_bench(path: str) -> None:
    report = load(path)
    validate_precisions(report["precisions"])
    conc = report["concurrency"]
    assert conc["sweep_nodes"] > 0, f"degenerate sweep store: {conc['sweep_nodes']}"
    assert conc["baseline_qps"] > 0, f"non-positive baseline qps: {conc['baseline_qps']}"
    points = conc["points"]
    assert points, "concurrency sweep has no points"
    best = 0.0
    for i, p in enumerate(points):
        assert p["qps"] > 0 and p["p50_us"] > 0, f"sweep point {i} non-positive: {p}"
        assert p["p50_us"] <= p["p99_us"], f"sweep point {i} percentiles disordered: {p}"
        assert i == 0 or p["connections"] > points[i - 1]["connections"], (
            "sweep connections not strictly increasing"
        )
        best = max(best, p["qps"])
    speedup = conc["batched_speedup"]
    assert speedup >= SPEEDUP_FLOOR, f"batched speedup {speedup:.2f} below {SPEEDUP_FLOOR}x"
    recomputed = best / conc["baseline_qps"]
    assert abs(recomputed - speedup) <= 0.1 * speedup, (
        f"batched_speedup {speedup:.2f} inconsistent with points ({recomputed:.2f})"
    )
    print(f"{path} OK: {speedup:.2f}x batched speedup over {conc['baseline_qps']:.0f} qps baseline")


def validate_mutations(d: str) -> None:
    acks = []
    with open(f"{d}/acks.jsonl") as f:
        for line in f:
            if line.strip():
                acks.append(json.loads(line))
    assert acks, "no mutation acks captured"
    upserts = deletes = 0
    for i, ack in enumerate(acks):
        assert ack["seq"] == i + 1, f"ack {i}: seq {ack['seq']} breaks dense numbering from 1"
        assert isinstance(ack["generation"], int) and ack["generation"] >= 0, f"ack {i}: {ack}"
        if "applied" in ack:
            assert ack["applied"] >= 1, f"ack {i} applied nothing: {ack}"
            upserts += ack["applied"]
        else:
            assert ack["deleted"] >= 1, f"ack {i} deleted nothing: {ack}"
            deletes += ack["deleted"]
    n = len(acks)

    before = load(f"{d}/health_before.json")
    after = load(f"{d}/health_after.json")
    for name, h in (("before kill", before), ("after restart", after)):
        assert h["status"] == "ok" and h["mutable"] is True, f"health {name}: {h}"
    assert before["seq"] == n, f"acked {n} mutations but pre-kill seq is {before['seq']}"
    assert after["seq"] == n, (
        f"kill -9 recovery broke the acked-prefix contract: acked {n}, recovered {after['seq']}"
    )
    assert after["nodes"] == before["nodes"], (
        f"live row count changed across crash recovery: {before['nodes']} -> {after['nodes']}"
    )

    recovered = load(f"{d}/knn_recovered.json")
    replayed = load(f"{d}/knn_replayed.json")
    # A crash can land before or after a background fold, so the physical
    # generation the recovered server boots on is the one thing allowed to
    # differ from a fresh replay. Everything observable — the seq stamp and
    # the exact scores — must match bit for bit across the two layouts.
    for resp in (recovered, replayed):
        assert isinstance(resp.pop("generation"), int), f"knn response lost its stamp: {resp}"
    assert recovered["seq"] == n, f"recovered kNN stamped seq {recovered['seq']}, expected {n}"
    assert recovered == replayed, (
        f"replay inequality:\n recovered: {recovered}\n  replayed: {replayed}"
    )

    stats = load(f"{d}/stats_mut.json")
    store = stats["store"]
    assert store["mutable"] is True and store["seq"] == n, f"recovered store stats: {store}"
    ce = store["compact_every"]
    assert ce >= 1, f"bad compact_every: {store}"
    assert store["generation"] == n // ce and store["pending"] == n % ce, (
        f"settled state must be generation {n // ce} + {n % ce} pending: {store}"
    )
    assert store["generation"] >= 1, "soak never compacted — raise the mutation count"
    assert store["live_rows"] == after["nodes"], f"stats/healthz row disagreement: {store}"

    replay_stats = load(f"{d}/stats_replay.json")
    counters = replay_stats["counters"]
    assert counters.get("serve/mut/upserts", 0) == upserts, f"upserts uncounted: {counters}"
    assert counters.get("serve/mut/deletes", 0) == deletes, f"deletes uncounted: {counters}"
    assert counters.get("serve/mut/batches", 0) >= n, f"mutation admissions uncounted: {counters}"
    for route in ("upsert", "delete"):
        check_histogram(replay_stats["histograms"], f"serve/http/{route}")

    print(
        f"{d} OK: {n} mutations ({upserts} upserts / {deletes} deletes) acked, "
        f"kill -9 recovered seq {n} on generation {store['generation']}, replay answers identical"
    )


def main() -> None:
    if sys.argv[1] == "--load":
        validate_load(sys.argv[2])
    elif sys.argv[1] == "--bench":
        validate_bench(sys.argv[2])
    elif sys.argv[1] == "--mutations":
        validate_mutations(sys.argv[2])
    else:
        validate_routes(sys.argv[1])


if __name__ == "__main__":
    main()
