#!/usr/bin/env python3
"""Validates the JSON responses captured from a running coane-cli server.

Usage: validate_serve.py <dir>

Expects the CI smoke step to have saved one response per route into <dir>:
healthz.json, knn.json, links.json, encode.json, stats.json. Each file must
parse as JSON and carry the documented response schema (README "Serving").
"""

import json
import sys


def load(dirpath: str, name: str):
    with open(f"{dirpath}/{name}") as f:
        return json.load(f)


def check_neighbors(results, k: int, nodes: int, what: str) -> None:
    assert isinstance(results, list) and results, f"{what}: empty results"
    for res in results:
        neigh = res["neighbors"]
        assert len(neigh) == k, f"{what}: expected {k} neighbors, got {len(neigh)}"
        scores = [n["score"] for n in neigh]
        assert scores == sorted(scores, reverse=True), f"{what}: scores not descending"
        for n in neigh:
            assert isinstance(n["id"], int) and 0 <= n["id"] < nodes, f"{what}: bad id {n['id']}"
            assert isinstance(n["score"], (int, float)), f"{what}: non-numeric score"


def main() -> None:
    d = sys.argv[1]

    health = load(d, "healthz.json")
    assert health["status"] == "ok", f"unhealthy: {health}"
    nodes, dim = health["nodes"], health["dim"]
    assert nodes > 0 and dim > 0, f"degenerate store: {health}"
    assert health["encode"] is True, "encode should be enabled in the CI smoke"
    assert isinstance(health["scorer"], str)

    knn = load(d, "knn.json")
    assert knn["scorer"] == health["scorer"]
    check_neighbors(knn["results"], knn["k"], nodes, "knn")
    # Id queries exclude themselves (the smoke queries ids 0 and 1).
    for qid, res in zip((0, 1), knn["results"]):
        assert all(n["id"] != qid for n in res["neighbors"]), f"knn: query {qid} in own results"

    links = load(d, "links.json")
    assert isinstance(links["scores"], list) and links["scores"], "links: no scores"
    assert all(isinstance(s, (int, float)) for s in links["scores"]), "links: non-numeric score"

    encode = load(d, "encode.json")
    assert encode["dim"] == dim
    assert len(encode["embeddings"]) == 1, "encode: expected one embedded node"
    assert len(encode["embeddings"][0]) == dim, "encode: wrong embedding width"
    assert all(isinstance(x, (int, float)) for x in encode["embeddings"][0])
    check_neighbors(encode["neighbors"], 3, nodes, "encode.neighbors")

    stats = load(d, "stats.json")
    counters = stats["counters"]
    assert counters.get("serve/knn/requests", 0) >= 2, f"knn uncounted: {counters}"
    assert counters.get("serve/links/requests", 0) >= 1, f"links uncounted: {counters}"
    assert counters.get("serve/encode/requests", 0) >= 1, f"encode uncounted: {counters}"
    assert "serve/queue_depth" in stats["gauges"], "queue-depth gauge missing"
    scopes = stats["scopes"]
    for cls in ("serve/knn", "serve/links", "serve/encode"):
        assert cls in scopes and scopes[cls]["calls"] > 0, f"scope {cls} missing from {scopes}"

    print(f"{d} OK: {nodes} nodes x {dim}, all route schemas valid")


if __name__ == "__main__":
    main()
