#!/usr/bin/env python3
"""Validates serving-path artifacts captured by CI.

Usage:
  validate_serve.py <dir>            # route-response schemas (integration step)
  validate_serve.py --load <dir>     # concurrent load summary + shed stats
  validate_serve.py --bench <file>   # BENCH_serve.json concurrency sweep

Default mode expects one response per route saved into <dir>: healthz.json,
knn.json, links.json, encode.json, stats.json. Each file must parse as JSON
and carry the documented response schema (README "Serving"), including the
per-route latency histograms under /stats.

--load expects <dir>/load.json (the `coane-cli query --concurrency` summary
against a deliberately tiny admission queue) and <dir>/stats_load.json: every
request must have completed as 200 or a fast 429 — none hung, none errored —
and the server must have recorded the shed decisions it made.

--bench validates the committed BENCH_serve.json micro-batching section: a
concurrency sweep with strictly increasing connection counts, finite positive
throughput/latency, and a batched speedup >= 2x over the per-request baseline
that is arithmetically consistent with the recorded points.
"""

import json
import sys

SPEEDUP_FLOOR = 2.0


def load(path: str):
    with open(path) as f:
        return json.load(f)


def check_neighbors(results, k: int, nodes: int, what: str) -> None:
    assert isinstance(results, list) and results, f"{what}: empty results"
    for res in results:
        neigh = res["neighbors"]
        assert len(neigh) == k, f"{what}: expected {k} neighbors, got {len(neigh)}"
        scores = [n["score"] for n in neigh]
        assert scores == sorted(scores, reverse=True), f"{what}: scores not descending"
        for n in neigh:
            assert isinstance(n["id"], int) and 0 <= n["id"] < nodes, f"{what}: bad id {n['id']}"
            assert isinstance(n["score"], (int, float)), f"{what}: non-numeric score"


def check_histogram(histograms, name: str) -> None:
    assert name in histograms, f"histogram {name} missing from {sorted(histograms)}"
    h = histograms[name]
    assert h["count"] > 0, f"histogram {name} recorded nothing"
    for field in ("min_us", "max_us", "p50_us", "p90_us", "p99_us"):
        v = h[field]
        assert isinstance(v, (int, float)) and v >= 0, f"histogram {name}.{field} invalid: {v}"
    assert h["p50_us"] <= h["p99_us"] <= h["max_us"], f"histogram {name} percentiles disordered"


def validate_routes(d: str) -> None:
    health = load(f"{d}/healthz.json")
    assert health["status"] == "ok", f"unhealthy: {health}"
    nodes, dim = health["nodes"], health["dim"]
    assert nodes > 0 and dim > 0, f"degenerate store: {health}"
    assert health["encode"] is True, "encode should be enabled in the CI smoke"
    assert isinstance(health["scorer"], str)

    knn = load(f"{d}/knn.json")
    assert knn["scorer"] == health["scorer"]
    check_neighbors(knn["results"], knn["k"], nodes, "knn")
    # Id queries exclude themselves (the smoke queries ids 0 and 1).
    for qid, res in zip((0, 1), knn["results"]):
        assert all(n["id"] != qid for n in res["neighbors"]), f"knn: query {qid} in own results"

    links = load(f"{d}/links.json")
    assert isinstance(links["scores"], list) and links["scores"], "links: no scores"
    assert all(isinstance(s, (int, float)) for s in links["scores"]), "links: non-numeric score"

    encode = load(f"{d}/encode.json")
    assert encode["dim"] == dim
    assert len(encode["embeddings"]) == 1, "encode: expected one embedded node"
    assert len(encode["embeddings"][0]) == dim, "encode: wrong embedding width"
    assert all(isinstance(x, (int, float)) for x in encode["embeddings"][0])
    check_neighbors(encode["neighbors"], 3, nodes, "encode.neighbors")

    stats = load(f"{d}/stats.json")
    counters = stats["counters"]
    assert counters.get("serve/knn/requests", 0) >= 2, f"knn uncounted: {counters}"
    assert counters.get("serve/links/requests", 0) >= 1, f"links uncounted: {counters}"
    assert counters.get("serve/encode/requests", 0) >= 1, f"encode uncounted: {counters}"
    assert "serve/queue_depth" in stats["gauges"], "queue-depth gauge missing"
    scopes = stats["scopes"]
    for cls in ("serve/knn", "serve/links", "serve/encode"):
        assert cls in scopes and scopes[cls]["calls"] > 0, f"scope {cls} missing from {scopes}"
    # Every route driven before /stats must have a latency histogram.
    for route in ("healthz", "knn", "links", "encode"):
        check_histogram(stats["histograms"], f"serve/http/{route}")

    print(f"{d} OK: {nodes} nodes x {dim}, all route schemas valid")


def validate_load(d: str) -> None:
    summary = load(f"{d}/load.json")
    total = summary["total"]
    assert total == summary["concurrency"] * summary["repeat"], f"load total mismatch: {summary}"
    # The 429-not-hangs contract: every request reached a terminal status.
    assert summary["failed"] == 0, f"load run had hard failures: {summary}"
    assert summary["ok"] + summary["shed"] == total, f"load accounting broken: {summary}"
    assert summary["ok"] >= 1, f"nothing got through the saturated queue: {summary}"
    # queue_cap=1 under 8 concurrent clients: shedding must actually happen,
    # otherwise the admission gate silently queued past its bound.
    assert summary["shed"] >= 1, f"saturated queue never shed: {summary}"
    assert summary["qps"] > 0 and summary["elapsed_secs"] > 0, f"degenerate timing: {summary}"

    stats = load(f"{d}/stats_load.json")
    shed = stats["counters"].get("serve/shed", 0)
    assert shed >= summary["shed"], f"server recorded {shed} sheds, client saw {summary['shed']}"
    check_histogram(stats["histograms"], "serve/http/knn")

    print(f"{d} OK: {summary['ok']} served / {summary['shed']} shed of {total}, none hung")


def validate_bench(path: str) -> None:
    conc = load(path)["concurrency"]
    assert conc["sweep_nodes"] > 0, f"degenerate sweep store: {conc['sweep_nodes']}"
    assert conc["baseline_qps"] > 0, f"non-positive baseline qps: {conc['baseline_qps']}"
    points = conc["points"]
    assert points, "concurrency sweep has no points"
    best = 0.0
    for i, p in enumerate(points):
        assert p["qps"] > 0 and p["p50_us"] > 0, f"sweep point {i} non-positive: {p}"
        assert p["p50_us"] <= p["p99_us"], f"sweep point {i} percentiles disordered: {p}"
        assert i == 0 or p["connections"] > points[i - 1]["connections"], (
            "sweep connections not strictly increasing"
        )
        best = max(best, p["qps"])
    speedup = conc["batched_speedup"]
    assert speedup >= SPEEDUP_FLOOR, f"batched speedup {speedup:.2f} below {SPEEDUP_FLOOR}x"
    recomputed = best / conc["baseline_qps"]
    assert abs(recomputed - speedup) <= 0.1 * speedup, (
        f"batched_speedup {speedup:.2f} inconsistent with points ({recomputed:.2f})"
    )
    print(f"{path} OK: {speedup:.2f}x batched speedup over {conc['baseline_qps']:.0f} qps baseline")


def main() -> None:
    if sys.argv[1] == "--load":
        validate_load(sys.argv[2])
    elif sys.argv[1] == "--bench":
        validate_bench(sys.argv[2])
    else:
        validate_routes(sys.argv[1])


if __name__ == "__main__":
    main()
