#!/usr/bin/env python3
"""Validates the committed BENCH_scale.json scaling report.

Usage: validate_scale.py [BENCH_scale.json] [--metrics metrics.jsonl]

Checks (mirroring `bench_scale --smoke`, so a stale or hand-edited file
fails CI even if the Rust smoke is skipped):

* at least 4 sizes, the largest >= 500k nodes;
* every row has positive throughput and training time;
* peak RSS is strictly monotone in graph size (each size ran in a fresh
  process, so a larger graph can never hide behind a smaller one's peak);
* no row landed on the trivial always-fits cache rung — the per-node budget
  must actually force the fallback ladder;
* every row's peak RSS stays under its implied budget (accounted resident
  components x slack factor + fixed baseline) — the budget accounting is
  honest, with the cache component bounded by max_cache_bytes;
* the streaming pipeline's embedding hash equals the materialized
  pipeline's at every checked thread count (bit-identity).

With --metrics, additionally checks a --metrics-json stream from a
memory-budgeted CLI training run: the cache telemetry must show a
non-trivial rung engaged with positive resident bytes.
"""

import json
import sys

ROW_KEYS = {
    "nodes",
    "edges",
    "contexts",
    "nnz_d",
    "max_cache_bytes",
    "cache_mode",
    "cache_resident_bytes",
    "accounted_bytes",
    "implied_budget_bytes",
    "peak_rss_bytes",
    "train_seconds",
    "nodes_per_sec",
    "embed_hash",
}


def fail(msg):
    print(f"validate_scale: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_report(path):
    with open(path) as f:
        report = json.load(f)

    rows = report.get("rows", [])
    if len(rows) < 4:
        fail(f"only {len(rows)} sizes; need >= 4")
    if max(r["nodes"] for r in rows) < 500_000:
        fail("largest size is below 500k nodes")

    per_node = report["budget_bytes_per_node"]
    prev_nodes = prev_rss = 0
    for row in rows:
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"{row.get('nodes', '?')} nodes: missing keys {sorted(missing)}")
        if row["nodes"] <= prev_nodes:
            fail("rows are not sorted by ascending node count")
        if row["max_cache_bytes"] != row["nodes"] * per_node:
            fail(f"{row['nodes']} nodes: budget != nodes x {per_node}")
        if not (row["train_seconds"] > 0 and row["nodes_per_sec"] > 0):
            fail(f"{row['nodes']} nodes: non-positive timing/throughput")
        if row["peak_rss_bytes"] <= prev_rss:
            fail(f"peak RSS not monotone at {row['nodes']} nodes")
        if row["cache_mode"] not in ("compressed", "rebuild"):
            fail(
                f"{row['nodes']} nodes: cache mode {row['cache_mode']!r} — "
                "the budget never forced the fallback ladder"
            )
        if row["peak_rss_bytes"] > row["implied_budget_bytes"]:
            fail(
                f"{row['nodes']} nodes: peak RSS {row['peak_rss_bytes']} exceeds "
                f"implied budget {row['implied_budget_bytes']}"
            )
        prev_nodes, prev_rss = row["nodes"], row["peak_rss_bytes"]

    if not report.get("bit_identical"):
        fail("bit_identical is not true")
    check = report["bit_check"]
    for h in check["streaming_hashes"]:
        if h != check["materialized_hash"]:
            fail(f"streaming hash {h} != materialized {check['materialized_hash']}")

    largest = rows[-1]
    print(
        f"validate_scale: OK — {len(rows)} sizes up to {largest['nodes']} nodes, "
        f"peak {largest['peak_rss_bytes'] / 2**20:.0f} MiB "
        f"(implied budget {largest['implied_budget_bytes'] / 2**20:.0f} MiB), "
        f"{largest['nodes_per_sec']:.0f} nodes/s, cache={largest['cache_mode']}"
    )


def validate_metrics(path):
    counters = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("event") == "counter":
                counters[rec["name"]] = rec["value"]
    if counters.get("cache/resident_bytes", 0) <= 0:
        fail("metrics: cache/resident_bytes missing or zero")
    engaged = counters.get("cache/mode_compressed", 0) + counters.get("cache/mode_rebuild", 0)
    if engaged != 1:
        fail("metrics: budgeted run did not engage a fallback cache rung")
    print(
        "validate_scale: metrics OK — budgeted cache engaged "
        f"({int(counters.get('cache/resident_bytes', 0))} resident bytes)"
    )


def main():
    args = sys.argv[1:]
    metrics = None
    if "--metrics" in args:
        i = args.index("--metrics")
        metrics = args[i + 1]
        del args[i : i + 2]
    validate_report(args[0] if args else "BENCH_scale.json")
    if metrics:
        validate_metrics(metrics)


if __name__ == "__main__":
    main()
