//! # coane-bench
//!
//! The experiment harness regenerating every table and figure of the CoANE
//! paper's evaluation section, plus Criterion microbenchmarks.
//!
//! Binaries (all accept `--scale <f>` to shrink the synthetic datasets,
//! `--epochs <n>`, `--seed <n>`, and most accept `--datasets a,b,c` and
//! `--methods a,b,c`):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `exp_classification` | Tables 2–3: Macro/Micro-F1 node classification |
//! | `exp_linkpred` | Table 4 (left): link-prediction AUC |
//! | `exp_clustering` | Table 4 (right) + Table 5: clustering NMI |
//! | `fig3_tsne` | Fig. 3: t-SNE visualization coordinates |
//! | `fig4_sensitivity` | Fig. 4a–c: context length / #walks / dimension |
//! | `fig4_runtime` | Fig. 4d: AUC vs training time per epoch |
//! | `fig5_neighbors` | Fig. 5: walk-context vs fixed-hop coverage |
//! | `fig6_ablation` | Fig. 6a/6c/6d: layer, objective, and γ ablations |
//! | `fig6_filters` | Fig. 6b: learned filter-weight heat map |
//!
//! Measured numbers are printed next to the paper's published values; the
//! *shape* (method ordering, trends) is the reproduction target — absolute
//! values differ because the datasets are synthetic replicas (DESIGN.md §3).

pub mod args;
pub mod methods;
pub mod paper;
pub mod runner;
pub mod table;
pub mod tuning;

pub use args::Args;
pub use methods::{all_methods, Method};
pub use runner::{classification_run, clustering_run, linkpred_run};
