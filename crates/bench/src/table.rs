//! Plain-text table rendering with paper-reference columns.

/// A simple fixed-width table printer: header row plus data rows, each cell
/// a string. Columns are padded to the widest cell.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a measured value with its paper reference: `0.812 (paper 0.947)`
/// or just the value when no reference exists.
pub fn with_reference(measured: f64, reference: Option<f64>) -> String {
    match reference {
        Some(r) => format!("{measured:.3} (paper {r:.3})"),
        None => format!("{measured:.3}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Method", "AUC"]);
        t.row(vec!["CoANE".into(), "0.947".into()]);
        t.row(vec!["x".into(), "0.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].starts_with("CoANE"));
        // aligned: "AUC" column starts at the same offset in all rows
        let col = lines[0].find("AUC").unwrap();
        assert_eq!(&lines[2][col..col + 5], "0.947");
    }

    #[test]
    fn rows_padded_to_header() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn reference_formatting() {
        assert_eq!(with_reference(0.5, Some(0.9)), "0.500 (paper 0.900)");
        assert_eq!(with_reference(0.5, None), "0.500");
    }
}
