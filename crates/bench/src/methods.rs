//! Uniform access to every embedding method for the experiment binaries.

use coane_baselines::{
    skipgram::SkipGramConfig, Anrl, Arga, Asne, Dane, DeepWalk, Embedder, Gae, GaeKind, GraphSage,
    Line, Node2Vec, Stne,
};
use coane_core::{Coane, CoaneConfig};
use coane_graph::AttributedGraph;
use coane_nn::Matrix;

/// Every embedding method the harness can run. Mirrors the paper's method
/// column, all thirteen methods implemented (DANE/ANRL/STNE as lite
/// variants; see DESIGN.md §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// CoANE (ours).
    Coane,
    /// DeepWalk (structure-only skip-gram).
    DeepWalk,
    /// node2vec with p = q = 1 (paper setting).
    Node2Vec,
    /// LINE (1st + 2nd order).
    Line,
    /// GAE.
    Gae,
    /// VGAE.
    Vgae,
    /// GraphSAGE-mean, unsupervised.
    GraphSage,
    /// ASNE.
    Asne,
    /// DANE-lite.
    Dane,
    /// ANRL-lite.
    Anrl,
    /// ARGA (adversarially regularized GAE).
    Arga,
    /// ARVGA (adversarially regularized VGAE).
    Arvga,
    /// STNE-lite (GRU self-translation).
    Stne,
}

impl Method {
    /// All methods in the paper's table order (plain NE first, CoANE last).
    pub const ALL: [Method; 13] = [
        Method::Node2Vec,
        Method::DeepWalk,
        Method::Line,
        Method::Gae,
        Method::Vgae,
        Method::GraphSage,
        Method::Dane,
        Method::Asne,
        Method::Stne,
        Method::Arga,
        Method::Arvga,
        Method::Anrl,
        Method::Coane,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Coane => "CoANE",
            Method::DeepWalk => "DeepWalk",
            Method::Node2Vec => "node2vec",
            Method::Line => "LINE",
            Method::Gae => "GAE",
            Method::Vgae => "VGAE",
            Method::GraphSage => "GraphSAGE",
            Method::Asne => "ASNE",
            Method::Dane => "DANE",
            Method::Anrl => "ANRL",
            Method::Arga => "ARGA",
            Method::Arvga => "ARVGA",
            Method::Stne => "STNE",
        }
    }

    /// Parses a (case-insensitive) method name.
    pub fn parse(s: &str) -> Option<Method> {
        let lower = s.to_lowercase();
        Method::ALL.into_iter().find(|m| m.name().to_lowercase() == lower)
    }

    /// Trains the method with `dim`-dimensional output. `epochs` scales each
    /// method's own default training length proportionally (CoANE's default
    /// is taken as the unit).
    pub fn embed(self, graph: &AttributedGraph, dim: usize, epochs: usize, seed: u64) -> Matrix {
        let sg = SkipGramConfig {
            dim,
            walks_per_node: 10,
            walk_length: 80,
            epochs: (epochs / 4).max(1),
            seed,
            ..Default::default()
        };
        match self {
            Method::Coane => {
                Coane::new(CoaneConfig { embed_dim: dim, epochs, seed, ..Default::default() })
                    .fit(graph)
            }
            Method::DeepWalk => DeepWalk { config: sg }.embed(graph),
            Method::Node2Vec => Node2Vec { config: sg, p: 1.0, q: 1.0 }.embed(graph),
            Method::Line => {
                Line { dim, samples_per_edge: (epochs * 5).max(10), seed, ..Default::default() }
                    .embed(graph)
            }
            Method::Gae => Gae {
                kind: GaeKind::Plain,
                dim,
                hidden: 256,
                epochs: epochs * 10,
                seed,
                ..Default::default()
            }
            .embed(graph),
            Method::Vgae => Gae {
                kind: GaeKind::Variational,
                dim,
                hidden: 256,
                epochs: epochs * 10,
                seed,
                ..Default::default()
            }
            .embed(graph),
            Method::GraphSage => {
                GraphSage { dim, hidden: 256, epochs: epochs * 6, seed, ..Default::default() }
                    .embed(graph)
            }
            Method::Asne => Asne { dim, epochs, seed, ..Default::default() }.embed(graph),
            Method::Dane => {
                Dane { dim, epochs: (epochs * 2).max(2), seed, ..Default::default() }.embed(graph)
            }
            Method::Anrl => Anrl { dim, epochs, seed, ..Default::default() }.embed(graph),
            Method::Arga | Method::Arvga => Arga {
                variational: self == Method::Arvga,
                dim,
                hidden: 256,
                epochs: epochs * 10,
                seed,
                ..Default::default()
            }
            .embed(graph),
            Method::Stne => {
                Stne { dim, epochs: (epochs / 2).max(1), seed, ..Default::default() }.embed(graph)
            }
        }
    }
}

/// Resolves a `--methods a,b,c` list (or `None` for all methods).
pub fn all_methods(selection: Option<Vec<String>>) -> Vec<Method> {
    match selection {
        None => Method::ALL.to_vec(),
        Some(names) => names
            .iter()
            .map(|s| Method::parse(s).unwrap_or_else(|| panic!("unknown method: {s}")))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m));
            assert_eq!(Method::parse(&m.name().to_uppercase()), Some(m));
        }
        assert_eq!(Method::parse("STNE"), Some(Method::Stne));
    }

    #[test]
    fn selection_resolution() {
        assert_eq!(all_methods(None).len(), 13);
        let picked = all_methods(Some(vec!["coane".into(), "gae".into()]));
        assert_eq!(picked, vec![Method::Coane, Method::Gae]);
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics() {
        all_methods(Some(vec!["nope".into()]));
    }
}
