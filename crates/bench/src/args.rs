//! A tiny dependency-free CLI argument parser shared by all experiment
//! binaries (`--key value` flags plus `--flag` booleans).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses from an iterator of tokens (testable form).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let toks: Vec<String> = tokens.into_iter().collect();
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < toks.len() && !toks[i + 1].starts_with("--") {
                    values.insert(key.to_string(), toks[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { values, flags }
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `--key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Whether a bare `--flag` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list value of `--key`.
    pub fn get_list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key)
            .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn values_and_flags() {
        let a = parse("--scale 0.5 --full --datasets cora,webkb-texas");
        assert_eq!(a.get("scale"), Some("0.5"));
        assert_eq!(a.get_or("scale", 1.0f64), 0.5);
        assert!(a.has_flag("full"));
        assert!(!a.has_flag("fast"));
        assert_eq!(
            a.get_list("datasets").unwrap(),
            vec!["cora".to_string(), "webkb-texas".to_string()]
        );
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.get_or("epochs", 7usize), 7);
        assert!(a.get_list("methods").is_none());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("--epochs 3 --verbose");
        assert_eq!(a.get_or("epochs", 0usize), 3);
        assert!(a.has_flag("verbose"));
    }
}
