//! Shared experiment logic for the three evaluation tasks.

use coane_datasets::Preset;
use coane_eval::{classify_nodes, link_prediction_auc, nmi_clustering};
use coane_graph::split::node_label_split;
use coane_graph::{EdgeSplit, SplitConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::methods::Method;

/// WebKB's subnetworks are tiny (≈200 nodes); scaling them down produces
/// noise, so the harness always generates them at full size regardless of
/// `--scale`.
pub fn effective_scale(preset: Preset, scale: f64) -> f64 {
    if Preset::WEBKB.contains(&preset) {
        1.0
    } else {
        scale
    }
}

/// Common run parameters for the experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Dataset scale in `(0, 1]` (1 = Table 1 size).
    pub scale: f64,
    /// Embedding dimensionality (paper: 128).
    pub dim: usize,
    /// CoANE-equivalent training epochs (baselines scale their own units).
    pub epochs: usize,
    /// Seed for datasets, splits, and methods.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { scale: 0.2, dim: 128, epochs: 8, seed: 42 }
    }
}

/// One classification measurement.
#[derive(Clone, Copy, Debug)]
pub struct ClassificationResult {
    /// Method measured.
    pub method: Method,
    /// Training ratio.
    pub ratio: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Micro-averaged F1.
    pub micro_f1: f64,
}

/// Runs node classification (Tables 2–3 protocol) for every method × ratio.
pub fn classification_run(
    preset: Preset,
    methods: &[Method],
    ratios: &[f64],
    rc: &RunConfig,
) -> Vec<ClassificationResult> {
    let (graph, _) = preset.generate_scaled(effective_scale(preset, rc.scale), rc.seed);
    let labels = graph.labels().expect("labeled dataset").to_vec();
    let mut out = Vec::new();
    for &method in methods {
        let emb = method.embed(&graph, rc.dim, rc.epochs, rc.seed);
        for &ratio in ratios {
            let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ (ratio * 1000.0) as u64);
            let (train, test) = node_label_split(graph.num_nodes(), ratio, &mut rng);
            let scores = classify_nodes(emb.as_slice(), emb.cols(), &labels, &train, &test, 1e-3);
            out.push(ClassificationResult {
                method,
                ratio,
                macro_f1: scores.macro_f1,
                micro_f1: scores.micro_f1,
            });
        }
    }
    out
}

/// Runs link prediction (Table 4 left protocol: 70/10/20 split, Hadamard +
/// logistic regression, AUC).
pub fn linkpred_run(preset: Preset, methods: &[Method], rc: &RunConfig) -> Vec<(Method, f64)> {
    let (graph, _) = preset.generate_scaled(effective_scale(preset, rc.scale), rc.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x11);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    methods
        .iter()
        .map(|&method| {
            let emb = method.embed(&split.train_graph, rc.dim, rc.epochs, rc.seed);
            let auc = link_prediction_auc(
                emb.as_slice(),
                emb.cols(),
                &split.train_pos,
                &split.train_neg,
                &split.test_pos,
                &split.test_neg,
            );
            (method, auc)
        })
        .collect()
}

/// Runs node clustering (Table 4 right / Table 5 protocol: k-means with
/// K = #labels, NMI).
pub fn clustering_run(preset: Preset, methods: &[Method], rc: &RunConfig) -> Vec<(Method, f64)> {
    let (graph, _) = preset.generate_scaled(effective_scale(preset, rc.scale), rc.seed);
    let labels = graph.labels().expect("labeled dataset");
    methods
        .iter()
        .map(|&method| {
            let emb = method.embed(&graph, rc.dim, rc.epochs, rc.seed);
            let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x22);
            let score = nmi_clustering(emb.as_slice(), emb.cols(), labels, &mut rng);
            (method, score)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rc() -> RunConfig {
        RunConfig { scale: 0.05, dim: 16, epochs: 2, seed: 7 }
    }

    #[test]
    fn classification_produces_all_cells() {
        let res = classification_run(
            Preset::Cora,
            &[Method::Coane, Method::DeepWalk],
            &[0.2, 0.5],
            &tiny_rc(),
        );
        assert_eq!(res.len(), 4);
        for r in &res {
            assert!((0.0..=1.0).contains(&r.macro_f1));
            assert!((0.0..=1.0).contains(&r.micro_f1));
        }
    }

    #[test]
    fn linkpred_beats_chance_for_coane() {
        let res = linkpred_run(Preset::Cora, &[Method::Coane], &tiny_rc());
        assert_eq!(res.len(), 1);
        assert!(res[0].1 > 0.5, "auc {}", res[0].1);
    }

    #[test]
    fn clustering_in_range() {
        let res = clustering_run(Preset::WebKbCornell, &[Method::Coane], &tiny_rc());
        assert!((0.0..=1.0).contains(&res[0].1));
    }
}
