//! Published reference numbers from the paper's tables, printed alongside
//! measured values so each experiment's output records paper-vs-measured.
//!
//! All twelve competing methods plus CoANE are tabulated.

/// Per-(dataset, method) Table 2/3 row:
/// `[macro@5%, macro@20%, macro@50%, micro@5%, micro@20%, micro@50%]`.
pub fn classification_reference(dataset: &str, method: &str) -> Option<[f64; 6]> {
    let d = normalize_dataset(dataset);
    let rows: &[(&str, [f64; 6])] = match d {
        "cora" => &[
            ("node2vec", [0.663, 0.714, 0.750, 0.627, 0.677, 0.734]),
            ("LINE", [0.306, 0.338, 0.363, 0.093, 0.179, 0.243]),
            ("GAE", [0.737, 0.771, 0.786, 0.714, 0.744, 0.770]),
            ("VGAE", [0.669, 0.782, 0.817, 0.649, 0.762, 0.807]),
            ("GraphSAGE", [0.622, 0.652, 0.657, 0.520, 0.565, 0.592]),
            ("DANE", [0.309, 0.366, 0.451, 0.086, 0.189, 0.316]),
            ("ASNE", [0.353, 0.395, 0.428, 0.178, 0.280, 0.338]),
            ("STNE", [0.488, 0.624, 0.673, 0.398, 0.560, 0.638]),
            ("ARGA", [0.477, 0.784, 0.808, 0.407, 0.761, 0.797]),
            ("ARVGA", [0.529, 0.808, 0.821, 0.474, 0.783, 0.812]),
            ("ANRL", [0.673, 0.747, 0.758, 0.622, 0.709, 0.732]),
            ("CoANE", [0.767, 0.818, 0.840, 0.737, 0.787, 0.824]),
        ],
        "citeseer" => &[
            ("node2vec", [0.437, 0.522, 0.555, 0.375, 0.461, 0.487]),
            ("LINE", [0.216, 0.238, 0.256, 0.115, 0.181, 0.208]),
            ("GAE", [0.552, 0.577, 0.585, 0.471, 0.501, 0.500]),
            ("VGAE", [0.506, 0.645, 0.684, 0.441, 0.585, 0.620]),
            ("GraphSAGE", [0.608, 0.642, 0.653, 0.526, 0.567, 0.575]),
            ("DANE", [0.208, 0.281, 0.414, 0.057, 0.155, 0.294]),
            ("ASNE", [0.234, 0.269, 0.310, 0.155, 0.221, 0.258]),
            ("STNE", [0.319, 0.437, 0.488, 0.248, 0.377, 0.417]),
            ("ARGA", [0.312, 0.639, 0.675, 0.250, 0.583, 0.605]),
            ("ARVGA", [0.341, 0.721, 0.736, 0.280, 0.647, 0.660]),
            ("ANRL", [0.696, 0.735, 0.746, 0.609, 0.679, 0.684]),
            ("CoANE", [0.723, 0.744, 0.759, 0.628, 0.680, 0.696]),
        ],
        "pubmed" => &[
            ("node2vec", [0.760, 0.773, 0.776, 0.739, 0.754, 0.759]),
            ("LINE", [0.413, 0.433, 0.441, 0.319, 0.332, 0.333]),
            ("GAE", [0.751, 0.764, 0.771, 0.749, 0.761, 0.768]),
            ("VGAE", [0.819, 0.826, 0.829, 0.812, 0.820, 0.824]),
            ("GraphSAGE", [0.645, 0.651, 0.654, 0.620, 0.625, 0.630]),
            ("DANE", [0.697, 0.759, 0.786, 0.701, 0.760, 0.787]),
            ("ASNE", [0.676, 0.697, 0.703, 0.663, 0.686, 0.693]),
            ("STNE", [0.546, 0.575, 0.583, 0.470, 0.517, 0.534]),
            ("ARGA", [0.407, 0.673, 0.680, 0.306, 0.678, 0.685]),
            ("ARVGA", [0.400, 0.762, 0.781, 0.221, 0.754, 0.775]),
            ("ANRL", [0.707, 0.742, 0.759, 0.705, 0.742, 0.760]),
            ("CoANE", [0.825, 0.842, 0.851, 0.816, 0.836, 0.847]),
        ],
        "webkb" => &[
            ("node2vec", [0.448, 0.473, 0.491, 0.169, 0.166, 0.207]),
            ("LINE", [0.455, 0.478, 0.500, 0.142, 0.143, 0.166]),
            ("GAE", [0.478, 0.478, 0.491, 0.131, 0.129, 0.144]),
            ("VGAE", [0.449, 0.490, 0.530, 0.204, 0.220, 0.270]),
            ("GraphSAGE", [0.483, 0.522, 0.563, 0.183, 0.202, 0.254]),
            ("DANE", [0.472, 0.483, 0.511, 0.146, 0.148, 0.182]),
            ("ASNE", [0.451, 0.486, 0.489, 0.151, 0.150, 0.176]),
            ("STNE", [0.432, 0.476, 0.487, 0.169, 0.156, 0.200]),
            ("ARGA", [0.434, 0.483, 0.528, 0.152, 0.192, 0.254]),
            ("ARVGA", [0.431, 0.514, 0.559, 0.166, 0.226, 0.286]),
            ("ANRL", [0.494, 0.512, 0.590, 0.198, 0.190, 0.310]),
            ("CoANE", [0.553, 0.597, 0.683, 0.268, 0.296, 0.396]),
        ],
        "flickr" => &[
            ("node2vec", [0.437, 0.489, 0.506, 0.400, 0.476, 0.496]),
            ("LINE", [0.257, 0.303, 0.328, 0.236, 0.288, 0.317]),
            ("GAE", [0.243, 0.251, 0.272, 0.181, 0.195, 0.213]),
            ("VGAE", [0.287, 0.312, 0.347, 0.234, 0.274, 0.314]),
            ("GraphSAGE", [0.145, 0.158, 0.170, 0.098, 0.123, 0.142]),
            ("DANE", [0.160, 0.205, 0.233, 0.135, 0.195, 0.228]),
            ("ASNE", [0.395, 0.457, 0.489, 0.362, 0.440, 0.477]),
            ("STNE", [0.251, 0.282, 0.301, 0.222, 0.264, 0.281]),
            ("ARGA", [0.155, 0.189, 0.213, 0.131, 0.168, 0.201]),
            ("ARVGA", [0.159, 0.109, 0.128, 0.095, 0.022, 0.043]),
            ("ANRL", [0.215, 0.286, 0.330, 0.196, 0.278, 0.324]),
            ("CoANE", [0.482, 0.544, 0.589, 0.436, 0.518, 0.573]),
        ],
        _ => return None,
    };
    rows.iter().find(|(m, _)| *m == method).map(|&(_, v)| v)
}

/// Table 4 (left): link-prediction AUC.
pub fn linkpred_reference(dataset: &str, method: &str) -> Option<f64> {
    lookup_five(
        dataset,
        method,
        &[
            ("node2vec", [0.896, 0.901, 0.927, 0.684, 0.748]),
            ("LINE", [0.632, 0.626, 0.754, 0.664, 0.648]),
            ("GAE", [0.921, 0.934, 0.947, 0.507, 0.903]),
            ("VGAE", [0.923, 0.949, 0.975, 0.639, 0.914]),
            ("GraphSAGE", [0.757, 0.836, 0.744, 0.700, 0.502]),
            ("DANE", [0.663, 0.768, 0.869, 0.635, 0.901]),
            ("ASNE", [0.571, 0.586, 0.792, 0.448, 0.848]),
            ("STNE", [0.846, 0.885, 0.880, 0.670, 0.913]),
            ("ARGA", [0.941, 0.966, 0.920, 0.614, 0.925]),
            ("ARVGA", [0.927, 0.972, 0.877, 0.765, 0.926]),
            ("ANRL", [0.871, 0.965, 0.769, 0.752, 0.601]),
            ("CoANE", [0.947, 0.982, 0.969, 0.784, 0.926]),
        ],
    )
}

/// Table 4 (right): clustering NMI.
pub fn clustering_reference(dataset: &str, method: &str) -> Option<f64> {
    lookup_five(
        dataset,
        method,
        &[
            ("node2vec", [0.367, 0.149, 0.273, 0.058, 0.165]),
            ("LINE", [0.052, 0.005, 0.003, 0.074, 0.088]),
            ("GAE", [0.374, 0.198, 0.228, 0.007, 0.109]),
            ("VGAE", [0.361, 0.157, 0.275, 0.092, 0.131]),
            ("GraphSAGE", [0.382, 0.305, 0.147, 0.128, 0.037]),
            ("DANE", [0.021, 0.032, 0.148, 0.083, 0.015]),
            ("ASNE", [0.073, 0.005, 0.165, 0.078, 0.111]),
            ("STNE", [0.207, 0.068, 0.038, 0.069, 0.081]),
            ("ARGA", [0.452, 0.181, 0.211, 0.092, 0.066]),
            ("ARVGA", [0.530, 0.381, 0.244, 0.104, 0.108]),
            ("ANRL", [0.391, 0.407, 0.099, 0.132, 0.014]),
            ("CoANE", [0.544, 0.435, 0.313, 0.180, 0.211]),
        ],
    )
}

/// Table 5: NMI per WebKB subnetwork
/// (`cornell`, `texas`, `washington`, `wisconsin`).
pub fn webkb_clustering_reference(network: &str, method: &str) -> Option<f64> {
    let idx = match normalize_dataset(network) {
        "webkb-cornell" | "cornell" => 0,
        "webkb-texas" | "texas" => 1,
        "webkb-washington" | "washington" => 2,
        "webkb-wisconsin" | "wisconsin" => 3,
        _ => return None,
    };
    let rows: &[(&str, [f64; 4])] = &[
        ("node2vec", [0.066, 0.070, 0.044, 0.053]),
        ("LINE", [0.066, 0.093, 0.085, 0.051]),
        ("GAE", [0.002, 0.000, 0.027, 0.000]),
        ("VGAE", [0.086, 0.081, 0.103, 0.096]),
        ("GraphSAGE", [0.105, 0.157, 0.140, 0.111]),
        ("DANE", [0.067, 0.087, 0.118, 0.061]),
        ("ASNE", [0.066, 0.094, 0.103, 0.047]),
        ("STNE", [0.071, 0.088, 0.065, 0.052]),
        ("ARGA", [0.086, 0.093, 0.099, 0.091]),
        ("ARVGA", [0.091, 0.094, 0.128, 0.101]),
        ("ANRL", [0.114, 0.116, 0.167, 0.131]),
        ("CoANE", [0.191, 0.200, 0.181, 0.148]),
    ];
    rows.iter().find(|(m, _)| *m == method).map(|&(_, v)| v[idx])
}

fn lookup_five(dataset: &str, method: &str, rows: &[(&str, [f64; 5])]) -> Option<f64> {
    let idx = match normalize_dataset(dataset) {
        "cora" => 0,
        "citeseer" => 1,
        "pubmed" => 2,
        "webkb" => 3,
        "flickr" => 4,
        _ => return None,
    };
    rows.iter().find(|(m, _)| *m == method).map(|&(_, v)| v[idx])
}

/// Maps preset names (e.g. `webkb-cornell`) onto the table groupings the
/// paper uses (`webkb` aggregates the four subnetworks except in Table 5).
pub fn normalize_dataset(name: &str) -> &str {
    match name {
        "webkb-cornell" | "webkb-texas" | "webkb-washington" | "webkb-wisconsin" => "webkb",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coane_wins_table4_link_prediction_except_pubmed() {
        // The paper's "39 of 40 cases": VGAE beats CoANE only on Pubmed AUC.
        for d in ["cora", "citeseer", "webkb", "flickr"] {
            let coane = linkpred_reference(d, "CoANE").unwrap();
            for m in ["node2vec", "LINE", "GAE", "VGAE", "GraphSAGE", "DANE", "ASNE", "ANRL"] {
                assert!(coane >= linkpred_reference(d, m).unwrap(), "{m} beats CoANE on {d}");
            }
        }
        assert!(
            linkpred_reference("pubmed", "VGAE").unwrap()
                > linkpred_reference("pubmed", "CoANE").unwrap()
        );
    }

    #[test]
    fn coane_tops_all_clustering_tables() {
        for d in ["cora", "citeseer", "pubmed", "webkb", "flickr"] {
            let coane = clustering_reference(d, "CoANE").unwrap();
            for m in ["node2vec", "GAE", "VGAE", "ANRL"] {
                assert!(coane > clustering_reference(d, m).unwrap());
            }
        }
        for net in ["cornell", "texas", "washington", "wisconsin"] {
            let coane = webkb_clustering_reference(net, "CoANE").unwrap();
            for m in ["node2vec", "GraphSAGE", "ANRL"] {
                assert!(coane > webkb_clustering_reference(net, m).unwrap());
            }
        }
    }

    #[test]
    fn classification_rows_complete() {
        for d in ["cora", "citeseer", "pubmed", "webkb", "flickr"] {
            for m in
                ["node2vec", "LINE", "GAE", "VGAE", "GraphSAGE", "DANE", "ASNE", "ANRL", "CoANE"]
            {
                let row =
                    classification_reference(d, m).unwrap_or_else(|| panic!("missing ({d}, {m})"));
                assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn subnetworks_normalize_to_webkb() {
        assert_eq!(normalize_dataset("webkb-texas"), "webkb");
        assert!(classification_reference("webkb-cornell", "CoANE").is_some());
        assert!(linkpred_reference("webkb-wisconsin", "GAE").is_some());
    }

    #[test]
    fn unknown_entries_are_none() {
        assert!(classification_reference("cora", "STNE").is_some());
        assert!(linkpred_reference("nope", "CoANE").is_none());
        assert!(webkb_clustering_reference("cora", "CoANE").is_none());
    }
}
