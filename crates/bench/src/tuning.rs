//! The paper's hyperparameter-tuning protocol (§4.1): the negative-loss
//! controller `a ∈ [1e-5, 1e-1]`, the context window `c ∈ {3,5,7,9,11}` and
//! the attribute-preservation controller `γ ∈ [1e3, 1e7]` are tuned **on the
//! validation set** of the link-prediction split. This module implements
//! that grid search over any subset of the three axes.

use coane_core::{Coane, CoaneConfig};
use coane_eval::link_prediction_auc;
use coane_graph::EdgeSplit;

/// One grid point and its validation score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuningResult {
    /// Negative-loss strength `a`.
    pub neg_strength: f32,
    /// Context window size `c`.
    pub context_size: usize,
    /// Attribute-preservation weight `γ`.
    pub gamma: f32,
    /// Validation-set AUC.
    pub val_auc: f64,
}

/// The search grid. Empty axes keep the base configuration's value.
#[derive(Clone, Debug)]
pub struct TuningGrid {
    /// Candidate `a` values (paper range `[1e-5, 1e-1]`).
    pub neg_strengths: Vec<f32>,
    /// Candidate `c` values (paper set `{3,5,7,9,11}`).
    pub context_sizes: Vec<usize>,
    /// Candidate `γ` values (paper range `[1e3, 1e7]`, our MSE-mean scale).
    pub gammas: Vec<f32>,
}

impl TuningGrid {
    /// The paper's grid, decade-spaced on the continuous axes. The γ axis is
    /// expressed on this crate's mean-reduced MSE scale (DESIGN.md §2.3).
    pub fn paper() -> Self {
        Self {
            neg_strengths: vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
            context_sizes: vec![3, 5, 7, 9, 11],
            gammas: vec![1e-1, 1.0, 1e1, 1e2, 1e3],
        }
    }

    /// A small smoke-test grid.
    pub fn tiny() -> Self {
        Self { neg_strengths: vec![1e-3], context_sizes: vec![3, 5], gammas: vec![10.0] }
    }

    /// Number of grid points the search will evaluate for `base`.
    pub fn points_len(&self, base: &CoaneConfig) -> usize {
        self.points(base).len()
    }

    fn points(&self, base: &CoaneConfig) -> Vec<(f32, usize, f32)> {
        let a_axis: Vec<f32> = if self.neg_strengths.is_empty() {
            vec![base.neg_strength]
        } else {
            self.neg_strengths.clone()
        };
        let c_axis: Vec<usize> = if self.context_sizes.is_empty() {
            vec![base.context_size]
        } else {
            self.context_sizes.clone()
        };
        let g_axis: Vec<f32> =
            if self.gammas.is_empty() { vec![base.gamma] } else { self.gammas.clone() };
        let mut out = Vec::with_capacity(a_axis.len() * c_axis.len() * g_axis.len());
        for &a in &a_axis {
            for &c in &c_axis {
                for &g in &g_axis {
                    out.push((a, c, g));
                }
            }
        }
        out
    }
}

/// Grid-searches `grid` around `base`, scoring each point by validation AUC
/// on `split`, exactly as §4.1 prescribes. Returns all results sorted best
/// first; `.first()` is the selected configuration.
pub fn tune(base: &CoaneConfig, grid: &TuningGrid, split: &EdgeSplit) -> Vec<TuningResult> {
    let mut results: Vec<TuningResult> = grid
        .points(base)
        .into_iter()
        .map(|(a, c, g)| {
            let cfg = CoaneConfig { neg_strength: a, context_size: c, gamma: g, ..base.clone() };
            let emb = Coane::new(cfg).fit(&split.train_graph);
            let val_auc = link_prediction_auc(
                emb.as_slice(),
                emb.cols(),
                &split.train_pos,
                &split.train_neg,
                &split.val_pos,
                &split.val_neg,
            );
            TuningResult { neg_strength: a, context_size: c, gamma: g, val_auc }
        })
        .collect();
    results.sort_by(|x, y| y.val_auc.partial_cmp(&x.val_auc).unwrap_or(std::cmp::Ordering::Equal));
    results
}

/// Applies the best tuning result onto a base configuration.
pub fn apply(base: &CoaneConfig, best: &TuningResult) -> CoaneConfig {
    CoaneConfig {
        neg_strength: best.neg_strength,
        context_size: best.context_size,
        gamma: best.gamma,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::Preset;
    use coane_graph::SplitConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quick_base() -> CoaneConfig {
        CoaneConfig {
            embed_dim: 16,
            epochs: 2,
            walk_length: 20,
            batch_size: 64,
            decoder_hidden: (16, 16),
            ..Default::default()
        }
    }

    #[test]
    fn tiny_grid_searches_and_sorts() {
        let (graph, _) = Preset::WebKbCornell.generate_scaled(1.0, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
        let results = tune(&quick_base(), &TuningGrid::tiny(), &split);
        assert_eq!(results.len(), 2);
        assert!(results[0].val_auc >= results[1].val_auc, "not sorted");
        for r in &results {
            assert!((0.0..=1.0).contains(&r.val_auc));
        }
        let tuned = apply(&quick_base(), &results[0]);
        assert_eq!(tuned.context_size, results[0].context_size);
    }

    #[test]
    fn empty_axes_fall_back_to_base() {
        let base = quick_base();
        let grid = TuningGrid { neg_strengths: vec![], context_sizes: vec![7], gammas: vec![] };
        let points = grid.points(&base);
        assert_eq!(points, vec![(base.neg_strength, 7, base.gamma)]);
    }

    #[test]
    fn paper_grid_has_125_points() {
        let grid = TuningGrid::paper();
        assert_eq!(grid.points(&quick_base()).len(), 125);
    }
}
