//! Fig. 5: analyzing neighbour selection on the Cora replica.
//!
//! Part 1 (Fig. 5a/5b quantified): for every node, compare the region
//! covered by its random-walk contexts against its first-two-hop
//! neighbourhood — region size, label purity, and attribute similarity.
//! The paper's qualitative claim is that walk regions concentrate better in
//! the anchor's own cluster.
//!
//! Part 2 (Fig. 6a solid lines' setup): link-prediction AUC with context
//! length 1, random-walk contexts vs first-hop-neighbour contexts, with the
//! per-node context volume matched as closely as possible (the paper
//! reports 17.5 vs 22 contexts per node).
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig5_neighbors -- \
//!     [--scale 0.15] [--epochs 8] [--seed 42]
//! ```

use coane_bench::table::Table;
use coane_bench::Args;
use coane_core::{Coane, CoaneConfig, ContextSource};
use coane_datasets::Preset;
use coane_eval::link_prediction_auc;
use coane_graph::{EdgeSplit, SplitConfig};
use coane_walks::analysis::mean_coverage;
use coane_walks::{ContextSet, ContextsConfig, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let scale = args.get_or("scale", 0.15);
    let epochs = args.get_or("epochs", 8usize);
    let seed = args.get_or("seed", 42u64);
    let (graph, _) = Preset::Cora.generate_scaled(scale, seed);
    println!("== Fig. 5: neighbour selection (Cora replica, {} nodes) ==\n", graph.num_nodes());

    // Part 1: coverage comparison.
    let walker = Walker::new(&graph, WalkConfig { seed, ..Default::default() });
    let walks = walker.generate_all(4);
    let contexts = ContextSet::build(
        &walks,
        graph.num_nodes(),
        &ContextsConfig { context_size: 5, seed, ..Default::default() },
    );
    let (walk_cov, hop_cov) = mean_coverage(&graph, &contexts, 2);
    let mut table = Table::new(&["region", "size", "label purity", "attr similarity"]);
    table.row(vec![
        "walk contexts (window 5)".into(),
        walk_cov.region_size.to_string(),
        format!("{:.3}", walk_cov.label_purity),
        format!("{:.3}", walk_cov.attr_similarity),
    ]);
    table.row(vec![
        "first two hops".into(),
        hop_cov.region_size.to_string(),
        format!("{:.3}", hop_cov.label_purity),
        format!("{:.3}", hop_cov.attr_similarity),
    ]);
    table.print();
    println!("(paper: the walk region concentrates more in the anchor's cluster)\n");

    // Part 2: context length 1, random walk vs first-hop contexts.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF5);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let mut auc_table = Table::new(&["context source", "contexts/node", "test AUC"]);
    for (label, source) in [
        ("random walk (c = 1)", ContextSource::RandomWalk),
        ("first-hop neighbors (c = 1)", ContextSource::FirstHop),
    ] {
        let cfg = CoaneConfig {
            context_size: 1,
            context_source: source,
            epochs,
            seed,
            ..Default::default()
        };
        let (emb, stats) = Coane::new(cfg).fit_detailed(&split.train_graph, |_, _| {});
        let auc = link_prediction_auc(
            emb.as_slice(),
            emb.cols(),
            &split.train_pos,
            &split.train_neg,
            &split.test_pos,
            &split.test_neg,
        );
        auc_table.row(vec![
            label.into(),
            format!("{:.1}", stats.num_contexts as f64 / graph.num_nodes() as f64),
            format!("{auc:.3}"),
        ]);
    }
    auc_table.print();
    println!("\n(paper: random-walk contexts clearly beat first-hop-only contexts)");
}
