//! End-to-end training epoch-time benchmark: the current trainer (context-row
//! cache + batch prefetch + parallel no-grad renewal) against two references,
//! at Cora scale with a fixed seed.
//!
//! 1. **Recorded pre-PR baseline** — the trainer as of commit `94abf82`
//!    (triplet batch assembly every epoch, tape-based single-threaded
//!    renewal, cloned gradients), measured on the reference container with
//!    the same protocol. Those numbers are compiled in below; they cannot be
//!    re-measured live because the old kernels no longer exist in-tree.
//! 2. **Live legacy replica** — the pre-PR *pipeline structure* rebuilt from
//!    public APIs on top of today's kernels. Sharing kernels isolates the
//!    pipeline changes (cache/prefetch/no-grad renewal) from kernel
//!    improvements, and lets the bench assert the new pipeline is
//!    bit-identical to the old trajectory before timing anything.
//!
//! Protocol (matches how the baseline was captured): `epochs` epochs per
//! thread count; epoch time = delta between successive `on_epoch` callbacks
//! (so it includes renewal); the first delta — which also covers
//! `prepare()` — is reported separately; the headline number is the minimum
//! over the remaining epochs (minima are the robust estimator on the shared
//! single-core container).
//!
//! Writes `BENCH_train.json` at the repository root. `--smoke` runs a tiny
//! configuration, re-checks bit-identity, and validates the *committed* JSON
//! against the constants compiled into this binary — CI fails if the file
//! goes stale or malformed.

use coane_core::loss::{attribute_loss, negative_loss, positive_loss, total_loss, LossContext};
use coane_core::{Coane, CoaneConfig, CoaneModel, ContextSource};
use coane_datasets::Preset;
use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::xavier_uniform;
use coane_nn::{pool, Adam, Matrix, Tape};
use coane_walks::{
    CoMatrices, ContextSet, ContextsConfig, ContextualNegativeSampler, PositivePairs, WalkConfig,
    Walker,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const PRESET: &str = "cora";
const SCALE: f64 = 1.0;
const SEED: u64 = 42;
const EPOCHS: usize = 4;
const THREADS: [usize; 3] = [1, 2, 4];

/// Pre-PR trainer epoch times (ms), measured at commit `94abf82` on the
/// reference container with the protocol above: minimum over epochs 2–4 of a
/// 4-epoch Cora-scale run, per thread count.
const BASELINE_COMMIT: &str = "94abf82";
const BASELINE_MS: [(usize, f64); 3] = [(1, 831.8), (2, 820.2), (4, 878.6)];

#[derive(Serialize, Deserialize)]
struct ThreadRow {
    threads: usize,
    /// Current trainer: min epoch time after warmup (batches + renewal), ms.
    epoch_ms: f64,
    /// Current trainer: first on-epoch delta, including `prepare()`, ms.
    first_epoch_ms: f64,
    /// Live legacy-pipeline replica on today's kernels, ms (same protocol).
    replica_epoch_ms: f64,
    /// Recorded pre-PR trainer epoch time at `baseline_commit`, ms.
    baseline_epoch_ms: f64,
    /// `baseline_epoch_ms / epoch_ms` — end-to-end gain over the pre-PR
    /// trainer (pipeline + kernel improvements).
    speedup_vs_baseline: f64,
    /// `replica_epoch_ms / epoch_ms` — pipeline-only gain (shared kernels).
    speedup_vs_replica: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    preset: String,
    scale: f64,
    seed: u64,
    epochs: usize,
    baseline_commit: String,
    baseline_note: String,
    rows: Vec<ThreadRow>,
    max_speedup_vs_baseline: f64,
}

fn config(threads: usize) -> CoaneConfig {
    CoaneConfig { epochs: EPOCHS, threads, seed: SEED, ..Default::default() }
}

/// Runs the current trainer, returning (first delta, min later delta, z).
fn time_current(graph: &AttributedGraph, cfg: &CoaneConfig) -> (f64, f64, Matrix) {
    let trainer = Coane::new(cfg.clone());
    let mut last = Instant::now();
    let mut deltas: Vec<f64> = Vec::new();
    let (z, _) = trainer.fit_detailed(graph, |_, _| {
        deltas.push(last.elapsed().as_secs_f64() * 1e3);
        last = Instant::now();
    });
    let min_later = deltas[1..].iter().copied().fold(f64::INFINITY, f64::min);
    (deltas[0], min_later, z)
}

/// The pre-PR training pipeline, rebuilt on public APIs: per-batch triplet
/// assembly, cloned gradients, and a sequential tape-based full-graph
/// renewal — no context-row cache, no prefetch, no no-grad forward. Returns
/// (min epoch ms after warmup, z) so callers can both time it and assert the
/// current trainer reproduces its trajectory bit for bit.
fn time_legacy_replica(graph: &AttributedGraph, cfg: &CoaneConfig) -> (f64, Matrix) {
    assert!(matches!(cfg.context_source, ContextSource::RandomWalk));
    pool::set_threads(cfg.threads);
    let n = graph.num_nodes();

    // prepare() — identical to the trainer's.
    let walker = Walker::new(
        graph,
        WalkConfig {
            walks_per_node: cfg.walks_per_node,
            walk_length: cfg.walk_length,
            p: 1.0,
            q: 1.0,
            seed: cfg.seed,
        },
    );
    let walks = walker.generate_all(cfg.threads);
    let contexts = ContextSet::build(
        &walks,
        n,
        &ContextsConfig {
            context_size: cfg.context_size,
            subsample_t: cfg.subsample_t,
            seed: cfg.seed ^ 0x51_7e,
        },
    );
    let co = CoMatrices::build(&contexts, graph);
    let k_p = contexts.max_count().max(1);
    let pairs = PositivePairs::select(&co, k_p);
    let sampler = ContextualNegativeSampler::new(&contexts);

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0xC0A0E));
    let mut model = CoaneModel::new(cfg, graph.attr_dim(), &mut rng);
    let mut adam = Adam::new(cfg.learning_rate);
    let mut z_cache = xavier_uniform(n, cfg.embed_dim, &mut rng);

    let mut local_of: Vec<Option<u32>> = vec![None; n];
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut epoch_ms: Vec<f64> = Vec::new();
    for _epoch in 0..cfg.epochs {
        let started = Instant::now();
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i as NodeId;
        }
        order.shuffle(&mut rng);
        for batch_nodes in order.chunks(cfg.batch_size) {
            for (k, &v) in batch_nodes.iter().enumerate() {
                local_of[v as usize] = Some(k as u32);
            }
            let batch =
                coane_core::batch::ContextBatch::build(graph, &contexts, batch_nodes, cfg.encoder);
            let negatives: Vec<Vec<NodeId>> = batch_nodes
                .iter()
                .map(|&v| {
                    sampler.negatives(
                        v,
                        cfg.num_negatives,
                        cfg.negative_mode,
                        batch_nodes,
                        &mut rng,
                    )
                })
                .collect();
            let mut tape = Tape::new();
            let vars = model.params.attach(&mut tape);
            let z = model.encode(&mut tape, &vars, &batch);
            let decoded = model.decode(&mut tape, &vars, z);
            let ctx = LossContext { batch_nodes, local: &local_of, z_cache: &z_cache };
            let l_pos = positive_loss(&mut tape, z, &ctx, cfg.ablation.positive, &pairs, &co);
            let l_neg = negative_loss(
                &mut tape,
                z,
                &ctx,
                cfg.ablation.negative,
                &negatives,
                cfg.neg_strength,
            );
            let l_att = attribute_loss(&mut tape, decoded, &batch.x_target, cfg.gamma);
            if let Some(loss) = total_loss(&mut tape, [l_pos, l_neg, l_att]) {
                tape.backward(loss);
                // Pre-PR gradient path: clone out of the tape.
                let grads = model.params.collect_grads(&tape, &vars);
                adam.step(&mut model.params, &grads);
            }
            let z_val = tape.value(z);
            for (k, &v) in batch_nodes.iter().enumerate() {
                z_cache.row_mut(v as usize).copy_from_slice(z_val.row(k));
                local_of[v as usize] = None;
            }
        }
        // Pre-PR renewal: sequential tape forward over the whole graph.
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        for chunk in all.chunks(cfg.batch_size.max(64)) {
            let batch =
                coane_core::batch::ContextBatch::build(graph, &contexts, chunk, cfg.encoder);
            let mut tape = Tape::new();
            let vars = model.params.attach(&mut tape);
            let z = model.encode(&mut tape, &vars, &batch);
            let z_val = tape.value(z);
            for (k, &v) in chunk.iter().enumerate() {
                z_cache.row_mut(v as usize).copy_from_slice(z_val.row(k));
            }
        }
        epoch_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let min_later = epoch_ms[1..].iter().copied().fold(f64::INFINITY, f64::min);
    (min_later, z_cache)
}

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json")
}

fn run_full() {
    let (graph, _) = Preset::Cora.generate_scaled(SCALE, SEED);
    println!(
        "bench_train: {} nodes, {} edges, {} attrs; epochs={EPOCHS}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.attr_dim()
    );
    let mut rows = Vec::new();
    for (i, &threads) in THREADS.iter().enumerate() {
        let cfg = config(threads);
        let (replica_ms, z_replica) = time_legacy_replica(&graph, &cfg);
        let (first_ms, epoch_ms, z) = time_current(&graph, &cfg);
        assert_eq!(
            z.as_slice(),
            z_replica.as_slice(),
            "current trainer diverged from the legacy-pipeline replica at {threads} threads"
        );
        let baseline_ms = BASELINE_MS[i].1;
        assert_eq!(BASELINE_MS[i].0, threads);
        let row = ThreadRow {
            threads,
            epoch_ms,
            first_epoch_ms: first_ms,
            replica_epoch_ms: replica_ms,
            baseline_epoch_ms: baseline_ms,
            speedup_vs_baseline: baseline_ms / epoch_ms,
            speedup_vs_replica: replica_ms / epoch_ms,
        };
        println!(
            "threads={threads}: epoch {:.1} ms (first {:.1} ms) | replica {:.1} ms ({:.2}x) | \
             pre-PR {:.1} ms ({:.2}x)",
            row.epoch_ms,
            row.first_epoch_ms,
            row.replica_epoch_ms,
            row.speedup_vs_replica,
            row.baseline_epoch_ms,
            row.speedup_vs_baseline,
        );
        rows.push(row);
    }
    let max_speedup = rows.iter().map(|r| r.speedup_vs_baseline).fold(f64::NEG_INFINITY, f64::max);
    let report = Report {
        preset: PRESET.to_string(),
        scale: SCALE,
        seed: SEED,
        epochs: EPOCHS,
        baseline_commit: BASELINE_COMMIT.to_string(),
        baseline_note: "pre-PR trainer measured on the reference container; min epoch time \
                        (train + renew) over epochs 2-4 of a 4-epoch run"
            .to_string(),
        rows,
        max_speedup_vs_baseline: max_speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(json_path(), format!("{json}\n")).expect("write BENCH_train.json");
    println!("max speedup vs pre-PR trainer: {max_speedup:.2}x");
    println!("wrote {}", json_path());
}

/// Smoke mode for CI: a fast bit-identity check plus validation of the
/// committed `BENCH_train.json` against this binary's constants. Exits
/// nonzero on any mismatch so a stale or hand-mangled file fails the build.
fn run_smoke() {
    let (graph, _) = Preset::Cora.generate_scaled(0.05, SEED);
    let cfg = CoaneConfig { epochs: 2, threads: 2, seed: SEED, ..Default::default() };
    let (_, z_replica) = time_legacy_replica(&graph, &cfg);
    let (_, _, z) = time_current(&graph, &cfg);
    assert_eq!(
        z.as_slice(),
        z_replica.as_slice(),
        "smoke: current trainer diverged from the legacy-pipeline replica"
    );
    println!("smoke: pipeline bit-identity holds on {} nodes", graph.num_nodes());

    // Telemetry is observation-only: a fully-instrumented run must reproduce
    // the same bits (the no-op fast path is what the timed runs above use).
    let obs = coane_obs::Obs::enabled();
    let z_observed = Coane::try_new(cfg.clone())
        .expect("valid smoke config")
        .with_observer(obs.clone())
        .try_fit(&graph)
        .expect("smoke fit with telemetry");
    assert_eq!(z.as_slice(), z_observed.as_slice(), "smoke: telemetry perturbed the embedding");
    assert!(obs.counter("train/batches") > 0, "smoke: telemetry recorded nothing");
    println!("smoke: telemetry bit-identity holds ({} event(s) recorded)", obs.num_events());

    let text = match std::fs::read_to_string(json_path()) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", json_path())),
    };
    let report: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("malformed BENCH_train.json: {e}")),
    };
    if report.preset != PRESET
        || report.scale != SCALE
        || report.seed != SEED
        || report.epochs != EPOCHS
    {
        fail("BENCH_train.json header does not match the bench constants (stale file?)");
    }
    if report.baseline_commit != BASELINE_COMMIT {
        fail("BENCH_train.json baseline_commit does not match the compiled-in baseline");
    }
    let got: Vec<usize> = report.rows.iter().map(|r| r.threads).collect();
    if got != THREADS {
        fail(&format!("BENCH_train.json thread counts {got:?} != expected {THREADS:?}"));
    }
    let mut max_speedup = f64::NEG_INFINITY;
    for (row, &(threads, baseline_ms)) in report.rows.iter().zip(&BASELINE_MS) {
        let finite = [row.epoch_ms, row.first_epoch_ms, row.replica_epoch_ms]
            .iter()
            .all(|x| x.is_finite() && *x > 0.0);
        if !finite {
            fail(&format!("BENCH_train.json has non-positive timings at threads={threads}"));
        }
        if row.baseline_epoch_ms != baseline_ms {
            fail(&format!(
                "BENCH_train.json baseline_epoch_ms at threads={threads} does not match the \
                 recorded {baseline_ms} ms"
            ));
        }
        if (row.speedup_vs_baseline - baseline_ms / row.epoch_ms).abs() > 1e-9
            || (row.speedup_vs_replica - row.replica_epoch_ms / row.epoch_ms).abs() > 1e-9
        {
            fail(&format!("BENCH_train.json speedups are inconsistent at threads={threads}"));
        }
        max_speedup = max_speedup.max(row.speedup_vs_baseline);
    }
    if (report.max_speedup_vs_baseline - max_speedup).abs() > 1e-9 {
        fail("BENCH_train.json max_speedup_vs_baseline does not match its rows");
    }
    println!(
        "smoke: BENCH_train.json valid (max speedup vs pre-PR {:.2}x)",
        report.max_speedup_vs_baseline
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_train --smoke: {msg}");
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}
