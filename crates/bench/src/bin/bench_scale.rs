//! Memory-budgeted scaling benchmark: trains the streaming pipeline
//! (streamed walk→context generation, blocked co-occurrence accumulation,
//! budgeted context-row cache) on synthetic power-law graphs from 100k to
//! 1M nodes, recording peak RSS and end-to-end throughput per size.
//!
//! Protocol: each size runs in a **fresh child process** (this binary
//! re-executes itself with `--child`), because `VmHWM` in
//! `/proc/self/status` is a per-process high-water mark — reusing one
//! process would let the largest size hide behind an earlier peak. The
//! child generates the graph, trains one epoch at one thread (the reference
//! container is single-core), then reports measurements as one JSON line.
//!
//! The cache budget scales with the graph: `nodes × BUDGET_PER_NODE` bytes.
//! That is deliberately far below the materialized CSR (~1.4 kB/node at
//! this configuration), so every bench size exercises the budget ladder's
//! fallback rungs rather than the trivial always-fits case. The committed
//! report's acceptance bar, re-checked by `validate_scale.py` in CI:
//!
//! * peak RSS must be ≤ the *implied budget* — the sum of every accounted
//!   resident component (graph, attributes, contexts, co-occurrence
//!   matrices, pair list, cache residency, embedding copies) times a 2×
//!   transient-slack factor, plus a 256 MiB process baseline. The cache
//!   component is bounded by `max_cache_bytes`, so RSS staying under this
//!   line means the budget accounting is honest end to end;
//! * peak RSS must be monotone in graph size and throughput positive;
//! * the streaming pipeline's embedding must be **bit-identical** to the
//!   fully materialized pipeline's, cross-checked at the smallest size at
//!   1 and 2 threads (and re-asserted on every CI run by `--smoke`).
//!
//! Writes `BENCH_scale.json` at the repository root. `--smoke` re-proves
//! bit-identity across all three cache rungs and both thread counts on a
//! small graph, then validates the committed JSON against the constants
//! compiled into this binary.

use coane_core::{Coane, CoaneConfig};
use coane_datasets::{scale_graph, ScaleConfig};
use coane_obs::Obs;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SIZES: [usize; 4] = [100_000, 250_000, 500_000, 1_000_000];
const SEED: u64 = 42;
/// Cache budget per node, bytes. ~14× below the materialized CSR at this
/// configuration, forcing the budget ladder off the trivial rung.
const BUDGET_PER_NODE: usize = 100;
const WALK_BLOCK: usize = 4096;
const COOCC_BLOCK: usize = 65_536;
/// Multiplier on accounted resident bytes covering transients the
/// accounting deliberately leaves out: per-block pair sort buffers,
/// prefetch blocks in flight, Adam moments, allocator slop.
const SLACK_FACTOR: f64 = 2.0;
/// Process baseline (binary, stacks, allocator arenas), bytes.
const SLACK_FIXED: u64 = 256 * 1024 * 1024;

fn graph_config(nodes: usize) -> ScaleConfig {
    ScaleConfig { attr_dim: 96, attrs_per_node: 6, seed: SEED, ..ScaleConfig::with_nodes(nodes) }
}

fn train_config(nodes: usize, streaming: bool, threads: usize) -> CoaneConfig {
    CoaneConfig {
        embed_dim: 16,
        context_size: 3,
        walks_per_node: 1,
        walk_length: 10,
        epochs: 1,
        batch_size: 4096,
        decoder_hidden: (32, 32),
        num_negatives: 3,
        subsample_t: 1e-3,
        walk_block_size: if streaming { WALK_BLOCK } else { 0 },
        coocc_block_size: if streaming { COOCC_BLOCK } else { 0 },
        max_cache_bytes: if streaming { nodes * BUDGET_PER_NODE } else { 0 },
        threads,
        seed: SEED,
        ..Default::default()
    }
}

/// 64-bit FNV-1a over the embedding's f32 bit patterns.
fn embed_hash(z: &coane_nn::Matrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in z.as_slice() {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Peak resident set size of this process, bytes (`VmHWM`).
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().expect("parse VmHWM kB");
            return kb * 1024;
        }
    }
    panic!("VmHWM not present in /proc/self/status");
}

#[derive(Serialize, Deserialize, Clone)]
struct SizeRow {
    nodes: usize,
    edges: usize,
    /// Contexts kept after subsampling.
    contexts: u64,
    /// nnz of the co-occurrence matrix D.
    nnz_d: u64,
    max_cache_bytes: usize,
    /// Budget-ladder rung the cache landed on.
    cache_mode: String,
    /// Bytes the chosen cache representation reports resident.
    cache_resident_bytes: u64,
    /// Sum of accounted resident components (see module docs), bytes.
    accounted_bytes: u64,
    /// `SLACK_FACTOR × accounted + SLACK_FIXED` — the bar peak RSS must stay
    /// under for the budget accounting to be considered honest.
    implied_budget_bytes: u64,
    peak_rss_bytes: u64,
    /// Generation + prepare + 1 training epoch + renewal, seconds.
    train_seconds: f64,
    nodes_per_sec: f64,
    embed_hash: String,
}

#[derive(Serialize, Deserialize)]
struct BitCheck {
    nodes: usize,
    /// Streaming-pipeline embedding hash at 1 and 2 threads.
    streaming_hashes: Vec<String>,
    /// Materialized-pipeline embedding hash (1 thread).
    materialized_hash: String,
}

#[derive(Serialize, Deserialize)]
struct Report {
    seed: u64,
    walk_block: usize,
    coocc_block: usize,
    budget_bytes_per_node: usize,
    slack_factor: f64,
    slack_fixed_bytes: u64,
    protocol: String,
    rows: Vec<SizeRow>,
    /// Streaming == materialized, bit for bit, at every checked thread count.
    bit_identical: bool,
    bit_check: BitCheck,
}

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json")
}

// ── child: measure one size in a fresh process ─────────────────────────────

fn run_child(nodes: usize, streaming: bool, threads: usize) {
    let started = Instant::now();
    let (graph, _) = scale_graph(&graph_config(nodes));
    let obs = Obs::enabled();
    let cfg = train_config(nodes, streaming, threads);
    let z = Coane::new(cfg.clone()).with_observer(obs.clone()).fit(&graph);
    let train_seconds = started.elapsed().as_secs_f64();

    let n = graph.num_nodes() as u64;
    let contexts = obs.counter("contexts/kept");
    let nnz_d = obs.counter("cooccurrence/nnz_d");
    let nnz_d1 = obs.counter("cooccurrence/nnz_d1");
    let cache_resident = obs.counter("cache/resident_bytes");
    let cache_mode = if obs.counter("cache/mode_rebuild") > 0 {
        "rebuild"
    } else if obs.counter("cache/mode_compressed") > 0 {
        "compressed"
    } else {
        "materialized"
    };
    // Accounted resident components, bytes. Each term is the exact size of
    // a structure held across training; transients are covered by the slack
    // factor in the implied budget.
    let attrs_nnz = graph.attrs().nnz() as u64;
    let accounted = (graph.num_edges() as u64) * 2 * 8      // CSR adjacency, both directions
        + (n + 1) * 8                                        // adjacency indptr
        + attrs_nnz * 8 + (n + 1) * 8                        // attribute CSR
        + contexts * cfg.context_size as u64 * 4 + (n + 1) * 8 // context slots + offsets
        + (nnz_d * 2 + nnz_d1) * 8 + 3 * (n + 1) * 8         // D, D̃, D¹
        + nnz_d * 12                                         // positive-pair list (≤ nnz of D̃)
        + n * 16                                             // negative-sampler tables
        + cache_resident                                     // cache representation
        + 3 * n * cfg.embed_dim as u64 * 4; // z + per-epoch snapshot + renewal target
    let implied = (accounted as f64 * SLACK_FACTOR) as u64 + SLACK_FIXED;

    let row = SizeRow {
        nodes,
        edges: graph.num_edges(),
        contexts,
        nnz_d,
        max_cache_bytes: cfg.max_cache_bytes,
        cache_mode: cache_mode.to_string(),
        cache_resident_bytes: cache_resident,
        accounted_bytes: accounted,
        implied_budget_bytes: implied,
        peak_rss_bytes: peak_rss_bytes(),
        train_seconds,
        nodes_per_sec: nodes as f64 / train_seconds,
        embed_hash: format!("{:#018x}", embed_hash(&z)),
    };
    println!("{}", serde_json::to_string(&row).expect("serialize child row"));
}

/// Spawns this binary as a measurement child and parses its JSON line.
fn spawn_child(nodes: usize, streaming: bool, threads: usize) -> SizeRow {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--child",
            &nodes.to_string(),
            "--streaming",
            if streaming { "1" } else { "0" },
            "--threads",
            &threads.to_string(),
        ])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "child (nodes={nodes}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf8");
    let line = stdout.lines().last().expect("child printed nothing");
    serde_json::from_str(line).expect("parse child row")
}

// ── full mode ──────────────────────────────────────────────────────────────

fn run_full() {
    // Bit-identity cross-check at the smallest size: streaming at 1 and 2
    // threads vs the fully materialized pipeline.
    println!("bit-identity check at {} nodes...", SIZES[0]);
    let mat = spawn_child(SIZES[0], false, 1);
    let s1 = spawn_child(SIZES[0], true, 1);
    let s2 = spawn_child(SIZES[0], true, 2);
    let bit_identical = s1.embed_hash == mat.embed_hash && s2.embed_hash == mat.embed_hash;
    assert!(
        bit_identical,
        "streaming diverged from materialized: streaming {} / {} vs materialized {}",
        s1.embed_hash, s2.embed_hash, mat.embed_hash
    );
    println!("bit-identity holds: {}", mat.embed_hash);

    let mut rows = Vec::new();
    for &nodes in &SIZES {
        println!("measuring {nodes} nodes...");
        let row = spawn_child(nodes, true, 1);
        assert!(
            row.peak_rss_bytes <= row.implied_budget_bytes,
            "{nodes} nodes: peak RSS {} exceeds implied budget {}",
            row.peak_rss_bytes,
            row.implied_budget_bytes
        );
        println!(
            "  {} edges | cache {} ({} B resident / {} B budget) | peak RSS {:.0} MiB \
             (implied {:.0} MiB) | {:.1}s | {:.0} nodes/s",
            row.edges,
            row.cache_mode,
            row.cache_resident_bytes,
            row.max_cache_bytes,
            row.peak_rss_bytes as f64 / (1 << 20) as f64,
            row.implied_budget_bytes as f64 / (1 << 20) as f64,
            row.train_seconds,
            row.nodes_per_sec
        );
        rows.push(row);
    }
    for pair in rows.windows(2) {
        assert!(
            pair[1].peak_rss_bytes > pair[0].peak_rss_bytes,
            "peak RSS not monotone: {} nodes used more than {} nodes",
            pair[0].nodes,
            pair[1].nodes
        );
    }

    let report = Report {
        seed: SEED,
        walk_block: WALK_BLOCK,
        coocc_block: COOCC_BLOCK,
        budget_bytes_per_node: BUDGET_PER_NODE,
        slack_factor: SLACK_FACTOR,
        slack_fixed_bytes: SLACK_FIXED,
        protocol: "one fresh process per size (VmHWM is per-process); generation + prepare + \
                   1 epoch + renewal at 1 thread; implied budget = slack_factor x accounted \
                   resident components + slack_fixed"
            .to_string(),
        rows,
        bit_identical,
        bit_check: BitCheck {
            nodes: SIZES[0],
            streaming_hashes: vec![s1.embed_hash, s2.embed_hash],
            materialized_hash: mat.embed_hash,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(json_path(), format!("{json}\n")).expect("write BENCH_scale.json");
    println!("wrote {}", json_path());
}

// ── smoke mode ─────────────────────────────────────────────────────────────

/// Fast CI gate: re-proves streaming/blocked/budgeted bit-identity across
/// every cache rung at 1 and 2 threads on a small scale graph, then
/// validates the committed `BENCH_scale.json` against this binary's
/// constants. Exits nonzero on any mismatch.
fn run_smoke() {
    let (graph, _) = scale_graph(&graph_config(2_000));
    let reference = Coane::new(train_config(2_000, false, 1)).fit(&graph);

    // The scaled budget lands on one rung; sweep explicit budgets so the
    // smoke provably covers all three.
    let obs = Obs::enabled();
    let unbounded_cfg = train_config(2_000, false, 1);
    Coane::new(unbounded_cfg).with_observer(obs.clone()).fit(&graph);
    let materialized_bytes = obs.counter("cache/resident_bytes") as usize;
    let rungs = [
        (usize::MAX, "cache/mode_materialized"),
        (materialized_bytes - 1, "cache/mode_compressed"),
        (1, "cache/mode_rebuild"),
    ];
    for threads in [1usize, 2] {
        for (budget, want) in rungs {
            let obs = Obs::enabled();
            let cfg = CoaneConfig { max_cache_bytes: budget, ..train_config(2_000, true, threads) };
            let z = Coane::new(cfg).with_observer(obs.clone()).fit(&graph);
            if obs.counter(want) != 1 {
                fail(&format!("budget {budget} did not select {want} at {threads} threads"));
            }
            if z.as_slice() != reference.as_slice() {
                fail(&format!("{want} diverged from materialized at {threads} threads"));
            }
        }
    }
    println!("smoke: streaming bit-identity holds across 3 cache rungs x 2 thread counts");

    let text = match std::fs::read_to_string(json_path()) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", json_path())),
    };
    let report: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("malformed BENCH_scale.json: {e}")),
    };
    if report.seed != SEED
        || report.walk_block != WALK_BLOCK
        || report.coocc_block != COOCC_BLOCK
        || report.budget_bytes_per_node != BUDGET_PER_NODE
    {
        fail("BENCH_scale.json header does not match the bench constants (stale file?)");
    }
    let sizes: Vec<usize> = report.rows.iter().map(|r| r.nodes).collect();
    if sizes != SIZES {
        fail(&format!("BENCH_scale.json sizes {sizes:?} != expected {SIZES:?}"));
    }
    for row in &report.rows {
        if row.max_cache_bytes != row.nodes * BUDGET_PER_NODE {
            fail(&format!("{} nodes: budget does not match nodes x {BUDGET_PER_NODE}", row.nodes));
        }
        if !(row.nodes_per_sec.is_finite() && row.nodes_per_sec > 0.0) {
            fail(&format!("{} nodes: non-positive throughput", row.nodes));
        }
        if row.peak_rss_bytes > row.implied_budget_bytes {
            fail(&format!("{} nodes: peak RSS exceeds the implied budget", row.nodes));
        }
        if row.cache_mode == "materialized" {
            fail(&format!(
                "{} nodes: cache landed on the trivial rung — budget too generous",
                row.nodes
            ));
        }
    }
    for pair in report.rows.windows(2) {
        if pair[1].peak_rss_bytes <= pair[0].peak_rss_bytes {
            fail("BENCH_scale.json peak RSS is not monotone in graph size");
        }
    }
    if !report.bit_identical
        || report
            .bit_check
            .streaming_hashes
            .iter()
            .any(|h| *h != report.bit_check.materialized_hash)
    {
        fail("BENCH_scale.json does not record streaming/materialized bit-identity");
    }
    println!(
        "smoke: BENCH_scale.json valid ({} sizes up to {} nodes, peak {:.0} MiB)",
        report.rows.len(),
        report.rows.last().unwrap().nodes,
        report.rows.last().unwrap().peak_rss_bytes as f64 / (1 << 20) as f64
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_scale --smoke: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let nodes: usize = args[i + 1].parse().expect("--child <nodes>");
        let streaming = args.iter().position(|a| a == "--streaming").map(|j| args[j + 1] == "1");
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .map(|j| args[j + 1].parse().expect("--threads <n>"))
            .unwrap_or(1);
        run_child(nodes, streaming.unwrap_or(true), threads);
    } else if args.iter().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}
