//! Fig. 4a–c: sensitivity analyses.
//!
//! - `--which context-length` (Fig. 4a): AUC and NMI on WebKB for context
//!   length c ∈ {3, 5, 7, 9, 11}, CoANE without attribute preservation (as
//!   in the paper's setup).
//! - `--which num-walks` (Fig. 4b): link-prediction AUC vs number of sampled
//!   walk sequences r ∈ {1..5}, CoANE vs node2vec on WebKB.
//! - `--which dimension` (Fig. 4c): train and test AUC vs embedding
//!   dimension d' ∈ {16, 32, 64, 128, 192, 256}.
//! - `--which all` (default): run all three.
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig4_sensitivity -- \
//!     [--which all] [--scale 1.0] [--epochs 8] [--seed 42]
//! ```

use coane_baselines::{skipgram::SkipGramConfig, Embedder, Node2Vec};
use coane_bench::table::Table;
use coane_bench::Args;
use coane_core::{Ablation, Coane, CoaneConfig};
use coane_datasets::Preset;
use coane_eval::{link_prediction_auc, nmi_clustering};
use coane_graph::{AttributedGraph, EdgeSplit, SplitConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Ctx {
    graph: AttributedGraph,
    split: EdgeSplit,
    epochs: usize,
    seed: u64,
}

fn make_ctx(preset: Preset, scale: f64, epochs: usize, seed: u64) -> Ctx {
    let (graph, _) = preset.generate_scaled(scale, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4A);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    Ctx { graph, split, epochs, seed }
}

fn auc_of(ctx: &Ctx, emb: &coane_nn::Matrix, test: bool) -> f64 {
    let (pos, neg) = if test {
        (&ctx.split.test_pos, &ctx.split.test_neg)
    } else {
        (&ctx.split.train_pos, &ctx.split.train_neg)
    };
    link_prediction_auc(
        emb.as_slice(),
        emb.cols(),
        &ctx.split.train_pos,
        &ctx.split.train_neg,
        pos,
        neg,
    )
}

fn context_length(ctx: &Ctx) {
    println!("--- Fig. 4a: context length (WebKB, CoANE w/o attribute preservation) ---");
    let mut table = Table::new(&["c", "AUC", "NMI"]);
    for c in [3usize, 5, 7, 9, 11] {
        let cfg = CoaneConfig {
            context_size: c,
            epochs: ctx.epochs,
            seed: ctx.seed,
            ablation: Ablation::wap(),
            ..Default::default()
        };
        let emb = Coane::new(cfg.clone()).fit(&ctx.split.train_graph);
        let auc = auc_of(ctx, &emb, true);
        let emb_full = Coane::new(cfg).fit(&ctx.graph);
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed ^ c as u64);
        let nmi = nmi_clustering(
            emb_full.as_slice(),
            emb_full.cols(),
            ctx.graph.labels().unwrap(),
            &mut rng,
        );
        table.row(vec![c.to_string(), format!("{auc:.3}"), format!("{nmi:.3}")]);
    }
    table.print();
    println!("(paper: both curves stay flat — c = 3 already suffices)\n");
}

fn num_walks(ctx: &Ctx) {
    println!("--- Fig. 4b: number of sampled walk sequences (WebKB, AUC) ---");
    let mut table = Table::new(&["r", "CoANE", "node2vec"]);
    for r in 1usize..=5 {
        let coane = Coane::new(CoaneConfig {
            walks_per_node: r,
            epochs: ctx.epochs,
            seed: ctx.seed,
            ..Default::default()
        })
        .fit(&ctx.split.train_graph);
        let n2v = Node2Vec {
            config: SkipGramConfig {
                dim: 128,
                walks_per_node: r,
                seed: ctx.seed,
                ..Default::default()
            },
            p: 1.0,
            q: 1.0,
        }
        .embed(&ctx.split.train_graph);
        table.row(vec![
            r.to_string(),
            format!("{:.3}", auc_of(ctx, &coane, true)),
            format!("{:.3}", auc_of(ctx, &n2v, true)),
        ]);
    }
    table.print();
    println!("(paper: CoANE is stable from r = 1; node2vec needs r ≥ 2)\n");
}

fn dimension(ctx: &Ctx) {
    println!("--- Fig. 4c: embedding dimension (train/test AUC) ---");
    let mut table = Table::new(&["d'", "train AUC", "test AUC"]);
    for d in [16usize, 32, 64, 128, 192, 256] {
        let emb = Coane::new(CoaneConfig {
            embed_dim: d,
            epochs: ctx.epochs,
            seed: ctx.seed,
            ..Default::default()
        })
        .fit(&ctx.split.train_graph);
        table.row(vec![
            d.to_string(),
            format!("{:.3}", auc_of(ctx, &emb, false)),
            format!("{:.3}", auc_of(ctx, &emb, true)),
        ]);
    }
    table.print();
    println!("(paper: performance rises then plateaus above d' ≈ 150)\n");
}

fn main() {
    let args = Args::parse();
    let which = args.get("which").unwrap_or("all").to_string();
    let ctx = make_ctx(
        Preset::WebKbCornell,
        args.get_or("scale", 1.0),
        args.get_or("epochs", 8),
        args.get_or("seed", 42),
    );
    println!("== Fig. 4 sensitivity (WebKB-Cornell replica, {} nodes) ==\n", ctx.graph.num_nodes());
    match which.as_str() {
        "context-length" => context_length(&ctx),
        "num-walks" => num_walks(&ctx),
        "dimension" => dimension(&ctx),
        "all" => {
            context_length(&ctx);
            num_walks(&ctx);
            dimension(&ctx);
        }
        other => panic!("unknown --which {other}"),
    }
}
