//! Fig. 6a/6c/6d: component analysis of CoANE on the Cora replica.
//!
//! - `--which layer` (Fig. 6a dashed lines): convolution vs fully-connected
//!   feature-extraction layer, train/test AUC.
//! - `--which objective` (Fig. 6c): the eight objective cases — WP, SG, WN,
//!   NS, SGNS, WF, WAP, and full CoANE.
//! - `--which gamma` (Fig. 6d): attribute-preservation controller sweep
//!   log γ ∈ {1..7} (the harness sweeps the same ratio range relative to its
//!   default γ).
//! - `--which all` (default): everything.
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig6_ablation -- \
//!     [--which all] [--scale 0.15] [--epochs 8] [--seed 42]
//! ```

use coane_bench::table::Table;
use coane_bench::Args;
use coane_core::{Ablation, Coane, CoaneConfig, EncoderKind};
use coane_datasets::Preset;
use coane_eval::link_prediction_auc;
use coane_graph::{AttributedGraph, EdgeSplit, SplitConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Ctx {
    split: EdgeSplit,
    epochs: usize,
    seed: u64,
}

fn aucs(ctx: &Ctx, cfg: CoaneConfig) -> (f64, f64) {
    let emb = Coane::new(cfg).fit(&ctx.split.train_graph);
    let run = |pos: &[(u32, u32)], neg: &[(u32, u32)]| {
        link_prediction_auc(
            emb.as_slice(),
            emb.cols(),
            &ctx.split.train_pos,
            &ctx.split.train_neg,
            pos,
            neg,
        )
    };
    (run(&ctx.split.train_pos, &ctx.split.train_neg), run(&ctx.split.test_pos, &ctx.split.test_neg))
}

fn layer(ctx: &Ctx) {
    println!("--- Fig. 6a: convolution vs fully-connected layer ---");
    let mut table = Table::new(&["encoder", "train AUC", "test AUC"]);
    for (label, kind) in [
        ("convolution (CoANE)", EncoderKind::Convolution),
        ("fully connected", EncoderKind::FullyConnected),
    ] {
        let (train, test) = aucs(
            ctx,
            CoaneConfig { encoder: kind, epochs: ctx.epochs, seed: ctx.seed, ..Default::default() },
        );
        table.row(vec![label.into(), format!("{train:.3}"), format!("{test:.3}")]);
    }
    table.print();
    println!("(paper: the convolutional layer converges faster and higher)\n");
}

fn objective(ctx: &Ctx) {
    println!("--- Fig. 6c: objective ablations ---");
    let cases: [(&str, Ablation); 8] = [
        ("WP  (no positive likelihood)", Ablation::wp()),
        ("SG  (skip-gram positive)", Ablation::sg()),
        ("WN  (no negative sampling)", Ablation::wn()),
        ("NS  (uniform negatives)", Ablation::ns()),
        ("SGNS (SG + NS)", Ablation::sgns()),
        ("WF  (no attributes)", Ablation::wf()),
        ("WAP (no attr. preservation)", Ablation::wap()),
        ("CoANE (complete)", Ablation::full()),
    ];
    let mut table = Table::new(&["case", "train AUC", "test AUC"]);
    for (label, ablation) in cases {
        let (train, test) = aucs(
            ctx,
            CoaneConfig { ablation, epochs: ctx.epochs, seed: ctx.seed, ..Default::default() },
        );
        table.row(vec![label.into(), format!("{train:.3}"), format!("{test:.3}")]);
    }
    table.print();
    println!("(paper: every removal hurts; WF hurts most, SGNS stays closest)\n");
}

fn gamma(ctx: &Ctx) {
    println!("--- Fig. 6d: attribute-preservation controller γ ---");
    let mut table = Table::new(&["log10 relative γ", "γ", "test AUC"]);
    // The paper sweeps log γ ∈ {1..7} around its MSE-sum convention; our MSE
    // is averaged (DESIGN.md §2.3), so sweep the same 6-decade ratio span
    // around the default.
    let base = CoaneConfig::default().gamma as f64 / 1e3;
    for exp in 1..=7 {
        let g = (base * 10f64.powi(exp)) as f32;
        let (_, test) = aucs(
            ctx,
            CoaneConfig { gamma: g, epochs: ctx.epochs, seed: ctx.seed, ..Default::default() },
        );
        table.row(vec![exp.to_string(), format!("{g:.0e}"), format!("{test:.3}")]);
    }
    table.print();
    println!("(paper: rises then falls — moderate γ best, huge γ drowns structure)\n");
}

fn main() {
    let args = Args::parse();
    let which = args.get("which").unwrap_or("all").to_string();
    let (graph, _): (AttributedGraph, _) =
        Preset::Cora.generate_scaled(args.get_or("scale", 0.15), args.get_or("seed", 42));
    let mut rng = ChaCha8Rng::seed_from_u64(args.get_or("seed", 42u64) ^ 0x6C);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let ctx = Ctx { split, epochs: args.get_or("epochs", 8), seed: args.get_or("seed", 42) };
    println!("== Fig. 6 ablations (Cora replica, {} nodes) ==\n", graph.num_nodes());
    match which.as_str() {
        "layer" => layer(&ctx),
        "objective" => objective(&ctx),
        "gamma" => gamma(&ctx),
        "all" => {
            layer(&ctx);
            objective(&ctx);
            gamma(&ctx);
        }
        other => panic!("unknown --which {other}"),
    }
}
