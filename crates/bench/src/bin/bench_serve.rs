//! Serving-path benchmark: HNSW vs brute-force kNN throughput/latency on a
//! deterministic synthetic store, plus end-to-end HTTP round-trips over
//! loopback through the full server stack (parse → engine → HNSW →
//! serialize).
//!
//! The store is seeded random data — no training run — so the bench
//! isolates the serving layer and reproduces exactly on any machine.
//! Quality is reported as recall@k of the HNSW answers against the exact
//! scorer path, and the recall is also *gated* here (≥ 0.95 full, ≥ 0.90
//! smoke) so a quietly-degraded index fails the bench rather than shipping
//! fast wrong answers.
//!
//! ## Concurrency sweep
//!
//! The `concurrency` section measures what cross-request micro-batching
//! buys: N keep-alive clients hammer exact `/knn` concurrently, the server
//! coalesces their queries into pre-transposed matmul passes, and
//! throughput is compared against `baseline_qps` — the same exact route on
//! the same store driven one request per connection (the pre-keep-alive,
//! pre-coalescing serve path). The sweep runs on its own larger store
//! (`SWEEP_NODES`): batching amortizes the kernel's streaming pass over the
//! store, so the effect is measured where the kernel — not per-request HTTP
//! overhead — dominates, which is exactly the regime where a second of
//! serving capacity matters. Queries target store ids, keeping request
//! parsing identical and trivial on both sides. `batched_speedup` (best
//! sweep point over baseline) is gated ≥ 2.0 in full mode, and the
//! committed numbers are re-validated by `--smoke`. Both sides run the
//! exact scorer path, so the comparison holds recall constant at 1.0.
//!
//! ## Precision sweep
//!
//! The `precisions` section quantifies the quantized serving path on a
//! dedicated 100k-node store: for each payload precision (f32, f16, int8)
//! it builds the HNSW index over the quantized scores and measures engine
//! throughput on the graph path and the fused brute-force path, recall@k
//! of the reranked answers against the exact-f32 ground truth, and the
//! bytes each precision's scan actually touches. int8's brute-force
//! throughput over f32 is gated ≥ 1.3× (the scan is bandwidth-bound, so
//! quartering the bytes must show up as throughput), and every precision's
//! recall is held to the same ≥ 0.95 floor as the f32 index — quantization
//! is not allowed to buy speed with quality. A closing micro-comparison
//! times the rerank stage's candidate scoring from the exact-f32 sidecar
//! vs dequantizing int8 codes on the fly, backing the sidecar design
//! choice recorded in DESIGN.md.
//!
//! Output discipline: progress goes to stderr; stdout carries exactly one
//! JSON document (the report in full mode, the validation verdict in
//! `--smoke` mode). The report is also written to `BENCH_serve.json` at the
//! repository root; `--smoke` validates the committed file against the
//! constants compiled in here, so CI fails if it goes stale.

use std::sync::Arc;
use std::time::Instant;

use coane_nn::{pool, qkernels, Scorer};
use coane_serve::{
    http_request, knn_exact, EmbeddingStore, EngineLimits, HnswConfig, HnswIndex, HttpClient,
    HttpServer, KnnParams, KnnTarget, Precision, QueryEngine, ServerConfig,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

const NODES: usize = 2000;
const DIM: usize = 64;
const K: usize = 10;
const QUERIES: usize = 256;
const HTTP_QUERIES: usize = 128;
const SEED: u64 = 42;
const RECALL_FLOOR: f64 = 0.95;
const SMOKE_RECALL_FLOOR: f64 = 0.90;
/// Store size for the concurrency sweep: large enough that the exact
/// kernel, not per-request HTTP overhead, dominates a query.
const SWEEP_NODES: usize = 20000;
/// Concurrent keep-alive client counts in the sweep.
const SWEEP_CONNECTIONS: &[usize] = &[1, 2, 4, 8];
/// Exact `/knn` requests per sweep point, split across the connections.
const SWEEP_REQUESTS: usize = 256;
/// One-shot exact requests timed for `baseline_qps`.
const BASELINE_REQUESTS: usize = 128;
/// Best coalesced throughput must beat the per-request baseline by this.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Store size for the per-precision sweep: large enough that the fused
/// quantized scan's bandwidth advantage — not fixed per-query overhead —
/// decides the throughput numbers.
const PRECISION_NODES: usize = 100_000;
/// Engine HNSW-path queries per precision point.
const PRECISION_HNSW_QUERIES: usize = 256;
/// Engine brute-force queries per precision point (each streams the whole
/// store, so fewer suffice).
const PRECISION_EXACT_QUERIES: usize = 64;
/// int8 brute-force throughput must beat f32 by this at `PRECISION_NODES`.
const INT8_SPEEDUP_FLOOR: f64 = 1.3;
/// Intrinsic dimensionality of the precision sweep's store (see
/// [`manifold_vectors`]).
const PRECISION_LATENT_DIM: usize = 8;
/// Search width for the precision sweep's indexes. Embedding-scale recall
/// needs a wider candidate list than the 2k-node default: at 100k rows an
/// `ef` of 64 visits too small a fraction of the graph to hold the 0.95
/// floor, quantized or not.
const PRECISION_EF_SEARCH: usize = 256;

#[derive(Serialize, Deserialize)]
struct PathStats {
    /// Queries per second over the whole batch.
    qps: f64,
    /// Median per-query latency, microseconds.
    p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    p99_us: f64,
}

/// One concurrency-sweep measurement: `connections` keep-alive clients
/// driving exact `/knn` against the coalescing server.
#[derive(Serialize, Deserialize)]
struct SweepPoint {
    connections: usize,
    /// Completed queries per second across all connections.
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Requests shed with 429 (zero at the bench's default queue_cap).
    shed: u64,
}

/// The micro-batching story: per-request baseline vs coalesced sweep, both
/// on the dedicated `sweep_nodes` store.
#[derive(Serialize, Deserialize)]
struct ConcurrencyReport {
    /// Store size the baseline and sweep ran against.
    sweep_nodes: usize,
    /// Exact `/knn`, one request per connection — the pre-keep-alive,
    /// pre-coalescing serve path.
    baseline_qps: f64,
    points: Vec<SweepPoint>,
    /// Best sweep qps over `baseline_qps`; gated ≥ 2.0.
    batched_speedup: f64,
}

/// One precision's serving measurements on the dedicated sweep store.
#[derive(Serialize, Deserialize)]
struct PrecisionPoint {
    /// `"f32"`, `"f16"` or `"int8"`.
    precision: String,
    /// HNSW build wall-clock over the quantized store, milliseconds.
    build_ms: f64,
    /// Engine kNN through the graph + exact-f32 rerank.
    hnsw_qps: f64,
    /// Engine brute-force kNN: the fused quantized scan + rerank.
    exact_qps: f64,
    /// Recall@k of the engine's (reranked) HNSW answers against the exact
    /// f32 ground truth.
    recall_at_k: f64,
    /// Bytes the scan path touches per full pass (codes + qparams; the
    /// rerank-only f32 sidecar is excluded).
    store_bytes: usize,
    /// On-disk size of the saved store (includes the sidecar).
    file_bytes: usize,
}

/// The quantization story: per-precision throughput/recall/footprint, the
/// int8-over-f32 brute-force speedup, and the sidecar-vs-dequant rerank
/// cost comparison backing the sidecar design choice.
#[derive(Serialize, Deserialize)]
struct PrecisionReport {
    /// Store size all precision points ran against.
    nodes: usize,
    hnsw_queries: usize,
    exact_queries: usize,
    /// Rerank candidate pool per query = `k · rerank_factor`.
    rerank_factor: usize,
    points: Vec<PrecisionPoint>,
    /// int8 `exact_qps` over f32 `exact_qps`; gated ≥ 1.3 in full mode.
    int8_speedup: f64,
    /// Microseconds to score one rerank candidate pool from the exact-f32
    /// sidecar (the shipped design) …
    rerank_sidecar_us: f64,
    /// … vs dequantizing the pool's int8 codes on the fly first. The
    /// sidecar is both faster *and* exact; dequant would only save the
    /// sidecar's resident memory at the cost of quantized-precision scores.
    rerank_dequant_us: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    nodes: usize,
    dim: usize,
    k: usize,
    queries: usize,
    http_queries: usize,
    seed: u64,
    scorer: String,
    /// HNSW build wall-clock, milliseconds.
    build_ms: f64,
    /// Fraction of exact top-k recovered by HNSW, averaged over queries.
    recall_at_k: f64,
    hnsw: PathStats,
    exact: PathStats,
    /// End-to-end HTTP round-trips (connect + parse + search + serialize).
    http: PathStats,
    /// Same route over one persistent keep-alive connection (no per-request
    /// TCP setup).
    http_keepalive: PathStats,
    concurrency: ConcurrencyReport,
    precisions: PrecisionReport,
}

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json")
}

/// Deterministic store: unit-scale uniform vectors from a seeded ChaCha8.
fn synthetic_store(nodes: usize, dim: usize, seed: u64) -> EmbeddingStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    let data: Vec<f32> = (0..nodes * dim).map(|_| uniform()).collect();
    EmbeddingStore::new(data, dim, None, "bench_serve synthetic").expect("valid synthetic store")
}

/// Deterministic query vectors, disjoint from the store's stream.
fn synthetic_queries(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5_e27e);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    (0..n).map(|_| (0..dim).map(|_| uniform()).collect()).collect()
}

fn uniform(rng: &mut ChaCha8Rng) -> f32 {
    ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
}

/// Low-intrinsic-dimension synthetic vectors for the precision sweep. A
/// cloud that is uniform in 64 ambient dimensions has near-degenerate
/// neighbor structure — every pair is almost equidistant — so no index
/// (and no recall gate) is meaningful on it at 100k rows. Trained
/// embedding tables are the opposite: they concentrate near a
/// low-dimensional manifold, where nearest neighbors are well separated
/// from the bulk. Rows here are an 8-d uniform latent pushed through a
/// fixed seeded 8→64 linear map; `proj_seed` fixes the map (store and
/// queries must share it), `sample_seed` the latents.
fn manifold_vectors(n: usize, dim: usize, proj_seed: u64, sample_seed: u64) -> Vec<f32> {
    let mut prng = ChaCha8Rng::seed_from_u64(proj_seed ^ 0xCE27);
    let scale = 1.0 / (PRECISION_LATENT_DIM as f32).sqrt();
    let proj: Vec<f32> =
        (0..PRECISION_LATENT_DIM * dim).map(|_| uniform(&mut prng) * scale).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(sample_seed);
    let mut out = Vec::with_capacity(n * dim);
    let mut z = [0.0f32; PRECISION_LATENT_DIM];
    for _ in 0..n {
        for zi in z.iter_mut() {
            *zi = uniform(&mut rng);
        }
        for j in 0..dim {
            let mut x = 0.0f32;
            for (i, &zi) in z.iter().enumerate() {
                x += zi * proj[i * dim + j];
            }
            out.push(x);
        }
    }
    out
}

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Times `f` once per query, returning batch stats.
fn time_queries<F: FnMut(usize)>(n: usize, mut f: F) -> PathStats {
    let mut lat_us: Vec<f64> = Vec::with_capacity(n);
    let started = Instant::now();
    for i in 0..n {
        let t = Instant::now();
        f(i);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = started.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    PathStats {
        qps: n as f64 / total,
        p50_us: percentile_us(&lat_us, 0.50),
        p99_us: percentile_us(&lat_us, 0.99),
    }
}

/// Mean fraction of the exact top-k present in the HNSW top-k.
fn recall(store: &EmbeddingStore, index: &HnswIndex, queries: &[Vec<f32>], k: usize) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let exact: Vec<u32> =
            knn_exact(store, q, k, index.scorer()).iter().map(|h| h.index).collect();
        let approx: Vec<u32> = index.knn(store, q, k).iter().map(|h| h.index).collect();
        let hit = exact.iter().filter(|i| approx.contains(i)).count();
        total += hit as f64 / k as f64;
    }
    total / queries.len() as f64
}

fn knn_body(query: &[f32], exact: bool) -> String {
    let vec_json: Vec<String> = query.iter().map(|x| format!("{x}")).collect();
    format!("{{\"vectors\":[[{}]],\"k\":{K},\"exact\":{exact}}}", vec_json.join(","))
}

/// Exact `/knn` targeting a store row by id — the sweep/baseline request
/// shape (identical, trivially-parsed bodies on both sides).
fn knn_id_body(id: u64) -> String {
    format!("{{\"ids\":[{id}],\"k\":{K},\"exact\":true}}")
}

/// Deterministic store ids, disjoint streams per seed.
fn synthetic_ids(n: usize, nodes: usize, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u64() % nodes as u64).collect()
}

/// One sweep point: `connections` threads, each with a persistent
/// [`HttpClient`], splitting `total` exact `/knn` requests between them.
fn sweep_point(addr: &str, connections: usize, total: usize, nodes: usize) -> SweepPoint {
    let per_conn = total.div_ceil(connections);
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let ids = synthetic_ids(per_conn, nodes, SEED ^ (0xB00 + c as u64));
                let mut client = HttpClient::new(addr);
                let mut lat_us = Vec::with_capacity(per_conn);
                let mut shed = 0u64;
                for &id in &ids {
                    let body = knn_id_body(id);
                    let t = Instant::now();
                    let (status, resp) =
                        client.request("POST", "/knn", &body).expect("sweep request");
                    match status {
                        200 => lat_us.push(t.elapsed().as_secs_f64() * 1e6),
                        429 => shed += 1,
                        other => panic!("sweep request failed with {other}: {resp}"),
                    }
                }
                (lat_us, shed)
            })
        })
        .collect();
    let mut lat_us = Vec::new();
    let mut shed = 0u64;
    for w in workers {
        let (lat, s) = w.join().expect("sweep worker");
        lat_us.extend(lat);
        shed += s;
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    SweepPoint {
        connections,
        qps: lat_us.len() as f64 / elapsed,
        p50_us: percentile_us(&lat_us, 0.50),
        p99_us: percentile_us(&lat_us, 0.99),
        shed,
    }
}

/// Per-precision sweep: for each payload precision, build the HNSW index
/// over the (re)quantized store, then measure engine throughput on both
/// the graph path and the fused brute-force path, and recall@k of the
/// reranked answers against the exact-f32 ground truth. Ends with the
/// sidecar-vs-dequant rerank micro-comparison (int8 candidate pools).
fn measure_precisions(nodes: usize, hnsw_queries: usize, exact_queries: usize) -> PrecisionReport {
    let scorer = Scorer::Cosine;
    let rerank_factor = EngineLimits::default().rerank_factor;
    eprintln!(
        "bench_serve: precision sweep store ({nodes} x {DIM}, {PRECISION_LATENT_DIM}-d latent)"
    );
    let sweep_data = manifold_vectors(nodes, DIM, SEED, SEED ^ 0x9C0);
    let f32_store = EmbeddingStore::new(sweep_data.clone(), DIM, None, "bench_serve precision")
        .expect("valid sweep store");
    let qs: Vec<Vec<f32>> =
        manifold_vectors(hnsw_queries.max(exact_queries), DIM, SEED, SEED ^ 0x9C1)
            .chunks_exact(DIM)
            .map(<[f32]>::to_vec)
            .collect();
    let truth: Vec<Vec<u64>> = qs
        .iter()
        .map(|q| knn_exact(&f32_store, q, K, scorer).iter().map(|h| h.index as u64).collect())
        .collect();

    let mut points = Vec::with_capacity(Precision::ALL.len());
    for precision in Precision::ALL {
        let store = EmbeddingStore::new(sweep_data.clone(), DIM, None, "bench_serve precision")
            .expect("valid sweep store")
            .with_precision(precision)
            .expect("quantize sweep store");
        let store_bytes = store.store_bytes();
        let file = std::env::temp_dir().join(format!(
            "coane-bench-precision-{}-{}",
            precision.name(),
            std::process::id()
        ));
        store.save(&file).expect("save sweep store");
        let file_bytes = std::fs::metadata(&file).expect("stat sweep store").len() as usize;
        let _ = std::fs::remove_file(&file);

        let build_started = Instant::now();
        let config = HnswConfig { ef_search: PRECISION_EF_SEARCH, ..HnswConfig::default() };
        let index = HnswIndex::build(&store, scorer, config);
        let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
        let engine = QueryEngine::new(
            store,
            index,
            None,
            EngineLimits::default(),
            coane_obs::Obs::enabled(),
        )
        .expect("sweep engine");

        let mut recall_total = 0.0;
        let hnsw_stats = time_queries(hnsw_queries, |i| {
            let params = KnnParams { k: K, scorer, exact: false };
            let answers =
                engine.knn(&[KnnTarget::Vector(qs[i].clone())], params).expect("hnsw query");
            let hit = truth[i]
                .iter()
                .filter(|id| answers[0].neighbors.iter().any(|(g, _)| g == *id))
                .count();
            recall_total += hit as f64 / K as f64;
        });
        let recall_at_k = recall_total / hnsw_queries as f64;
        let exact_stats = time_queries(exact_queries, |i| {
            let params = KnnParams { k: K, scorer, exact: true };
            let _ = engine.knn(&[KnnTarget::Vector(qs[i].clone())], params).expect("exact query");
        });
        eprintln!(
            "bench_serve: {:>4}: build {build_ms:.0} ms | hnsw {:.0} qps | exact {:.0} qps | \
             recall@{K} {recall_at_k:.4} | {store_bytes} scan bytes",
            precision.name(),
            hnsw_stats.qps,
            exact_stats.qps,
        );
        points.push(PrecisionPoint {
            precision: precision.name().to_string(),
            build_ms,
            hnsw_qps: hnsw_stats.qps,
            exact_qps: exact_stats.qps,
            recall_at_k,
            store_bytes,
            file_bytes,
        });
    }
    let exact_qps_of = |name: &str| {
        points.iter().find(|p| p.precision == name).map(|p| p.exact_qps).unwrap_or(f64::NAN)
    };
    let int8_speedup = exact_qps_of("int8") / exact_qps_of("f32");

    // Sidecar vs dequant-on-the-fly rerank cost: score one candidate pool
    // (`k · rerank_factor` rows) per iteration, either straight from the
    // f32 sidecar rows or by reconstructing each row from its int8 codes
    // first. Exactness already decides the design (sidecar scores are the
    // true f32 scores; dequantized ones are not) — this records that the
    // sidecar is not even paying a speed penalty for it.
    let pool_size = K * rerank_factor;
    let cand_rows: Vec<usize> = (0..pool_size).map(|i| (i * 977) % nodes).collect();
    let codes: Vec<(Vec<i8>, f32)> =
        cand_rows.iter().map(|&r| qkernels::quantize_i8_row(f32_store.row(r))).collect();
    let q = &qs[0];
    let iters = 2000usize;
    let mut acc = 0.0f32;
    let t = Instant::now();
    for _ in 0..iters {
        for &r in &cand_rows {
            acc += scorer.score(q, f32_store.row(r));
        }
    }
    let rerank_sidecar_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let mut buf = vec![0.0f32; DIM];
    let t = Instant::now();
    for _ in 0..iters {
        for (row_codes, scale) in &codes {
            for (b, &c) in buf.iter_mut().zip(row_codes) {
                *b = c as f32 * *scale;
            }
            acc += scorer.score(q, &buf);
        }
    }
    let rerank_dequant_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    std::hint::black_box(acc);
    eprintln!(
        "bench_serve: int8 exact speedup {int8_speedup:.2}x over f32 | rerank pool \
         {rerank_sidecar_us:.1} us sidecar vs {rerank_dequant_us:.1} us dequant"
    );

    PrecisionReport {
        nodes,
        hnsw_queries,
        exact_queries,
        rerank_factor,
        points,
        int8_speedup,
        rerank_sidecar_us,
        rerank_dequant_us,
    }
}

/// Scale knobs for one [`measure`] run: the full bench and the CI smoke
/// run the same code at different sizes.
struct MeasurePlan {
    nodes: usize,
    queries: usize,
    http_queries: usize,
    sweep_nodes: usize,
    sweep_connections: &'static [usize],
    sweep_total: usize,
    baseline_requests: usize,
    precision_nodes: usize,
    precision_hnsw_queries: usize,
    precision_exact_queries: usize,
}

/// Runs the engine + HTTP measurements for one store size. Returns the
/// report (without writing anything).
fn measure(plan: &MeasurePlan) -> Report {
    let &MeasurePlan {
        nodes,
        queries,
        http_queries,
        sweep_nodes,
        sweep_connections,
        sweep_total,
        baseline_requests,
        precision_nodes,
        precision_hnsw_queries,
        precision_exact_queries,
    } = plan;
    let scorer = Scorer::Cosine;
    eprintln!("bench_serve: building store ({nodes} x {DIM}) and HNSW index");
    let store = synthetic_store(nodes, DIM, SEED);
    let build_started = Instant::now();
    let index = HnswIndex::build(&store, scorer, HnswConfig::default());
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    eprintln!("bench_serve: built in {build_ms:.1} ms ({} edges)", index.num_edges());

    let qs = synthetic_queries(queries, DIM, SEED);
    let recall_at_k = recall(&store, &index, &qs, K);
    eprintln!("bench_serve: recall@{K} = {recall_at_k:.4}");

    let hnsw_stats = time_queries(qs.len(), |i| {
        let _ = index.knn(&store, &qs[i], K);
    });
    let exact_stats = time_queries(qs.len(), |i| {
        let _ = knn_exact(&store, &qs[i], K, scorer);
    });
    eprintln!(
        "bench_serve: hnsw {:.0} qps (p50 {:.0} us) | exact {:.0} qps (p50 {:.0} us)",
        hnsw_stats.qps, hnsw_stats.p50_us, exact_stats.qps, exact_stats.p50_us
    );

    // End-to-end HTTP on the main store: one-shot round-trips (`http`,
    // connect + parse + search + serialize per request) and the same route
    // over a single persistent connection (`http_keepalive`). The default
    // config has a zero batch window, so serial traffic never lingers.
    let engine = Arc::new(
        QueryEngine::new(store, index, None, EngineLimits::default(), coane_obs::Obs::enabled())
            .expect("engine"),
    );
    let server = HttpServer::bind(
        Arc::clone(&engine),
        ServerConfig { addr: "127.0.0.1:0".into(), threads: 2, ..Default::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let http_qs = synthetic_queries(http_queries, DIM, SEED ^ 0x177);
    let http_stats = time_queries(http_qs.len(), |i| {
        let body = knn_body(&http_qs[i], false);
        let (status, _) = http_request(&addr, "POST", "/knn", &body).expect("http knn");
        assert_eq!(status, 200, "http knn returned {status}");
    });
    let mut keepalive_client = HttpClient::new(addr.clone());
    let http_keepalive = time_queries(http_qs.len(), |i| {
        let body = knn_body(&http_qs[i], false);
        let (status, _) = keepalive_client.request("POST", "/knn", &body).expect("keepalive knn");
        assert_eq!(status, 200, "keepalive knn returned {status}");
    });
    drop(keepalive_client);
    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("http shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("server run");
    eprintln!(
        "bench_serve: http {:.0} qps (p50 {:.0} us) | keep-alive {:.0} qps (p50 {:.0} us)",
        http_stats.qps, http_stats.p50_us, http_keepalive.qps, http_keepalive.p50_us
    );

    // Concurrency sweep on its own larger store, where the exact kernel
    // dominates per-request overhead (see module docs). Baseline first —
    // one request per connection, the pre-keep-alive serve path — then N
    // persistent clients whose concurrent queries coalesce into shared
    // matmul passes.
    eprintln!("bench_serve: building sweep store ({sweep_nodes} x {DIM}) and index");
    let sweep_store = synthetic_store(sweep_nodes, DIM, SEED ^ 0x51EE);
    let sweep_index = HnswIndex::build(&sweep_store, scorer, HnswConfig::default());
    let sweep_engine = Arc::new(
        QueryEngine::new(
            sweep_store,
            sweep_index,
            None,
            EngineLimits::default(),
            coane_obs::Obs::enabled(),
        )
        .expect("sweep engine"),
    );
    let max_connections = sweep_connections.iter().copied().max().unwrap_or(1);
    let server = HttpServer::bind(
        Arc::clone(&sweep_engine),
        ServerConfig { addr: "127.0.0.1:0".into(), threads: max_connections, ..Default::default() },
    )
    .expect("bind sweep server");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let baseline_ids = synthetic_ids(baseline_requests, sweep_nodes, SEED ^ 0x2EE);
    let baseline_stats = time_queries(baseline_ids.len(), |i| {
        let body = knn_id_body(baseline_ids[i]);
        let (status, _) = http_request(&addr, "POST", "/knn", &body).expect("baseline knn");
        assert_eq!(status, 200, "baseline knn returned {status}");
    });
    eprintln!(
        "bench_serve: per-request exact baseline {:.0} qps (p50 {:.0} us)",
        baseline_stats.qps, baseline_stats.p50_us
    );
    let mut points = Vec::with_capacity(sweep_connections.len());
    for &connections in sweep_connections {
        let point = sweep_point(&addr, connections, sweep_total, sweep_nodes);
        eprintln!(
            "bench_serve: sweep {connections} conn: {:.0} qps (p50 {:.0} us, p99 {:.0} us, shed {})",
            point.qps, point.p50_us, point.p99_us, point.shed
        );
        points.push(point);
    }
    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("sweep shutdown");
    assert_eq!(status, 200);
    handle.join().expect("sweep server thread").expect("sweep server run");
    let best_qps = points.iter().map(|p| p.qps).fold(0.0, f64::max);
    let concurrency = ConcurrencyReport {
        sweep_nodes,
        baseline_qps: baseline_stats.qps,
        batched_speedup: best_qps / baseline_stats.qps,
        points,
    };
    eprintln!(
        "bench_serve: micro-batched speedup {:.2}x over per-request exact baseline",
        concurrency.batched_speedup
    );

    let precisions =
        measure_precisions(precision_nodes, precision_hnsw_queries, precision_exact_queries);

    Report {
        nodes,
        dim: DIM,
        k: K,
        queries,
        http_queries,
        seed: SEED,
        scorer: scorer.name().to_string(),
        build_ms,
        recall_at_k,
        hnsw: hnsw_stats,
        exact: exact_stats,
        http: http_stats,
        http_keepalive,
        concurrency,
        precisions,
    }
}

fn run_full() {
    pool::set_threads(4);
    let report = measure(&MeasurePlan {
        nodes: NODES,
        queries: QUERIES,
        http_queries: HTTP_QUERIES,
        sweep_nodes: SWEEP_NODES,
        sweep_connections: SWEEP_CONNECTIONS,
        sweep_total: SWEEP_REQUESTS,
        baseline_requests: BASELINE_REQUESTS,
        precision_nodes: PRECISION_NODES,
        precision_hnsw_queries: PRECISION_HNSW_QUERIES,
        precision_exact_queries: PRECISION_EXACT_QUERIES,
    });
    assert!(
        report.recall_at_k >= RECALL_FLOOR,
        "recall@{K} = {:.4} below the {RECALL_FLOOR} floor",
        report.recall_at_k
    );
    assert!(
        report.concurrency.batched_speedup >= SPEEDUP_FLOOR,
        "micro-batched throughput is only {:.2}x the per-request baseline (need {SPEEDUP_FLOOR}x)",
        report.concurrency.batched_speedup
    );
    for p in &report.precisions.points {
        assert!(
            p.recall_at_k >= RECALL_FLOOR,
            "{} recall@{K} = {:.4} below the {RECALL_FLOOR} floor at {PRECISION_NODES} nodes",
            p.precision,
            p.recall_at_k
        );
    }
    assert!(
        report.precisions.int8_speedup >= INT8_SPEEDUP_FLOOR,
        "int8 brute-force is only {:.2}x f32 (need {INT8_SPEEDUP_FLOOR}x)",
        report.precisions.int8_speedup
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(json_path(), format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!("bench_serve: wrote {}", json_path());
    println!("{json}");
}

/// Smoke mode for CI: a small live run (store + index + recall + one HTTP
/// round-trip) plus validation of the committed `BENCH_serve.json` against
/// this binary's constants.
fn run_smoke() {
    pool::set_threads(2);
    // The precision sweep reuses the same tiny store size — a live spin of
    // all three precisions through build/query/rerank without the 100k
    // stores, keeping smoke well under the CI timeout; the full-size
    // numbers are validated from the committed report below.
    let report = measure(&MeasurePlan {
        nodes: 300,
        queries: 32,
        http_queries: 8,
        sweep_nodes: 300,
        sweep_connections: &[1, 2],
        sweep_total: 16,
        baseline_requests: 8,
        precision_nodes: 300,
        precision_hnsw_queries: 16,
        precision_exact_queries: 8,
    });
    if report.recall_at_k < SMOKE_RECALL_FLOOR {
        fail(&format!(
            "smoke recall@{K} = {:.4} below the {SMOKE_RECALL_FLOOR} floor",
            report.recall_at_k
        ));
    }
    // The tiny smoke sweep exercises the coalescing path; it is far too
    // small to gate a speedup, but every request must complete.
    for p in &report.concurrency.points {
        if p.shed > 0 {
            fail(&format!("smoke sweep shed {} requests at default queue_cap", p.shed));
        }
    }
    // Quantized recall on the tiny store (brute-force fetch + rerank covers
    // a large fraction of 300 rows, so only gross breakage can fail this).
    for p in &report.precisions.points {
        if p.recall_at_k < SMOKE_RECALL_FLOOR {
            fail(&format!(
                "smoke {} recall@{K} = {:.4} below the {SMOKE_RECALL_FLOOR} floor",
                p.precision, p.recall_at_k
            ));
        }
    }
    eprintln!("smoke: live serving path ok (recall@{K} {:.4})", report.recall_at_k);

    let text = match std::fs::read_to_string(json_path()) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", json_path())),
    };
    let committed: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("malformed BENCH_serve.json: {e}")),
    };
    if committed.nodes != NODES
        || committed.dim != DIM
        || committed.k != K
        || committed.queries != QUERIES
        || committed.http_queries != HTTP_QUERIES
        || committed.seed != SEED
    {
        fail("BENCH_serve.json header does not match the bench constants (stale file?)");
    }
    if committed.recall_at_k < RECALL_FLOOR {
        fail(&format!(
            "BENCH_serve.json recall@{K} = {:.4} below the {RECALL_FLOOR} floor",
            committed.recall_at_k
        ));
    }
    for (name, s) in [
        ("hnsw", &committed.hnsw),
        ("exact", &committed.exact),
        ("http", &committed.http),
        ("http_keepalive", &committed.http_keepalive),
    ] {
        let finite = [s.qps, s.p50_us, s.p99_us].iter().all(|x| x.is_finite() && *x > 0.0);
        if !finite {
            fail(&format!("BENCH_serve.json {name} stats are non-positive"));
        }
        if s.p50_us > s.p99_us {
            fail(&format!("BENCH_serve.json {name} p50 exceeds p99"));
        }
    }
    if !(committed.build_ms.is_finite() && committed.build_ms > 0.0) {
        fail("BENCH_serve.json build_ms is non-positive");
    }
    let conc = &committed.concurrency;
    if conc.sweep_nodes != SWEEP_NODES {
        fail("BENCH_serve.json concurrency.sweep_nodes does not match the bench constants");
    }
    if !(conc.baseline_qps.is_finite() && conc.baseline_qps > 0.0) {
        fail("BENCH_serve.json concurrency.baseline_qps is non-positive");
    }
    if conc.points.is_empty() {
        fail("BENCH_serve.json concurrency sweep has no points");
    }
    let mut best_qps: f64 = 0.0;
    for (i, p) in conc.points.iter().enumerate() {
        if !([p.qps, p.p50_us, p.p99_us].iter().all(|x| x.is_finite() && *x > 0.0)) {
            fail(&format!("BENCH_serve.json sweep point {i} has non-positive stats"));
        }
        if p.p50_us > p.p99_us {
            fail(&format!("BENCH_serve.json sweep point {i} p50 exceeds p99"));
        }
        if i > 0 && p.connections <= conc.points[i - 1].connections {
            fail("BENCH_serve.json sweep connections are not strictly increasing");
        }
        best_qps = best_qps.max(p.qps);
    }
    if conc.batched_speedup < SPEEDUP_FLOOR {
        fail(&format!(
            "BENCH_serve.json batched_speedup {:.2} below the {SPEEDUP_FLOOR} floor",
            conc.batched_speedup
        ));
    }
    // The recorded speedup must actually follow from the recorded points.
    let recomputed = best_qps / conc.baseline_qps;
    if (recomputed - conc.batched_speedup).abs() > 0.1 * conc.batched_speedup {
        fail(&format!(
            "BENCH_serve.json batched_speedup {:.2} inconsistent with points ({recomputed:.2})",
            conc.batched_speedup
        ));
    }

    // Per-precision section: all three precisions at the full sweep size,
    // every recall at the full floor, shrinking scan footprints, and an
    // int8 speedup that clears the floor *and* follows from its points.
    let prec = &committed.precisions;
    if prec.nodes != PRECISION_NODES {
        fail("BENCH_serve.json precisions.nodes does not match the bench constants");
    }
    let names: Vec<&str> = prec.points.iter().map(|p| p.precision.as_str()).collect();
    if names != ["f32", "f16", "int8"] {
        fail(&format!("BENCH_serve.json precisions are {names:?}, want [f32, f16, int8]"));
    }
    for p in &prec.points {
        let finite =
            [p.hnsw_qps, p.exact_qps, p.build_ms].iter().all(|x| x.is_finite() && *x > 0.0);
        if !finite {
            fail(&format!("BENCH_serve.json {} precision stats are non-positive", p.precision));
        }
        if p.recall_at_k < RECALL_FLOOR {
            fail(&format!(
                "BENCH_serve.json {} recall@{K} = {:.4} below the {RECALL_FLOOR} floor",
                p.precision, p.recall_at_k
            ));
        }
        if p.store_bytes == 0 || p.file_bytes == 0 {
            fail(&format!("BENCH_serve.json {} byte counts are zero", p.precision));
        }
    }
    if !(prec.points[0].store_bytes > prec.points[1].store_bytes
        && prec.points[1].store_bytes > prec.points[2].store_bytes)
    {
        fail("BENCH_serve.json precision scan footprints must shrink f32 > f16 > int8");
    }
    if prec.int8_speedup < INT8_SPEEDUP_FLOOR {
        fail(&format!(
            "BENCH_serve.json int8_speedup {:.2} below the {INT8_SPEEDUP_FLOOR} floor",
            prec.int8_speedup
        ));
    }
    let recomputed = prec.points[2].exact_qps / prec.points[0].exact_qps;
    if (recomputed - prec.int8_speedup).abs() > 0.1 * prec.int8_speedup {
        fail(&format!(
            "BENCH_serve.json int8_speedup {:.2} inconsistent with points ({recomputed:.2})",
            prec.int8_speedup
        ));
    }
    if !(prec.rerank_sidecar_us > 0.0 && prec.rerank_dequant_us > 0.0) {
        fail("BENCH_serve.json rerank cost comparison is non-positive");
    }
    eprintln!("smoke: BENCH_serve.json valid (recall@{K} {:.4})", committed.recall_at_k);
    println!(
        "{{\"smoke\":\"ok\",\"recall_at_k\":{:.4},\"committed_recall_at_k\":{:.4}}}",
        report.recall_at_k, committed.recall_at_k
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_serve --smoke: {msg}");
    std::process::exit(1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        run_smoke();
    } else {
        run_full();
    }
}
