//! Serving-path benchmark: HNSW vs brute-force kNN throughput/latency on a
//! deterministic synthetic store, plus end-to-end HTTP round-trips over
//! loopback through the full server stack (parse → engine → HNSW →
//! serialize).
//!
//! The store is seeded random data — no training run — so the bench
//! isolates the serving layer and reproduces exactly on any machine.
//! Quality is reported as recall@k of the HNSW answers against the exact
//! scorer path, and the recall is also *gated* here (≥ 0.95 full, ≥ 0.90
//! smoke) so a quietly-degraded index fails the bench rather than shipping
//! fast wrong answers.
//!
//! Output discipline: progress goes to stderr; stdout carries exactly one
//! JSON document (the report in full mode, the validation verdict in
//! `--smoke` mode). The report is also written to `BENCH_serve.json` at the
//! repository root; `--smoke` validates the committed file against the
//! constants compiled in here, so CI fails if it goes stale.

use std::sync::Arc;
use std::time::Instant;

use coane_nn::{pool, Scorer};
use coane_serve::{
    http_request, knn_exact, EmbeddingStore, EngineLimits, HnswConfig, HnswIndex, HttpServer,
    QueryEngine, ServerConfig,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

const NODES: usize = 2000;
const DIM: usize = 64;
const K: usize = 10;
const QUERIES: usize = 256;
const HTTP_QUERIES: usize = 128;
const SEED: u64 = 42;
const RECALL_FLOOR: f64 = 0.95;
const SMOKE_RECALL_FLOOR: f64 = 0.90;

#[derive(Serialize, Deserialize)]
struct PathStats {
    /// Queries per second over the whole batch.
    qps: f64,
    /// Median per-query latency, microseconds.
    p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    p99_us: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    nodes: usize,
    dim: usize,
    k: usize,
    queries: usize,
    http_queries: usize,
    seed: u64,
    scorer: String,
    /// HNSW build wall-clock, milliseconds.
    build_ms: f64,
    /// Fraction of exact top-k recovered by HNSW, averaged over queries.
    recall_at_k: f64,
    hnsw: PathStats,
    exact: PathStats,
    /// End-to-end HTTP round-trips (connect + parse + search + serialize).
    http: PathStats,
}

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json")
}

/// Deterministic store: unit-scale uniform vectors from a seeded ChaCha8.
fn synthetic_store(nodes: usize, dim: usize, seed: u64) -> EmbeddingStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    let data: Vec<f32> = (0..nodes * dim).map(|_| uniform()).collect();
    EmbeddingStore::new(data, dim, None, "bench_serve synthetic").expect("valid synthetic store")
}

/// Deterministic query vectors, disjoint from the store's stream.
fn synthetic_queries(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5_e27e);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    (0..n).map(|_| (0..dim).map(|_| uniform()).collect()).collect()
}

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Times `f` once per query, returning batch stats.
fn time_queries<F: FnMut(usize)>(n: usize, mut f: F) -> PathStats {
    let mut lat_us: Vec<f64> = Vec::with_capacity(n);
    let started = Instant::now();
    for i in 0..n {
        let t = Instant::now();
        f(i);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = started.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    PathStats {
        qps: n as f64 / total,
        p50_us: percentile_us(&lat_us, 0.50),
        p99_us: percentile_us(&lat_us, 0.99),
    }
}

/// Mean fraction of the exact top-k present in the HNSW top-k.
fn recall(store: &EmbeddingStore, index: &HnswIndex, queries: &[Vec<f32>], k: usize) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let exact: Vec<u32> =
            knn_exact(store, q, k, index.scorer()).iter().map(|h| h.index).collect();
        let approx: Vec<u32> = index.knn(store, q, k).iter().map(|h| h.index).collect();
        let hit = exact.iter().filter(|i| approx.contains(i)).count();
        total += hit as f64 / k as f64;
    }
    total / queries.len() as f64
}

/// Runs the engine + HTTP measurements for one store size. Returns the
/// report (without writing anything).
fn measure(nodes: usize, queries: usize, http_queries: usize) -> Report {
    let scorer = Scorer::Cosine;
    eprintln!("bench_serve: building store ({nodes} x {DIM}) and HNSW index");
    let store = synthetic_store(nodes, DIM, SEED);
    let build_started = Instant::now();
    let index = HnswIndex::build(&store, scorer, HnswConfig::default());
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    eprintln!("bench_serve: built in {build_ms:.1} ms ({} edges)", index.num_edges());

    let qs = synthetic_queries(queries, DIM, SEED);
    let recall_at_k = recall(&store, &index, &qs, K);
    eprintln!("bench_serve: recall@{K} = {recall_at_k:.4}");

    let hnsw_stats = time_queries(qs.len(), |i| {
        let _ = index.knn(&store, &qs[i], K);
    });
    let exact_stats = time_queries(qs.len(), |i| {
        let _ = knn_exact(&store, &qs[i], K, scorer);
    });
    eprintln!(
        "bench_serve: hnsw {:.0} qps (p50 {:.0} us) | exact {:.0} qps (p50 {:.0} us)",
        hnsw_stats.qps, hnsw_stats.p50_us, exact_stats.qps, exact_stats.p50_us
    );

    // End-to-end HTTP: loopback server on an OS-assigned port, one
    // single-query POST /knn per round-trip.
    let engine =
        QueryEngine::new(store, index, None, EngineLimits::default(), coane_obs::Obs::enabled())
            .expect("engine");
    let server = HttpServer::bind(
        Arc::new(engine),
        ServerConfig { addr: "127.0.0.1:0".into(), threads: 2, addr_file: None },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let http_qs = synthetic_queries(http_queries, DIM, SEED ^ 0x177);
    let http_stats = time_queries(http_qs.len(), |i| {
        let vec_json: Vec<String> = http_qs[i].iter().map(|x| format!("{x}")).collect();
        let body = format!("{{\"vectors\":[[{}]],\"k\":{K}}}", vec_json.join(","));
        let (status, _) = http_request(&addr, "POST", "/knn", &body).expect("http knn");
        assert_eq!(status, 200, "http knn returned {status}");
    });
    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("http shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("server run");
    eprintln!("bench_serve: http {:.0} qps (p50 {:.0} us)", http_stats.qps, http_stats.p50_us);

    Report {
        nodes,
        dim: DIM,
        k: K,
        queries,
        http_queries,
        seed: SEED,
        scorer: scorer.name().to_string(),
        build_ms,
        recall_at_k,
        hnsw: hnsw_stats,
        exact: exact_stats,
        http: http_stats,
    }
}

fn run_full() {
    pool::set_threads(4);
    let report = measure(NODES, QUERIES, HTTP_QUERIES);
    assert!(
        report.recall_at_k >= RECALL_FLOOR,
        "recall@{K} = {:.4} below the {RECALL_FLOOR} floor",
        report.recall_at_k
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(json_path(), format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!("bench_serve: wrote {}", json_path());
    println!("{json}");
}

/// Smoke mode for CI: a small live run (store + index + recall + one HTTP
/// round-trip) plus validation of the committed `BENCH_serve.json` against
/// this binary's constants.
fn run_smoke() {
    pool::set_threads(2);
    let report = measure(300, 32, 8);
    if report.recall_at_k < SMOKE_RECALL_FLOOR {
        fail(&format!(
            "smoke recall@{K} = {:.4} below the {SMOKE_RECALL_FLOOR} floor",
            report.recall_at_k
        ));
    }
    eprintln!("smoke: live serving path ok (recall@{K} {:.4})", report.recall_at_k);

    let text = match std::fs::read_to_string(json_path()) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", json_path())),
    };
    let committed: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("malformed BENCH_serve.json: {e}")),
    };
    if committed.nodes != NODES
        || committed.dim != DIM
        || committed.k != K
        || committed.queries != QUERIES
        || committed.http_queries != HTTP_QUERIES
        || committed.seed != SEED
    {
        fail("BENCH_serve.json header does not match the bench constants (stale file?)");
    }
    if committed.recall_at_k < RECALL_FLOOR {
        fail(&format!(
            "BENCH_serve.json recall@{K} = {:.4} below the {RECALL_FLOOR} floor",
            committed.recall_at_k
        ));
    }
    for (name, s) in
        [("hnsw", &committed.hnsw), ("exact", &committed.exact), ("http", &committed.http)]
    {
        let finite = [s.qps, s.p50_us, s.p99_us].iter().all(|x| x.is_finite() && *x > 0.0);
        if !finite {
            fail(&format!("BENCH_serve.json {name} stats are non-positive"));
        }
        if s.p50_us > s.p99_us {
            fail(&format!("BENCH_serve.json {name} p50 exceeds p99"));
        }
    }
    if !(committed.build_ms.is_finite() && committed.build_ms > 0.0) {
        fail("BENCH_serve.json build_ms is non-positive");
    }
    eprintln!("smoke: BENCH_serve.json valid (recall@{K} {:.4})", committed.recall_at_k);
    println!(
        "{{\"smoke\":\"ok\",\"recall_at_k\":{:.4},\"committed_recall_at_k\":{:.4}}}",
        report.recall_at_k, committed.recall_at_k
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_serve --smoke: {msg}");
    std::process::exit(1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        run_smoke();
    } else {
        run_full();
    }
}
