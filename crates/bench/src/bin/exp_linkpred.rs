//! Table 4 (left): link-prediction AUC on the five dataset families
//! (70/10/20 edge split, Hadamard features + logistic regression).
//!
//! ```text
//! cargo run --release -p coane-bench --bin exp_linkpred -- \
//!     [--scale 0.2] [--epochs 8] [--dim 128] [--seed 42] \
//!     [--datasets ...] [--methods ...]
//! ```

use coane_bench::paper::linkpred_reference;
use coane_bench::runner::{linkpred_run, RunConfig};
use coane_bench::table::{with_reference, Table};
use coane_bench::{all_methods, Args, Method};
use coane_datasets::Preset;

fn main() {
    let args = Args::parse();
    let rc = RunConfig {
        scale: args.get_or("scale", 0.2),
        dim: args.get_or("dim", 128),
        epochs: args.get_or("epochs", 8),
        seed: args.get_or("seed", 42),
    };
    let methods = all_methods(args.get_list("methods"));
    let families = args.get_list("datasets").unwrap_or_else(|| {
        vec!["cora".into(), "citeseer".into(), "pubmed".into(), "webkb".into(), "flickr".into()]
    });

    println!("== Table 4 (left): link prediction AUC ==");
    println!("scale={} dim={} epochs={} seed={}\n", rc.scale, rc.dim, rc.epochs, rc.seed);

    let mut header = vec!["Method".to_string()];
    header.extend(families.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    // measure per family (averaging the WebKB subnetworks)
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for family in &families {
        let presets: Vec<Preset> = if family == "webkb" {
            Preset::WEBKB.to_vec()
        } else {
            vec![Preset::parse(family).unwrap_or_else(|| panic!("unknown dataset {family}"))]
        };
        let mut sums = vec![0.0f64; methods.len()];
        for &p in &presets {
            for (mi, (_, auc)) in linkpred_run(p, &methods, &rc).into_iter().enumerate() {
                sums[mi] += auc;
            }
        }
        for (mi, s) in sums.into_iter().enumerate() {
            results[mi].push(s / presets.len() as f64);
        }
    }
    for (mi, &method) in methods.iter().enumerate() {
        let mut cells = vec![method.name().to_string()];
        for (fi, family) in families.iter().enumerate() {
            cells.push(with_reference(results[mi][fi], linkpred_reference(family, method.name())));
        }
        table.row(cells);
    }
    table.print();

    if let Some(ci) = methods.iter().position(|&m| m == Method::Coane) {
        for (fi, family) in families.iter().enumerate() {
            let coane = results[ci][fi];
            let best = results.iter().map(|r| r[fi]).fold(f64::NEG_INFINITY, f64::max);
            let verdict = if coane >= best - 0.02 { "HOLDS" } else { "DEVIATES" };
            println!("[shape] {family}: CoANE AUC {coane:.3}, best {best:.3} → {verdict}");
        }
    }
    println!("(paper: CoANE best everywhere except Pubmed, where VGAE leads)");
}
