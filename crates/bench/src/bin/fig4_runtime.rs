//! Fig. 4d: runtime analysis — validation/test AUC (y) against cumulative
//! training time per epoch (x) for CoANE vs VGAE vs ARGA on the Pubmed
//! replica. The paper's claim is relative: CoANE converges in about one
//! epoch while the graph-autoencoder baselines need many more seconds to
//! reach their plateau.
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig4_runtime -- \
//!     [--scale 0.1] [--epochs 6] [--seed 42]
//! ```

use coane_baselines::{Arga, Embedder, Gae, GaeKind};
use coane_bench::table::Table;
use coane_bench::Args;
use coane_core::{Coane, CoaneConfig};
use coane_datasets::Preset;
use coane_eval::link_prediction_auc;
use coane_graph::{EdgeSplit, SplitConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.get_or("scale", 0.1);
    let epochs = args.get_or("epochs", 6usize);
    let seed = args.get_or("seed", 42u64);
    let (graph, _) = Preset::Pubmed.generate_scaled(scale, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4D);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    println!(
        "== Fig. 4d: AUC vs training time (Pubmed replica, {} nodes, {} edges) ==\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let auc = |emb: &coane_nn::Matrix, val: bool| -> f64 {
        let (pos, neg) =
            if val { (&split.val_pos, &split.val_neg) } else { (&split.test_pos, &split.test_neg) };
        link_prediction_auc(
            emb.as_slice(),
            emb.cols(),
            &split.train_pos,
            &split.train_neg,
            pos,
            neg,
        )
    };

    // CoANE: per-epoch trace through the trainer callback.
    let mut table = Table::new(&["method", "epoch", "cum. seconds", "val AUC", "test AUC"]);
    {
        let start = Instant::now();
        let mut trace: Vec<(usize, f64, coane_nn::Matrix)> = Vec::new();
        let cfg = CoaneConfig { epochs, seed, ..Default::default() };
        let _ = Coane::new(cfg).fit_detailed(&split.train_graph, |e, z| {
            trace.push((e, start.elapsed().as_secs_f64(), z.clone()));
        });
        for (e, secs, z) in &trace {
            table.row(vec![
                "CoANE".into(),
                (e + 1).to_string(),
                format!("{secs:.1}"),
                format!("{:.3}", auc(z, true)),
                format!("{:.3}", auc(z, false)),
            ]);
        }
    }

    // VGAE / ARGA (the paper's two strong competitors): retrain with
    // increasing epoch budgets — the encoders are full-batch, so each budget
    // is an independent run and cumulative time is measured per run.
    let unit = 40usize; // GCN epochs per CoANE-equivalent epoch
    for e in 1..=epochs {
        let start = Instant::now();
        let model =
            Gae { kind: GaeKind::Variational, epochs: e * unit, seed, ..Default::default() };
        let emb = model.embed(&split.train_graph);
        let secs = start.elapsed().as_secs_f64();
        table.row(vec![
            model.name().into(),
            e.to_string(),
            format!("{secs:.1}"),
            format!("{:.3}", auc(&emb, true)),
            format!("{:.3}", auc(&emb, false)),
        ]);
    }
    for e in 1..=epochs {
        let start = Instant::now();
        let model = Arga { epochs: e * unit, seed, ..Default::default() };
        let emb = model.embed(&split.train_graph);
        let secs = start.elapsed().as_secs_f64();
        table.row(vec![
            model.name().into(),
            e.to_string(),
            format!("{secs:.1}"),
            format!("{:.3}", auc(&emb, true)),
            format!("{:.3}", auc(&emb, false)),
        ]);
    }
    table.print();
    println!("\n(paper: CoANE reaches its plateau within ~1 epoch; VGAE needs far more time)");
}
