//! Fig. 3: t-SNE visualization of Cora embeddings for CoANE vs VGAE vs
//! ARVGA vs ANRL (the methods shown in the paper's figure).
//! Emits one CSV per method (`fig3_<method>.csv` with `x,y,label` columns)
//! plus a console summary of cluster compactness (mean intra-class vs
//! inter-class 2-D distance — higher ratio = better-separated classes).
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig3_tsne -- \
//!     [--scale 0.15] [--epochs 8] [--dim 128] [--seed 42] [--out .]
//! ```

use std::io::Write;

use coane_bench::runner::RunConfig;
use coane_bench::{Args, Method};
use coane_datasets::Preset;
use coane_eval::{tsne, TsneConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let rc = RunConfig {
        scale: args.get_or("scale", 0.15),
        dim: args.get_or("dim", 128),
        epochs: args.get_or("epochs", 8),
        seed: args.get_or("seed", 42),
    };
    let out_dir = args.get("out").unwrap_or(".").to_string();
    let (graph, _) = Preset::Cora.generate_scaled(rc.scale, rc.seed);
    let labels = graph.labels().unwrap().to_vec();
    println!("== Fig. 3: t-SNE visualization (Cora, {} nodes) ==", graph.num_nodes());

    for method in [Method::Coane, Method::Vgae, Method::Arvga, Method::Anrl] {
        let emb = method.embed(&graph, rc.dim, rc.epochs, rc.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x75);
        let coords = tsne(
            emb.as_slice(),
            emb.cols(),
            &TsneConfig { iters: 300, ..Default::default() },
            &mut rng,
        );
        let path = format!("{out_dir}/fig3_{}.csv", method.name().to_lowercase());
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "x,y,label").unwrap();
        for (v, &l) in labels.iter().enumerate() {
            writeln!(f, "{},{},{}", coords[v * 2], coords[v * 2 + 1], l).unwrap();
        }
        // Compactness: mean inter-class / mean intra-class distance.
        let dist = |a: usize, b: usize| -> f64 {
            let dx = (coords[a * 2] - coords[b * 2]) as f64;
            let dy = (coords[a * 2 + 1] - coords[b * 2 + 1]) as f64;
            (dx * dx + dy * dy).sqrt()
        };
        let n = labels.len();
        let (mut intra, mut ni, mut inter, mut ne) = (0.0f64, 0usize, 0.0f64, 0usize);
        for a in 0..n {
            for b in (a + 1)..n {
                if labels[a] == labels[b] {
                    intra += dist(a, b);
                    ni += 1;
                } else {
                    inter += dist(a, b);
                    ne += 1;
                }
            }
        }
        let ratio = (inter / ne as f64) / (intra / ni as f64);
        println!(
            "{:>8}: separation ratio {ratio:.3} (inter/intra 2-D distance) → {path}",
            method.name()
        );
    }
    println!("(paper: CoANE shows the most compact, well-separated clusters)");
}
