//! Tables 2–3: Macro/Micro-F1 node-label classification at training ratios
//! 5% / 20% / 50% across the five dataset families.
//!
//! ```text
//! cargo run --release -p coane-bench --bin exp_classification -- \
//!     [--scale 0.2] [--epochs 8] [--dim 128] [--seed 42] \
//!     [--datasets cora,citeseer,pubmed,webkb,flickr] [--methods coane,gae,...]
//! ```
//!
//! WebKB is reported as the average over its four subnetworks, as in the
//! paper. Paper values are printed next to each measured cell.

use coane_bench::paper::classification_reference;
use coane_bench::runner::{classification_run, ClassificationResult, RunConfig};
use coane_bench::table::Table;
use coane_bench::{all_methods, Args, Method};
use coane_datasets::Preset;

const RATIOS: [f64; 3] = [0.05, 0.2, 0.5];

fn main() {
    let args = Args::parse();
    let rc = RunConfig {
        scale: args.get_or("scale", 0.2),
        dim: args.get_or("dim", 128),
        epochs: args.get_or("epochs", 8),
        seed: args.get_or("seed", 42),
    };
    let methods = all_methods(args.get_list("methods"));
    let families = args.get_list("datasets").unwrap_or_else(|| {
        vec!["cora".into(), "citeseer".into(), "pubmed".into(), "webkb".into(), "flickr".into()]
    });

    println!("== Tables 2–3: node label classification ==");
    println!("scale={} dim={} epochs={} seed={}\n", rc.scale, rc.dim, rc.epochs, rc.seed);

    for family in &families {
        let presets: Vec<Preset> = if family == "webkb" {
            Preset::WEBKB.to_vec()
        } else {
            vec![Preset::parse(family).unwrap_or_else(|| panic!("unknown dataset {family}"))]
        };
        // Average results over the family's networks (matters for WebKB).
        let mut acc: Vec<Vec<ClassificationResult>> = Vec::new();
        for &p in &presets {
            acc.push(classification_run(p, &methods, &RATIOS, &rc));
        }
        let mut table = Table::new(&[
            "Method",
            "Macro@5%",
            "Macro@20%",
            "Macro@50%",
            "Micro@5%",
            "Micro@20%",
            "Micro@50%",
        ]);
        for (mi, &method) in methods.iter().enumerate() {
            let cell = |ri: usize, micro: bool| -> f64 {
                let mut s = 0.0;
                for run in &acc {
                    let r = &run[mi * RATIOS.len() + ri];
                    s += if micro { r.micro_f1 } else { r.macro_f1 };
                }
                s / acc.len() as f64
            };
            let reference = classification_reference(family, method.name());
            let mut cells = vec![method.name().to_string()];
            for (k, micro) in
                [(0usize, false), (1, false), (2, false), (0, true), (1, true), (2, true)]
                    .into_iter()
                    .enumerate()
            {
                let v = cell(micro.0, micro.1);
                let r = reference.map(|row| row[k]);
                cells.push(coane_bench::table::with_reference(v, r));
            }
            table.row(cells);
        }
        println!("--- {family} ---");
        table.print();
        check_shape(family, &methods, &acc);
        println!();
    }
    println!("(DANE / ANRL / STNE are lite variants — see DESIGN.md §3)");
}

/// Prints whether the headline shape holds: CoANE's micro-F1 at 50% is the
/// best (or within 2 points of the best) among the run methods.
fn check_shape(family: &str, methods: &[Method], acc: &[Vec<ClassificationResult>]) {
    let Some(coane_idx) = methods.iter().position(|&m| m == Method::Coane) else {
        return;
    };
    let score = |mi: usize| -> f64 {
        acc.iter().map(|run| run[mi * RATIOS.len() + 2].micro_f1).sum::<f64>() / acc.len() as f64
    };
    let coane = score(coane_idx);
    let best = (0..methods.len()).map(score).fold(f64::NEG_INFINITY, f64::max);
    let verdict = if coane >= best - 0.02 { "HOLDS" } else { "DEVIATES" };
    println!("[shape] {family}: CoANE micro@50% = {coane:.3}, best = {best:.3} → {verdict}");
}
