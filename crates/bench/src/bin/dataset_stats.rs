//! Table 1 verification: generates every preset at full size and prints its
//! statistics next to the paper's Table 1, plus replica-only diagnostics
//! (degree stats, components, attribute sparsity, label-noise-adjusted
//! homophily) that show the synthetic substitution is behaving.
//!
//! ```text
//! cargo run --release -p coane-bench --bin dataset_stats -- [--scale 1.0] [--seed 42] [--skip-large]
//! ```

use coane_bench::table::Table;
use coane_bench::Args;
use coane_datasets::Preset;
use coane_graph::ops::{connected_components, degree_stats};

fn main() {
    let args = Args::parse();
    let scale = args.get_or("scale", 1.0f64);
    let seed: u64 = args.get_or("seed", 42);
    let skip_large = args.has_flag("skip-large");

    println!("== Table 1: dataset statistics (replica vs paper) ==\n");
    let mut table = Table::new(&[
        "Dataset",
        "nodes (paper)",
        "attrs (paper)",
        "edges (paper)",
        "density (paper)",
        "labels (paper)",
        "avg deg",
        "components",
        "attr nnz/node",
        "homophily",
    ]);
    for preset in Preset::ALL {
        let (n_p, d_p, m_p, k_p) = preset.table1_stats();
        if skip_large && n_p > 5000 {
            continue;
        }
        let (g, _) = preset.generate_scaled(scale, seed);
        let (_, _, mean_deg) = degree_stats(&g);
        let (_, comps) = connected_components(&g);
        let labels = g.labels().unwrap();
        let homophily = {
            let same =
                g.edges().filter(|&(u, v, _)| labels[u as usize] == labels[v as usize]).count();
            same as f64 / g.num_edges() as f64
        };
        let paper_density = 2.0 * m_p as f64 / (n_p as f64 * (n_p as f64 - 1.0));
        table.row(vec![
            preset.name().to_string(),
            format!("{} ({})", g.num_nodes(), n_p),
            format!("{} ({})", g.attr_dim(), d_p),
            format!("{} ({})", g.num_edges(), m_p),
            format!("{:.4} ({:.4})", g.density(), paper_density),
            format!("{} ({})", g.num_labels(), k_p),
            format!("{mean_deg:.1}"),
            comps.to_string(),
            format!("{:.1}", g.attrs().nnz() as f64 / g.num_nodes() as f64),
            format!("{homophily:.2}"),
        ]);
    }
    table.print();
    println!(
        "\n(replica target: nodes/attrs/labels exact; edges within a few %, so density follows)"
    );
}
