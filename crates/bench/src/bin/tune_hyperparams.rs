//! §4.1's hyperparameter tuning, runnable: grid-searches the negative-loss
//! controller `a`, context length `c` and attribute-preservation controller
//! `γ` on the link-prediction validation set, then reports the selected
//! configuration's test AUC.
//!
//! ```text
//! cargo run --release -p coane-bench --bin tune_hyperparams -- \
//!     [--dataset webkb-cornell] [--scale 1.0] [--epochs 6] [--seed 42] \
//!     [--axis all|a|c|gamma]
//! ```

use coane_bench::runner::effective_scale;
use coane_bench::table::Table;
use coane_bench::tuning::{apply, tune, TuningGrid};
use coane_bench::Args;
use coane_core::{Coane, CoaneConfig};
use coane_datasets::Preset;
use coane_eval::link_prediction_auc;
use coane_graph::{EdgeSplit, SplitConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let preset =
        Preset::parse(args.get("dataset").unwrap_or("webkb-cornell")).expect("unknown dataset");
    let scale = effective_scale(preset, args.get_or("scale", 1.0));
    let seed: u64 = args.get_or("seed", 42);
    let (graph, _) = preset.generate_scaled(scale, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x70E);
    let split = EdgeSplit::new(&graph, SplitConfig::paper(), &mut rng);
    let base = CoaneConfig { epochs: args.get_or("epochs", 6), seed, ..Default::default() };

    let paper = TuningGrid::paper();
    let grid = match args.get("axis").unwrap_or("all") {
        "all" => paper,
        "a" => TuningGrid { context_sizes: vec![], gammas: vec![], ..paper },
        "c" => TuningGrid { neg_strengths: vec![], gammas: vec![], ..paper },
        "gamma" => TuningGrid { neg_strengths: vec![], context_sizes: vec![], ..paper },
        other => panic!("unknown --axis {other}"),
    };
    println!(
        "== §4.1 hyperparameter tuning on {} ({} nodes, {} grid points) ==\n",
        preset.name(),
        graph.num_nodes(),
        grid.points_len(&base),
    );

    let results = tune(&base, &grid, &split);
    let mut table = Table::new(&["a", "c", "γ", "val AUC"]);
    for r in results.iter().take(10) {
        table.row(vec![
            format!("{:.0e}", r.neg_strength),
            r.context_size.to_string(),
            format!("{:.0e}", r.gamma),
            format!("{:.3}", r.val_auc),
        ]);
    }
    table.print();

    let best = &results[0];
    let tuned = apply(&base, best);
    let emb = Coane::new(tuned).fit(&split.train_graph);
    let test_auc = link_prediction_auc(
        emb.as_slice(),
        emb.cols(),
        &split.train_pos,
        &split.train_neg,
        &split.test_pos,
        &split.test_neg,
    );
    println!(
        "\nselected: a = {:.0e}, c = {}, γ = {:.0e} → test AUC {test_auc:.3}",
        best.neg_strength, best.context_size, best.gamma
    );
}
