//! Fig. 6b: the learned convolution-filter weights. Trains CoANE on the
//! Cora replica, sorts attribute dimensions by the midst position's mean
//! |weight|, and writes the full heat map plus the top/bottom-10 slices to
//! CSV. The console prints the paper's diagnostic: whether attributes that
//! get high weight at the midst position also get high weight at the
//! neighbour positions (positional co-attention).
//!
//! ```text
//! cargo run --release -p coane-bench --bin fig6_filters -- \
//!     [--scale 0.15] [--epochs 8] [--seed 42] [--out .]
//! ```

use std::io::Write;

use coane_bench::Args;
use coane_core::{Coane, CoaneConfig};
use coane_datasets::Preset;

fn main() {
    let args = Args::parse();
    let (graph, _) =
        Preset::Cora.generate_scaled(args.get_or("scale", 0.15), args.get_or("seed", 42));
    let out_dir = args.get("out").unwrap_or(".").to_string();
    let cfg = CoaneConfig {
        epochs: args.get_or("epochs", 8),
        seed: args.get_or("seed", 42),
        ..Default::default()
    };
    let c = cfg.context_size;
    println!("== Fig. 6b: filter weights (Cora replica, {} nodes) ==", graph.num_nodes());
    let (_, model, _) = Coane::new(cfg).fit_with_model(&graph);
    let filters = model.filters();
    let heat = filters.mean_abs_by_position(); // (positions × attrs)

    // Sort attribute dims by midst-position weight, descending.
    let midst = c / 2;
    let mut order: Vec<usize> = (0..heat.cols()).collect();
    order.sort_by(|&a, &b| {
        heat.get(midst, b).partial_cmp(&heat.get(midst, a)).unwrap_or(std::cmp::Ordering::Equal)
    });

    let path = format!("{out_dir}/fig6b_filters.csv");
    let mut f = std::fs::File::create(&path).expect("create csv");
    write!(f, "attr_rank").unwrap();
    for p in 0..heat.rows() {
        write!(f, ",pos{p}").unwrap();
    }
    writeln!(f).unwrap();
    for (rank, &a) in order.iter().enumerate() {
        write!(f, "{rank}").unwrap();
        for p in 0..heat.rows() {
            write!(f, ",{:.6}", heat.get(p, a)).unwrap();
        }
        writeln!(f).unwrap();
    }
    println!("wrote {} ({} attributes × {} positions)", path, order.len(), heat.rows());

    // Diagnostic: for the top-10 and bottom-10 midst attributes, the mean
    // neighbour-position weight — the paper expects high-midst attributes to
    // carry high neighbour weights too.
    let neighbor_mass = |dims: &[usize]| -> f64 {
        let mut s = 0.0;
        let mut cnt = 0usize;
        for &a in dims {
            for p in 0..heat.rows() {
                if p != midst {
                    s += heat.get(p, a) as f64;
                    cnt += 1;
                }
            }
        }
        s / cnt as f64
    };
    let top10 = neighbor_mass(&order[..10.min(order.len())]);
    let bottom10 = neighbor_mass(&order[order.len().saturating_sub(10)..]);
    println!(
        "mean neighbour-position |weight|: top-10 midst attrs {top10:.5}, bottom-10 {bottom10:.5}"
    );
    println!(
        "positional co-attention {}",
        if top10 > bottom10 { "HOLDS (matches the paper's Fig. 6b reading)" } else { "DEVIATES" }
    );
}
