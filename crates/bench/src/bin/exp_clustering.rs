//! Table 4 (right) and Table 5: node-clustering NMI. K-means with K = the
//! number of ground-truth labels, scored by NMI.
//!
//! ```text
//! cargo run --release -p coane-bench --bin exp_clustering -- \
//!     [--scale 0.2] [--epochs 8] [--dim 128] [--seed 42] \
//!     [--datasets cora,...,webkb,flickr | webkb-each] [--methods ...]
//! ```
//!
//! `--datasets webkb-each` reproduces Table 5 (the four WebKB subnetworks
//! reported separately).

use coane_bench::paper::{clustering_reference, webkb_clustering_reference};
use coane_bench::runner::{clustering_run, RunConfig};
use coane_bench::table::{with_reference, Table};
use coane_bench::{all_methods, Args, Method};
use coane_datasets::Preset;

fn main() {
    let args = Args::parse();
    let rc = RunConfig {
        scale: args.get_or("scale", 0.2),
        dim: args.get_or("dim", 128),
        epochs: args.get_or("epochs", 8),
        seed: args.get_or("seed", 42),
    };
    let methods = all_methods(args.get_list("methods"));
    let families = args.get_list("datasets").unwrap_or_else(|| {
        vec!["cora".into(), "citeseer".into(), "pubmed".into(), "webkb".into(), "flickr".into()]
    });
    let table5_mode = families.iter().any(|f| f == "webkb-each");
    let families: Vec<String> = if table5_mode {
        Preset::WEBKB.iter().map(|p| p.name().to_string()).collect()
    } else {
        families
    };

    println!(
        "== {}: node clustering NMI ==",
        if table5_mode { "Table 5 (WebKB subnetworks)" } else { "Table 4 (right)" }
    );
    println!("scale={} dim={} epochs={} seed={}\n", rc.scale, rc.dim, rc.epochs, rc.seed);

    let mut header = vec!["Method".to_string()];
    header.extend(families.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut results: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for family in &families {
        let presets: Vec<Preset> = if family == "webkb" {
            Preset::WEBKB.to_vec()
        } else {
            vec![Preset::parse(family).unwrap_or_else(|| panic!("unknown dataset {family}"))]
        };
        let mut sums = vec![0.0f64; methods.len()];
        for &p in &presets {
            for (mi, (_, score)) in clustering_run(p, &methods, &rc).into_iter().enumerate() {
                sums[mi] += score;
            }
        }
        for (mi, s) in sums.into_iter().enumerate() {
            results[mi].push(s / presets.len() as f64);
        }
    }
    for (mi, &method) in methods.iter().enumerate() {
        let mut cells = vec![method.name().to_string()];
        for (fi, family) in families.iter().enumerate() {
            let reference = if table5_mode {
                webkb_clustering_reference(family, method.name())
            } else {
                clustering_reference(family, method.name())
            };
            cells.push(with_reference(results[mi][fi], reference));
        }
        table.row(cells);
    }
    table.print();

    if let Some(ci) = methods.iter().position(|&m| m == Method::Coane) {
        for (fi, family) in families.iter().enumerate() {
            let coane = results[ci][fi];
            let best = results.iter().map(|r| r[fi]).fold(f64::NEG_INFINITY, f64::max);
            let verdict = if coane >= best - 0.02 { "HOLDS" } else { "DEVIATES" };
            println!("[shape] {family}: CoANE NMI {coane:.3}, best {best:.3} → {verdict}");
        }
    }
}
