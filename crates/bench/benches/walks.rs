//! Microbenchmarks for the random-walk / context substrate: walk
//! generation, context extraction, and co-occurrence construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coane_datasets::Preset;
use coane_walks::{CoMatrices, ContextSet, ContextsConfig, PositivePairs, WalkConfig, Walker};

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_generation");
    group.sample_size(10);
    for scale in [0.05f64, 0.15] {
        let (graph, _) = Preset::Cora.generate_scaled(scale, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("cora_n{}", graph.num_nodes())),
            &graph,
            |b, g| {
                let walker = Walker::new(g, WalkConfig::default());
                b.iter(|| black_box(walker.generate_all(4)));
            },
        );
    }
    group.finish();
}

fn bench_contexts(c: &mut Criterion) {
    let (graph, _) = Preset::Cora.generate_scaled(0.1, 1);
    let walker = Walker::new(&graph, WalkConfig::default());
    let walks = walker.generate_all(4);
    let mut group = c.benchmark_group("context_extraction");
    group.sample_size(10);
    for window in [3usize, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let cfg = ContextsConfig { context_size: w, ..Default::default() };
            b.iter(|| black_box(ContextSet::build(&walks, graph.num_nodes(), &cfg)));
        });
    }
    group.finish();
}

fn bench_cooccurrence(c: &mut Criterion) {
    let (graph, _) = Preset::Cora.generate_scaled(0.1, 1);
    let walker = Walker::new(&graph, WalkConfig::default());
    let walks = walker.generate_all(4);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ContextsConfig::default());
    let mut group = c.benchmark_group("cooccurrence");
    group.sample_size(10);
    group.bench_function("build_d_matrices", |b| {
        b.iter(|| black_box(CoMatrices::build(&contexts, &graph)));
    });
    let co = CoMatrices::build(&contexts, &graph);
    group.bench_function("top_kp_selection", |b| {
        b.iter(|| black_box(PositivePairs::select(&co, contexts.max_count().max(1))));
    });
    group.finish();
}

criterion_group!(benches, bench_walks, bench_contexts, bench_cooccurrence);
criterion_main!(benches);
