//! Ablation cost benchmarks: how much wall-clock each design choice of
//! CoANE buys or costs per training epoch. Complements the quality ablations
//! of `fig6_ablation` (which measure AUC) with the timing side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coane_core::{Ablation, Coane, CoaneConfig, EncoderKind};
use coane_datasets::Preset;
use coane_walks::NegativeMode;

fn config_case(name: &str) -> CoaneConfig {
    let base = CoaneConfig { epochs: 1, embed_dim: 64, ..Default::default() };
    match name {
        "full" => base,
        "no-attr-preservation" => CoaneConfig { ablation: Ablation::wap(), ..base },
        "no-positive" => CoaneConfig { ablation: Ablation::wp(), ..base },
        "no-negative" => CoaneConfig { ablation: Ablation::wn(), ..base },
        "fc-encoder" => CoaneConfig { encoder: EncoderKind::FullyConnected, ..base },
        "pre-sampling" => {
            CoaneConfig { negative_mode: NegativeMode::PreSampling { pool_factor: 3 }, ..base }
        }
        other => panic!("unknown case {other}"),
    }
}

fn bench_objective_ablations(c: &mut Criterion) {
    let (graph, _) = Preset::WebKbCornell.generate_scaled(1.0, 1);
    let mut group = c.benchmark_group("coane_epoch_cost");
    group.sample_size(10);
    for case in
        ["full", "no-attr-preservation", "no-positive", "no-negative", "fc-encoder", "pre-sampling"]
    {
        group.bench_with_input(BenchmarkId::from_parameter(case), &case, |b, &case| {
            b.iter(|| black_box(Coane::new(config_case(case)).fit(&graph)));
        });
    }
    group.finish();
}

fn bench_context_size_cost(c: &mut Criterion) {
    let (graph, _) = Preset::WebKbCornell.generate_scaled(1.0, 1);
    let mut group = c.benchmark_group("coane_context_size_cost");
    group.sample_size(10);
    for cs in [3usize, 7, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(cs), &cs, |b, &cs| {
            let cfg =
                CoaneConfig { context_size: cs, epochs: 1, embed_dim: 64, ..Default::default() };
            b.iter(|| black_box(Coane::new(cfg.clone()).fit(&graph)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective_ablations, bench_context_size_cost);
criterion_main!(benches);
