//! Microbenchmarks for the CoANE model: the sparse context convolution
//! (forward and forward+backward) and a full training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coane_core::batch::ContextBatch;
use coane_core::{Coane, CoaneConfig, CoaneModel, EncoderKind};
use coane_datasets::Preset;
use coane_nn::Tape;
use coane_walks::{ContextSet, ContextsConfig, WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (coane_graph::AttributedGraph, ContextSet) {
    let (graph, _) = Preset::Cora.generate_scaled(0.1, 1);
    let walker = Walker::new(&graph, WalkConfig::default());
    let walks = walker.generate_all(4);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ContextsConfig::default());
    (graph, contexts)
}

fn bench_encode(c: &mut Criterion) {
    let (graph, contexts) = setup();
    let cfg = CoaneConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = CoaneModel::new(&cfg, graph.attr_dim(), &mut rng);
    let nodes: Vec<u32> = (0..256.min(graph.num_nodes() as u32)).collect();
    let batch = ContextBatch::build(&graph, &contexts, &nodes, EncoderKind::Convolution);

    let mut group = c.benchmark_group("coane_encode");
    group.sample_size(10);
    group.bench_function("batch_build", |b| {
        b.iter(|| {
            black_box(ContextBatch::build(&graph, &contexts, &nodes, EncoderKind::Convolution))
        });
    });
    group.bench_function("conv_forward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let vars = model.params.attach(&mut tape);
            black_box(model.encode(&mut tape, &vars, &batch));
        });
    });
    group.bench_function("conv_forward_backward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let vars = model.params.attach(&mut tape);
            let z = model.encode(&mut tape, &vars, &batch);
            let s = tape.sqr(z);
            let loss = tape.sum(s);
            tape.backward(loss);
            black_box(tape.grad(vars[0]).is_some());
        });
    });
    group.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let (graph, _) = Preset::WebKbCornell.generate_scaled(1.0, 1);
    let mut group = c.benchmark_group("coane_training");
    group.sample_size(10);
    group.bench_function("one_epoch_webkb", |b| {
        b.iter(|| {
            let cfg = CoaneConfig { epochs: 1, ..Default::default() };
            black_box(Coane::new(cfg).fit(&graph));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_epoch);
criterion_main!(benches);
