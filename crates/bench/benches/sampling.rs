//! Microbenchmarks for the sampling substrate: alias tables and the two
//! contextual negative-sampling strategies of §3.3.2.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coane_datasets::Preset;
use coane_walks::{
    AliasTable, ContextSet, ContextsConfig, ContextualNegativeSampler, WalkConfig, Walker,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_alias(c: &mut Criterion) {
    let weights: Vec<f64> = (1..=10_000).map(|i| (i % 97 + 1) as f64).collect();
    let mut group = c.benchmark_group("alias_table");
    group.bench_function("build_10k", |b| {
        b.iter(|| black_box(AliasTable::new(&weights)));
    });
    let table = AliasTable::new(&weights);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    group.bench_function("sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)));
    });
    group.finish();
}

fn bench_negative_sampling(c: &mut Criterion) {
    let (graph, _) = Preset::Cora.generate_scaled(0.1, 1);
    let walker = Walker::new(&graph, WalkConfig::default());
    let walks = walker.generate_all(4);
    let contexts = ContextSet::build(&walks, graph.num_nodes(), &ContextsConfig::default());
    let sampler = ContextualNegativeSampler::new(&contexts);
    let batch: Vec<u32> = (0..256u32).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let mut group = c.benchmark_group("contextual_negatives");
    group.bench_function("pre_sampling_k20", |b| {
        let pool = sampler.draw_pool(2000, &mut rng);
        b.iter(|| black_box(sampler.negatives_from_pool(5, 20, &pool, &mut rng)));
    });
    group.bench_function("batch_sampling_k20", |b| {
        b.iter(|| black_box(sampler.negatives_from_batch(5, 20, &batch, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_alias, bench_negative_sampling);
criterion_main!(benches);
