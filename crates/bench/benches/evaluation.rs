//! Microbenchmarks for the evaluation toolkit: logistic regression, AUC,
//! k-means, and NMI at embedding-sized inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coane_eval::{kmeans, nmi, roc_auc, LogisticRegression};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_logreg(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let n = 1000usize;
    let dim = 128usize;
    let x: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let y: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let mut group = c.benchmark_group("logreg");
    group.sample_size(10);
    group.bench_function("fit_1000x128", |b| {
        b.iter(|| black_box(LogisticRegression::fit(&x, dim, &y, 1e-3)));
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 20_000usize;
    let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
    let b2: Vec<u32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
    let mut group = c.benchmark_group("metrics");
    group.bench_function("roc_auc_20k", |b| {
        b.iter(|| black_box(roc_auc(&scores, &labels)));
    });
    group.bench_function("nmi_20k", |b| {
        b.iter(|| black_box(nmi(&a, &b2)));
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let n = 2000usize;
    let dim = 128usize;
    let pts: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("2000x128_k7", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(3);
            black_box(kmeans(&pts, dim, 7, 30, &mut r))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_logreg, bench_metrics, bench_kmeans);
criterion_main!(benches);
