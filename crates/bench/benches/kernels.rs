//! Matmul-family kernel microbench: the seed's naive kernels vs the blocked
//! kernels (1 thread) vs blocked + parallel (4 threads), at Cora scale —
//! n = 2708 nodes, d = 1433 attributes, d' = 128 embedding dims, the shapes
//! the encoder/decoder matmuls actually see during training.
//!
//! Besides printing a table, writes `BENCH_kernels.json` at the repository
//! root so the speedups are recorded alongside the code.

use coane_nn::{pool, Matrix};
use criterion::{black_box, format_ns, run_bench, Sample};
use serde::Serialize;
use std::io::Write as _;

/// Cora scale: (nodes, attribute dim, embedding dim).
const M: usize = 2708;
const K: usize = 1433;
const N: usize = 128;

const SAMPLE_SIZE: usize = 10;
const PARALLEL_THREADS: usize = 4;

/// Times are minima over the sample set: the container runs on a shared
/// single-core VM where scheduler interference inflates medians run-to-run,
/// and the minimum is the standard robust estimator of steady-state cost.
#[derive(Serialize)]
struct KernelRow {
    naive_ns: f64,
    blocked_ns: f64,
    blocked_parallel_ns: f64,
    speedup_blocked: f64,
    speedup_parallel: f64,
}

#[derive(Serialize)]
struct Report {
    m: usize,
    k: usize,
    n: usize,
    sample_size: usize,
    parallel_threads: usize,
    matmul: KernelRow,
    matmul_tn: KernelRow,
    matmul_nt: KernelRow,
    /// Geometric mean of the three `speedup_parallel` values.
    family_speedup: f64,
}

/// Deterministic dense fill — training matmuls run on dense activations and
/// gradients (the sparse attribute matrix goes through `SparseMatrix`), so
/// the bench data deliberately has no zeros for the naive kernels to skip.
fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for x in m.as_mut_slice() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *x = ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
    }
    m
}

fn bench_variants(
    name: &str,
    naive: &mut dyn FnMut() -> Matrix,
    blocked: &mut dyn FnMut() -> Matrix,
) -> KernelRow {
    let time = |f: &mut dyn FnMut() -> Matrix| -> Sample {
        run_bench(SAMPLE_SIZE, |b| b.iter(|| black_box(f())))
    };
    let naive_s = time(naive);
    pool::set_threads(1);
    let blocked_s = time(blocked);
    pool::set_threads(PARALLEL_THREADS);
    let parallel_s = time(blocked);
    let row = KernelRow {
        naive_ns: naive_s.min_ns,
        blocked_ns: blocked_s.min_ns,
        blocked_parallel_ns: parallel_s.min_ns,
        speedup_blocked: naive_s.min_ns / blocked_s.min_ns,
        speedup_parallel: naive_s.min_ns / parallel_s.min_ns,
    };
    println!(
        "{name:<10} naive {:>12}   blocked {:>12} ({:.2}x)   blocked+{}t {:>12} ({:.2}x)",
        format_ns(row.naive_ns),
        format_ns(row.blocked_ns),
        row.speedup_blocked,
        PARALLEL_THREADS,
        format_ns(row.blocked_parallel_ns),
        row.speedup_parallel,
    );
    row
}

fn main() {
    println!("kernel bench at Cora scale: m={M} k={K} n={N}, {SAMPLE_SIZE} samples");

    // Encoder-shaped operands: x (M×K) attributes, w (K×N) filters,
    // g (M×N) output gradients.
    let x = filled(M, K, 1);
    let w = filled(K, N, 2);
    let g = filled(M, N, 3);

    // Correctness guard before timing anything.
    assert_eq!(x.matmul(&w), x.matmul_naive(&w), "matmul diverged from reference");
    assert_eq!(x.matmul_tn(&g), x.matmul_tn_naive(&g), "matmul_tn diverged from reference");
    {
        // matmul_nt(g, w) = g · wᵀ — the matmul backward pass shape
        // (dA = dC · Bᵀ), operands sharing the embedding-dim column count.
        let fast = g.matmul_nt(&w);
        let slow = g.matmul_nt_naive(&w);
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "matmul_nt outside tolerance");
        }
    }

    let matmul = bench_variants("matmul", &mut || x.matmul_naive(&w), &mut || x.matmul(&w));
    let matmul_tn =
        bench_variants("matmul_tn", &mut || x.matmul_tn_naive(&g), &mut || x.matmul_tn(&g));
    let matmul_nt =
        bench_variants("matmul_nt", &mut || g.matmul_nt_naive(&w), &mut || g.matmul_nt(&w));

    let family_speedup =
        (matmul.speedup_parallel * matmul_tn.speedup_parallel * matmul_nt.speedup_parallel)
            .powf(1.0 / 3.0);
    println!("family geometric-mean speedup (blocked+{PARALLEL_THREADS}t vs naive): {family_speedup:.2}x");

    let report = Report {
        m: M,
        k: K,
        n: N,
        sample_size: SAMPLE_SIZE,
        parallel_threads: PARALLEL_THREADS,
        matmul,
        matmul_tn,
        matmul_nt,
        family_speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let mut file = std::fs::File::create(path).expect("create BENCH_kernels.json");
    writeln!(file, "{json}").expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
