//! End-to-end embedding throughput per method on a small WebKB-sized
//! replica — the relative costs behind the paper's runtime discussion
//! (Fig. 4d: CoANE converges quickly; GCN-style encoders cost more per unit
//! of quality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coane_bench::Method;
use coane_datasets::Preset;

fn bench_methods(c: &mut Criterion) {
    let (graph, _) = Preset::WebKbCornell.generate_scaled(1.0, 1);
    let mut group = c.benchmark_group("embed_webkb");
    group.sample_size(10);
    for method in [Method::Coane, Method::DeepWalk, Method::Line, Method::Gae, Method::Vgae] {
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, &m| {
            b.iter(|| black_box(m.embed(&graph, 32, 2, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
