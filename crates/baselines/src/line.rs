//! LINE (Tang et al., 2015): large-scale information network embedding with
//! first- and second-order proximity, trained by edge sampling with negative
//! sampling. The final embedding concatenates the first- and second-order
//! halves, as in the original paper's combined setting.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::uniform;
use coane_nn::tape::stable_sigmoid;
use coane_nn::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{degree_table, Embedder};

/// LINE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Line {
    /// Total embedding dimensionality (half per proximity order).
    pub dim: usize,
    /// Edge-sample updates per order, as a multiple of `|E|`.
    pub samples_per_edge: usize,
    /// Negative samples per positive edge.
    pub negatives: usize,
    /// Initial learning rate (linear decay).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Line {
    fn default() -> Self {
        Self { dim: 128, samples_per_edge: 40, negatives: 5, lr: 0.025, seed: 42 }
    }
}

impl Line {
    #[allow(clippy::needless_range_loop)] // indexed form is clearer in this kernel
    fn train_order(
        &self,
        graph: &AttributedGraph,
        second_order: bool,
        half: usize,
        rng: &mut ChaCha8Rng,
    ) -> Matrix {
        let n = graph.num_nodes();
        let bound = 0.5 / half as f32;
        let mut vertex = uniform(n, half, -bound, bound, rng);
        // Second order uses separate context vectors; first order shares.
        let mut context = if second_order { Matrix::zeros(n, half) } else { vertex.clone() };
        let edges: Vec<(NodeId, NodeId, f32)> = graph.edges().collect();
        if edges.is_empty() {
            return vertex;
        }
        let weights: Vec<f64> = edges.iter().map(|&(_, _, w)| w as f64).collect();
        let edge_table = coane_walks::AliasTable::new(&weights);
        let noise = degree_table(graph);
        let total = edges.len() * self.samples_per_edge;
        let mut grad_u = vec![0.0f32; half];
        for step in 0..total {
            let lr = (self.lr * (1.0 - step as f32 / total as f32)).max(1e-4);
            let (mut u, mut v, _) = edges[edge_table.sample(rng) as usize];
            // Undirected: orient randomly so both endpoints learn.
            if rng.gen_bool(0.5) {
                std::mem::swap(&mut u, &mut v);
            }
            grad_u.iter_mut().for_each(|g| *g = 0.0);
            for s in 0..=self.negatives {
                let (target, label) =
                    if s == 0 { (v, 1.0f32) } else { (noise.sample(rng), 0.0f32) };
                if target == u {
                    continue;
                }
                let dot: f32 = vertex
                    .row(u as usize)
                    .iter()
                    .zip(context.row(target as usize))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let err = stable_sigmoid(dot) - label;
                for k in 0..half {
                    grad_u[k] += err * context.get(target as usize, k);
                }
                for k in 0..half {
                    let g = err * vertex.get(u as usize, k);
                    let val = context.get(target as usize, k) - lr * g;
                    context.set(target as usize, k, val);
                }
                if !second_order {
                    // shared parameters: mirror the context update into vertex
                    vertex.row_mut(target as usize).copy_from_slice(context.row(target as usize));
                }
            }
            for (k, &g) in grad_u.iter().enumerate() {
                let val = vertex.get(u as usize, k) - lr * g;
                vertex.set(u as usize, k, val);
            }
            if !second_order {
                context.row_mut(u as usize).copy_from_slice(vertex.row(u as usize));
            }
        }
        vertex
    }
}

impl Embedder for Line {
    fn name(&self) -> &'static str {
        "LINE"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        assert!(self.dim.is_multiple_of(2), "LINE dim must be even");
        let half = self.dim / 2;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x11E);
        let first = self.train_order(graph, false, half, &mut rng);
        let second = self.train_order(graph, true, half, &mut rng);
        let n = graph.num_nodes();
        let mut out = Matrix::zeros(n, self.dim);
        for r in 0..n {
            out.row_mut(r)[..half].copy_from_slice(first.row(r));
            out.row_mut(r)[half..].copy_from_slice(second.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;

    #[test]
    fn line_separates_communities() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(120, 2, 0.2, 0.005, 32, &mut rng);
        let line = Line { dim: 16, samples_per_edge: 30, ..Default::default() };
        let emb = line.embed(&g);
        assert_eq!(emb.shape(), (120, 16));
        emb.assert_finite("line");
        let labels = g.labels().unwrap();
        let cos = |a: &[f32], b: &[f32]| coane_nn::sim::cosine(a, b) as f64;
        let (mut same, mut ns, mut diff, mut nd) = (0.0, 0usize, 0.0, 0usize);
        for i in 0..120 {
            for j in (i + 1)..120 {
                let c = cos(emb.row(i), emb.row(j));
                if labels[i] == labels[j] {
                    same += c;
                    ns += 1;
                } else {
                    diff += c;
                    nd += 1;
                }
            }
        }
        assert!(same / ns as f64 > diff / nd as f64, "no community separation");
    }

    #[test]
    fn deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = planted_partition(60, 2, 0.2, 0.02, 16, &mut rng);
        let line = Line { dim: 8, samples_per_edge: 10, ..Default::default() };
        assert_eq!(line.embed(&g), line.embed(&g));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(20, 2, 0.3, 0.05, 8, &mut rng);
        Line { dim: 7, ..Default::default() }.embed(&g);
    }
}
