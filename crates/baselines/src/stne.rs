//! STNE-lite (after Liu et al., KDD 2018: "Content to Node: Self-Translation
//! Network Embedding"). STNE reads the *content* (attribute) sequence of a
//! random walk with a recurrent encoder and learns to translate it back into
//! the *node* sequence; each node's embedding aggregates the encoder's
//! hidden states at that node's positions.
//!
//! "Lite" relative to the original: a single-direction GRU replaces the
//! bi-LSTM stack, and the decoder's full softmax over nodes is replaced by
//! negative sampling — the standard scalable substitution. The recurrence is
//! trained by ordinary backpropagation through time on the `coane-nn` tape
//! (the tape is just a DAG; unrolled steps are ordinary ops).

use std::rc::Rc;
use std::sync::Arc;

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::xavier_uniform;
use coane_nn::{Adam, Matrix, Params, SparseMatrix, Tape, Var};
use coane_walks::{Walk, WalkConfig, Walker};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{unigram_table, Embedder};

/// STNE-lite hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Stne {
    /// Hidden width of the GRU (= the embedding dimensionality).
    pub dim: usize,
    /// Width the raw attributes are projected to before the GRU.
    pub input_proj: usize,
    /// Walks per node.
    pub walks_per_node: usize,
    /// Walk (sequence) length — STNE sequences are short sentences.
    pub walk_length: usize,
    /// Training epochs over the walk set.
    pub epochs: usize,
    /// Walk minibatch size.
    pub batch_size: usize,
    /// Negative samples per position.
    pub negatives: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Stne {
    fn default() -> Self {
        Self {
            dim: 128,
            input_proj: 64,
            walks_per_node: 2,
            walk_length: 10,
            epochs: 6,
            batch_size: 64,
            negatives: 5,
            lr: 0.005,
            seed: 42,
        }
    }
}

/// GRU parameter handles (indices into the attached vars slice).
struct GruParams {
    w_in: usize,
    wz: usize,
    uz: usize,
    bz: usize,
    wr: usize,
    ur: usize,
    br: usize,
    wh: usize,
    uh: usize,
    bh: usize,
    out_emb: usize,
}

impl Stne {
    fn build_params<R: rand::Rng>(&self, n: usize, d: usize, rng: &mut R) -> (Params, GruParams) {
        let (p, h) = (self.input_proj, self.dim);
        let mut params = Params::new();
        let w_in = params.add("w_in", xavier_uniform(d, p, rng)).index();
        let wz = params.add("wz", xavier_uniform(p, h, rng)).index();
        let uz = params.add("uz", xavier_uniform(h, h, rng)).index();
        let bz = params.add("bz", Matrix::zeros(1, h)).index();
        let wr = params.add("wr", xavier_uniform(p, h, rng)).index();
        let ur = params.add("ur", xavier_uniform(h, h, rng)).index();
        let br = params.add("br", Matrix::zeros(1, h)).index();
        let wh = params.add("wh", xavier_uniform(p, h, rng)).index();
        let uh = params.add("uh", xavier_uniform(h, h, rng)).index();
        let bh = params.add("bh", Matrix::zeros(1, h)).index();
        let out_emb = params.add("out_emb", xavier_uniform(n, h, rng)).index();
        let gp = GruParams { w_in, wz, uz, bz, wr, ur, br, wh, uh, bh, out_emb };
        (params, gp)
    }

    /// One GRU step: returns the new hidden state for a `(B × p)` input.
    fn gru_step(&self, t: &mut Tape, vars: &[Var], gp: &GruParams, x: Var, h: Var) -> Var {
        let gate = |t: &mut Tape, w: usize, u: usize, b: usize, x: Var, hh: Var| {
            let xw = t.matmul(x, vars[w]);
            let hu = t.matmul(hh, vars[u]);
            let s = t.add(xw, hu);
            t.add_row(s, vars[b])
        };
        let z_pre = gate(t, gp.wz, gp.uz, gp.bz, x, h);
        let z = t.sigmoid(z_pre);
        let r_pre = gate(t, gp.wr, gp.ur, gp.br, x, h);
        let r = t.sigmoid(r_pre);
        let rh = t.mul(r, h);
        let xw = t.matmul(x, vars[gp.wh]);
        let rhu = t.matmul(rh, vars[gp.uh]);
        let cand_pre0 = t.add(xw, rhu);
        let cand_pre = t.add_row(cand_pre0, vars[gp.bh]);
        let cand = t.tanh(cand_pre);
        // h' = (1 − z) ⊙ h + z ⊙ h̃
        let neg_z = t.scale(z, -1.0);
        let one_minus_z = t.add_const(neg_z, 1.0);
        let keep = t.mul(one_minus_z, h);
        let update = t.mul(z, cand);
        t.add(keep, update)
    }

    /// Projects the attribute rows of one time-step's nodes: `(B × p)`.
    fn project_step(
        &self,
        t: &mut Tape,
        vars: &[Var],
        gp: &GruParams,
        graph: &AttributedGraph,
        step_nodes: &[NodeId],
    ) -> Var {
        let d = graph.attr_dim();
        let mut triplets = Vec::new();
        for (r, &v) in step_nodes.iter().enumerate() {
            let (idx, val) = graph.attrs().row(v);
            for (&a, &x) in idx.iter().zip(val) {
                triplets.push((r, a as usize, x));
            }
        }
        let sparse = Arc::new(SparseMatrix::from_triplets(step_nodes.len(), d, triplets));
        t.spmm(sparse, vars[gp.w_in])
    }
}

impl Embedder for Stne {
    fn name(&self) -> &'static str {
        "STNE"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x57E);
        let (mut params, gp) = self.build_params(n, graph.attr_dim(), &mut rng);

        let walker = Walker::new(
            graph,
            WalkConfig {
                walks_per_node: self.walks_per_node,
                walk_length: self.walk_length,
                p: 1.0,
                q: 1.0,
                seed: self.seed,
            },
        );
        // Keep only full-length walks so a batch forms a rectangular tensor.
        let mut walks: Vec<Walk> = walker
            .generate_all(crate::common::worker_threads())
            .into_iter()
            .filter(|w| w.len() == self.walk_length)
            .collect();
        if walks.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let noise = unigram_table(&walks, n);
        let mut adam = Adam::new(self.lr);
        use rand::Rng;
        for _ in 0..self.epochs {
            walks.shuffle(&mut rng);
            for chunk in walks.chunks(self.batch_size) {
                let b = chunk.len();
                let mut tape = Tape::new();
                let vars = params.attach(&mut tape);
                let mut h = tape.constant(Matrix::zeros(b, self.dim));
                let mut loss_terms: Vec<Var> = Vec::new();
                for step in 0..self.walk_length {
                    let step_nodes: Vec<NodeId> = chunk.iter().map(|w| w[step]).collect();
                    let x = self.project_step(&mut tape, &vars, &gp, graph, &step_nodes);
                    h = self.gru_step(&mut tape, &vars, &gp, x, h);
                    // self-translation: h_t must identify the node at step t
                    let mut dsts: Vec<u32> = Vec::with_capacity(b * (1 + self.negatives));
                    let mut rows: Vec<u32> = Vec::with_capacity(dsts.capacity());
                    let mut targets: Vec<f32> = Vec::with_capacity(dsts.capacity());
                    for (k, &v) in step_nodes.iter().enumerate() {
                        rows.push(k as u32);
                        dsts.push(v);
                        targets.push(1.0);
                        for _ in 0..self.negatives {
                            rows.push(k as u32);
                            let mut neg = noise.sample(&mut rng);
                            if neg == v {
                                neg = rng.gen_range(0..n as u32);
                            }
                            dsts.push(neg);
                            targets.push(0.0);
                        }
                    }
                    let hg = tape.gather_rows(h, Rc::new(rows));
                    let og = tape.gather_rows(vars[gp.out_emb], Rc::new(dsts));
                    let logits = tape.rows_dot(hg, og);
                    let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                    let bce = tape.bce_with_logits(logits, t);
                    loss_terms.push(tape.mean(bce));
                }
                let mut loss = loss_terms[0];
                for &term in &loss_terms[1..] {
                    loss = tape.add(loss, term);
                }
                tape.backward(loss);
                let grads = params.collect_grads(&tape, &vars);
                adam.step(&mut params, &grads);
            }
        }

        // Node embedding = mean encoder hidden state over the node's walk
        // positions (forward pass only).
        let mut sums = Matrix::zeros(n, self.dim);
        let mut counts = vec![0u32; n];
        for chunk in walks.chunks(self.batch_size) {
            let b = chunk.len();
            let mut tape = Tape::new();
            let vars = params.attach(&mut tape);
            let mut h = tape.constant(Matrix::zeros(b, self.dim));
            for step in 0..self.walk_length {
                let step_nodes: Vec<NodeId> = chunk.iter().map(|w| w[step]).collect();
                let x = self.project_step(&mut tape, &vars, &gp, graph, &step_nodes);
                h = self.gru_step(&mut tape, &vars, &gp, x, h);
                let h_val = tape.value(h);
                for (k, &v) in step_nodes.iter().enumerate() {
                    for (o, &x) in sums.row_mut(v as usize).iter_mut().zip(h_val.row(k)) {
                        *o += x;
                    }
                    counts[v as usize] += 1;
                }
            }
        }
        for (v, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for x in sums.row_mut(v) {
                    *x *= inv;
                }
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    fn quick() -> Stne {
        Stne {
            dim: 16,
            input_proj: 16,
            walks_per_node: 2,
            walk_length: 8,
            epochs: 4,
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn stne_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let emb = quick().embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("stne");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        // STNE preserves mostly local features (the paper's Table 4 shows
        // low STNE NMI); require clear above-noise signal only.
        assert!(score > 0.05, "nmi {score}");
    }

    #[test]
    fn deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(50, 2, 0.3, 0.03, 16, &mut rng);
        let s = Stne { epochs: 2, ..quick() };
        assert_eq!(s.embed(&g), s.embed(&g));
    }

    #[test]
    fn gru_recurrence_gradients_flow() {
        // A two-step unrolled GRU must deliver gradient to the input
        // projection (tests BPTT through the tape).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = planted_partition(20, 2, 0.4, 0.1, 8, &mut rng);
        let s = quick();
        let (mut params, gp) = s.build_params(20, 8, &mut rng);
        let mut tape = Tape::new();
        let vars = params.attach(&mut tape);
        let mut h = tape.constant(Matrix::zeros(3, 16));
        for step_nodes in [&[0u32, 1, 2][..], &[3, 4, 5][..]] {
            let x = s.project_step(&mut tape, &vars, &gp, &g, step_nodes);
            h = s.gru_step(&mut tape, &vars, &gp, x, h);
        }
        let sq = tape.sqr(h);
        let loss = tape.sum(sq);
        tape.backward(loss);
        let grads = params.collect_grads(&tape, &vars);
        let w_in_grad = &grads[gp.w_in];
        assert!(w_in_grad.norm() > 0.0, "no gradient reached the input projection");
        let uz_grad = &grads[gp.uz];
        assert!(uz_grad.norm() > 0.0, "no gradient reached the recurrent weights");
        let _ = &mut params;
    }
}
