//! GraphSAGE with mean aggregation (Hamilton et al., 2017), trained
//! unsupervised: two mean-aggregation layers over node features, with the
//! walk-based positive-pair / negative-sampling objective from the paper
//! (`−log σ(z_u·z_v) − Q·E[log σ(−z_u·z_neg)]`).

use std::rc::Rc;
use std::sync::Arc;

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::{Adam, Matrix, Params, SparseMatrix, Tape, Var};
use coane_walks::{WalkConfig, Walker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{unigram_table, walk_pairs, Embedder};
use crate::gae::attrs_as_sparse;

/// GraphSAGE-mean hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct GraphSage {
    /// Hidden width of the first layer.
    pub hidden: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Training epochs (full-batch encoder, sampled pairs).
    pub epochs: usize,
    /// Positive pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphSage {
    fn default() -> Self {
        Self {
            hidden: 256,
            dim: 128,
            epochs: 60,
            pairs_per_epoch: 2048,
            negatives: 5,
            lr: 0.01,
            seed: 42,
        }
    }
}

/// Row-stochastic mean aggregator `P = D̃^{-1}(A + I)`.
fn mean_aggregator(graph: &AttributedGraph) -> SparseMatrix {
    let n = graph.num_nodes();
    let mut triplets = Vec::with_capacity(graph.num_edges() * 2 + n);
    for v in 0..n as NodeId {
        let deg = graph.degree(v) as f32 + 1.0;
        triplets.push((v as usize, v as usize, 1.0 / deg));
        for &u in graph.neighbors_of(v) {
            triplets.push((v as usize, u as usize, 1.0 / deg));
        }
    }
    SparseMatrix::from_triplets(n, n, triplets)
}

impl GraphSage {
    fn encode(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        x: &Arc<SparseMatrix>,
        p: &Arc<SparseMatrix>,
    ) -> Var {
        // Layer 1: ReLU(P · X · W0); layer 2: P · H1 · W1.
        let xw = tape.spmm(Arc::clone(x), vars[0]);
        let h1 = tape.spmm(Arc::clone(p), xw);
        let h1 = tape.relu(h1);
        let hw = tape.matmul(h1, vars[1]);
        tape.spmm(Arc::clone(p), hw)
    }
}

impl Embedder for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5A6E);
        let x = Arc::new(attrs_as_sparse(graph));
        let p = Arc::new(mean_aggregator(graph));
        let mut params = Params::new();
        params.add("w0", coane_nn::init::xavier_uniform(graph.attr_dim(), self.hidden, &mut rng));
        params.add("w1", coane_nn::init::xavier_uniform(self.hidden, self.dim, &mut rng));

        // Positive pairs from short uniform walks (GraphSAGE's unsupervised
        // objective uses walk co-occurrence).
        let walker = Walker::new(
            graph,
            WalkConfig { walks_per_node: 2, walk_length: 10, p: 1.0, q: 1.0, seed: self.seed },
        );
        let walks = walker.generate_all(crate::common::worker_threads());
        let pairs = walk_pairs(&walks, 2);
        if pairs.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let noise = unigram_table(&walks, n);

        let mut adam = Adam::new(self.lr);
        use rand::Rng;
        for _ in 0..self.epochs {
            let mut tape = Tape::new();
            let vars = params.attach(&mut tape);
            let z = self.encode(&mut tape, &vars, &x, &p);
            let m = self.pairs_per_epoch.min(pairs.len());
            let mut us = Vec::with_capacity(m * (1 + self.negatives));
            let mut vs = Vec::with_capacity(us.capacity());
            let mut targets = Vec::with_capacity(us.capacity());
            for _ in 0..m {
                let &(u, v) = &pairs[rng.gen_range(0..pairs.len())];
                us.push(u);
                vs.push(v);
                targets.push(1.0f32);
                for _ in 0..self.negatives {
                    us.push(u);
                    vs.push(noise.sample(&mut rng));
                    targets.push(0.0f32);
                }
            }
            let zu = tape.gather_rows(z, Rc::new(us));
            let zv = tape.gather_rows(z, Rc::new(vs));
            let logits = tape.rows_dot(zu, zv);
            let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
            let bce = tape.bce_with_logits(logits, t);
            let loss = tape.mean(bce);
            tape.backward(loss);
            let grads = params.collect_grads(&tape, &vars);
            adam.step(&mut params, &grads);
        }
        let mut tape = Tape::new();
        let vars = params.attach(&mut tape);
        let z = self.encode(&mut tape, &vars, &x, &p);
        tape.value(z).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    #[test]
    fn sage_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let sage = GraphSage { hidden: 32, dim: 16, epochs: 40, ..Default::default() };
        let emb = sage.embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("sage");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        assert!(score > 0.2, "nmi {score}");
    }

    #[test]
    fn aggregator_rows_sum_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(30, 2, 0.3, 0.05, 10, &mut rng);
        let p = mean_aggregator(&g);
        for i in 0..30 {
            let (_, vals) = p.row(i);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }
}
