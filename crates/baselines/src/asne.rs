//! ASNE (Liao et al., 2018): attributed social network embedding. Each node
//! has a free structural id-embedding and an attribute embedding obtained by
//! a linear transform of its features; both are concatenated and passed
//! through an MLP, and the result is trained to predict graph neighbours via
//! negative sampling — preserving structural and attribute proximity jointly.

use std::rc::Rc;
use std::sync::Arc;

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::layers::{Activation, Mlp};
use coane_nn::{Adam, Matrix, Params, Tape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{degree_table, Embedder};
use crate::gae::attrs_as_sparse;

/// ASNE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Asne {
    /// Width of the free structural id embedding.
    pub id_dim: usize,
    /// Width of the transformed attribute embedding.
    pub attr_dim: usize,
    /// Final embedding dimensionality (MLP output).
    pub dim: usize,
    /// Training epochs over the edge list.
    pub epochs: usize,
    /// Negative samples per edge.
    pub negatives: usize,
    /// Edge minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Asne {
    fn default() -> Self {
        Self {
            id_dim: 64,
            attr_dim: 64,
            dim: 128,
            epochs: 10,
            negatives: 5,
            batch_size: 512,
            lr: 0.005,
            seed: 42,
        }
    }
}

impl Embedder for Asne {
    fn name(&self) -> &'static str {
        "ASNE"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let d = graph.attr_dim();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA5E);
        let x = Arc::new(attrs_as_sparse(graph));

        let mut params = Params::new();
        let id_emb = params.add("id_emb", coane_nn::init::xavier_uniform(n, self.id_dim, &mut rng));
        let w_attr =
            params.add("w_attr", coane_nn::init::xavier_uniform(d, self.attr_dim, &mut rng));
        let mlp = Mlp::new(
            &mut params,
            "mlp",
            &[self.id_dim + self.attr_dim, self.dim, self.dim],
            Activation::Relu,
            &mut rng,
        );
        let out_emb = params.add("out_emb", coane_nn::init::xavier_uniform(n, self.dim, &mut rng));

        // Directed edge list (both orientations) as training pairs.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(graph.num_edges() * 2);
        for (u, v, _) in graph.edges() {
            edges.push((u, v));
            edges.push((v, u));
        }
        if edges.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let noise = degree_table(graph);
        let mut adam = Adam::new(self.lr);
        use rand::Rng;
        for _ in 0..self.epochs {
            edges.shuffle(&mut rng);
            for chunk in edges.chunks(self.batch_size) {
                // Sample all targets (positive + negatives per edge).
                let mut srcs: Vec<u32> = Vec::with_capacity(chunk.len() * (1 + self.negatives));
                let mut dsts: Vec<u32> = Vec::with_capacity(srcs.capacity());
                let mut targets: Vec<f32> = Vec::with_capacity(srcs.capacity());
                for &(u, v) in chunk {
                    srcs.push(u);
                    dsts.push(v);
                    targets.push(1.0);
                    for _ in 0..self.negatives {
                        srcs.push(u);
                        let mut neg = noise.sample(&mut rng);
                        if neg == u {
                            neg = rng.gen_range(0..n as u32);
                        }
                        dsts.push(neg);
                        targets.push(0.0);
                    }
                }
                let mut tape = Tape::new();
                let vars = params.attach(&mut tape);
                // Source representation: [id_emb(u) | X_u · W_attr] → MLP.
                let src_rc = Rc::new(srcs);
                let ids = tape.gather_rows(vars[id_emb.index()], Rc::clone(&src_rc));
                let attr_all = tape.spmm(Arc::clone(&x), vars[w_attr.index()]);
                let attrs = tape.gather_rows(attr_all, src_rc);
                let h = tape.concat_cols(ids, attrs);
                let zu = mlp.forward(&mut tape, &vars, h);
                let zv = tape.gather_rows(vars[out_emb.index()], Rc::new(dsts));
                let logits = tape.rows_dot(zu, zv);
                let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                let bce = tape.bce_with_logits(logits, t);
                let loss = tape.mean(bce);
                tape.backward(loss);
                let grads = params.collect_grads(&tape, &vars);
                adam.step(&mut params, &grads);
            }
        }
        // Final embeddings: forward every node through the encoder.
        let mut tape = Tape::new();
        let vars = params.attach(&mut tape);
        let all: Vec<u32> = (0..n as u32).collect();
        let ids = tape.gather_rows(vars[id_emb.index()], Rc::new(all.clone()));
        let attr_all = tape.spmm(Arc::clone(&x), vars[w_attr.index()]);
        let attrs = tape.gather_rows(attr_all, Rc::new(all));
        let h = tape.concat_cols(ids, attrs);
        let z = mlp.forward(&mut tape, &vars, h);
        tape.value(z).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    #[test]
    fn asne_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let asne = Asne { id_dim: 16, attr_dim: 16, dim: 16, epochs: 8, ..Default::default() };
        let emb = asne.embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("asne");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        // ASNE clusters weakly in the paper too (NMI 0.005–0.165 across its
        // Table 4 datasets); require only a clearly-above-noise signal.
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        assert!(score > 0.02, "nmi {score}");
    }

    #[test]
    fn deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(50, 2, 0.3, 0.03, 16, &mut rng);
        let asne = Asne { id_dim: 8, attr_dim: 8, dim: 8, epochs: 2, ..Default::default() };
        assert_eq!(asne.embed(&g), asne.embed(&g));
    }
}
