//! Shared baseline machinery: the [`Embedder`] trait, walk-window pair
//! extraction, and the word2vec unigram noise table.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::Matrix;
use coane_walks::{AliasTable, Walk};

/// A node-embedding method: trains on an attributed graph and yields an
/// `(n × dim)` embedding matrix. Implemented by every baseline and used by
/// the benchmark harness to iterate methods uniformly.
pub trait Embedder {
    /// Human-readable method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;
    /// Trains and returns the embedding matrix.
    fn embed(&self, graph: &AttributedGraph) -> Matrix;
    /// [`Embedder::embed`] with telemetry: the run is timed under a scope
    /// named after the method. Walk-based methods override this to also
    /// time their internal phases (walk generation, SGNS training).
    /// Telemetry is observation-only — the embedding is bit-identical to
    /// [`Embedder::embed`] for any `obs` state.
    fn embed_observed(&self, graph: &AttributedGraph, obs: &coane_obs::Obs) -> Matrix {
        let _scope = obs.scope(self.name());
        self.embed(graph)
    }
}

/// Worker threads for baseline walk generation and training: the
/// process-wide [`coane_nn::pool`] setting, so the single
/// `CoaneConfig::threads` knob (or a direct `pool::set_threads` call)
/// governs the baselines too. Every baseline is bit-deterministic for any
/// value.
pub fn worker_threads() -> usize {
    coane_nn::pool::threads()
}

/// Skip-gram training pairs `(center, context)` from walk windows of radius
/// `window` (both directions, excluding self-pairs).
pub fn walk_pairs(walks: &[Walk], window: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &center) in walk.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(walk.len());
            for &ctx in &walk[lo..hi] {
                if ctx != center {
                    pairs.push((center, ctx));
                }
            }
        }
    }
    pairs
}

/// Word2vec-style unigram noise table: probabilities proportional to
/// `count(v)^{3/4}`, with a small floor so every node is sampleable.
pub fn unigram_table(walks: &[Walk], n: usize) -> AliasTable {
    let mut counts = vec![0.0f64; n];
    for walk in walks {
        for &v in walk {
            counts[v as usize] += 1.0;
        }
    }
    let weights: Vec<f64> = counts.iter().map(|&c| c.max(0.1).powf(0.75)).collect();
    AliasTable::new(&weights)
}

/// Noise table proportional to degree^{3/4} (for edge-based methods like
/// LINE that never materialize walks).
pub fn degree_table(graph: &AttributedGraph) -> AliasTable {
    let weights: Vec<f64> = (0..graph.num_nodes() as NodeId)
        .map(|v| (graph.degree(v) as f64).max(0.1).powf(0.75))
        .collect();
    AliasTable::new(&weights)
}

/// L2-normalizes every row in place (zero rows are left untouched).
/// Embedding methods trained with dot-product objectives often benefit from
/// normalized outputs in downstream cosine-based evaluation.
pub fn l2_normalize_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in row {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pairs_within_window() {
        let walks = vec![vec![0, 1, 2, 3]];
        let pairs = walk_pairs(&walks, 1);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(1, 2)));
        assert!(!pairs.contains(&(0, 2)), "outside window");
        assert!(!pairs.contains(&(1, 1)), "self pair");
    }

    #[test]
    fn pairs_symmetric_counts() {
        let walks = vec![vec![5, 6, 5, 6]];
        let pairs = walk_pairs(&walks, 2);
        let fwd = pairs.iter().filter(|&&p| p == (5, 6)).count();
        let bwd = pairs.iter().filter(|&&p| p == (6, 5)).count();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn unigram_table_prefers_frequent() {
        let walks = vec![vec![0; 50], vec![1; 2]];
        let table = unigram_table(&walks, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut hits = [0usize; 3];
        for _ in 0..10_000 {
            hits[table.sample(&mut rng) as usize] += 1;
        }
        assert!(hits[0] > hits[1]);
        assert!(hits[1] > hits[2]); // floor keeps node 2 alive but rare
        assert!(hits[2] > 0);
    }

    #[test]
    fn degree_table_covers_all_nodes() {
        let mut b = GraphBuilder::new(4, 4);
        b.add_edges(&[(0, 1), (0, 2), (0, 3)]);
        let g = b.with_attrs(NodeAttributes::identity(4)).build();
        let table = degree_table(&g);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        l2_normalize_rows(&mut m);
        assert!((m.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((m.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }
}
