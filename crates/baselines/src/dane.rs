//! DANE-lite (after Gao & Huang, IJCAI 2018): deep attributed network
//! embedding with two autoencoders — one over high-order structural
//! proximity rows (here: rows of the symmetric normalized adjacency), one
//! over attribute rows — whose bottleneck codes are pushed to be consistent.
//! The final embedding concatenates the two codes.
//!
//! "Lite" relative to the original: consistency is an MSE term rather than a
//! likelihood over all pairs, and first-order proximity terms are folded
//! into the reconstruction losses. The paper's own comparison excludes
//! DANE's pre-training stage, as noted in its §4.1 footnote.

use coane_graph::ops::normalized_adjacency;
use coane_graph::{AttributedGraph, NodeId};
use coane_nn::{Adam, Matrix, Params, SparseMatrix, Tape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::Embedder;
use crate::gae::{attrs_as_sparse, AttrAutoencoder};

/// DANE-lite hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Dane {
    /// Hidden width of both autoencoders.
    pub hidden: usize,
    /// Final embedding dimensionality (half per autoencoder).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Node minibatch size.
    pub batch_size: usize,
    /// Weight of the structure/attribute consistency term.
    pub consistency: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Dane {
    fn default() -> Self {
        Self {
            hidden: 128,
            dim: 128,
            epochs: 25,
            batch_size: 256,
            consistency: 1.0,
            lr: 0.005,
            seed: 42,
        }
    }
}

/// Gathers dense rows of a sparse matrix.
fn gather_sparse_rows(m: &SparseMatrix, rows: &[NodeId]) -> Matrix {
    let cols = m.shape().1;
    let mut out = Matrix::zeros(rows.len(), cols);
    for (r, &v) in rows.iter().enumerate() {
        let (idx, val) = m.row(v as usize);
        for (&j, &x) in idx.iter().zip(val) {
            out.set(r, j as usize, x);
        }
    }
    out
}

/// Sparse row-submatrix (exercised by tests; available for sparse-input
/// encoder variants).
#[cfg_attr(not(test), allow(dead_code))]
fn sparse_row_subset(m: &SparseMatrix, rows: &[NodeId]) -> SparseMatrix {
    let cols = m.shape().1;
    let mut triplets = Vec::new();
    for (r, &v) in rows.iter().enumerate() {
        let (idx, val) = m.row(v as usize);
        for (&j, &x) in idx.iter().zip(val) {
            triplets.push((r, j as usize, x));
        }
    }
    SparseMatrix::from_triplets(rows.len(), cols, triplets)
}

impl Embedder for Dane {
    fn name(&self) -> &'static str {
        "DANE"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        assert!(self.dim.is_multiple_of(2), "DANE dim must be even");
        let half = self.dim / 2;
        let n = graph.num_nodes();
        let d = graph.attr_dim();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xDA0E);

        // Structural proximity rows: normalized adjacency (n columns).
        let a = normalized_adjacency(graph);
        let s_mat = SparseMatrix::from_csr(n, n, a.indptr, a.indices, a.values);
        let x_mat = attrs_as_sparse(graph);

        let mut params = Params::new();
        let ae_s = AttrAutoencoder::new(&mut params, "s", n, self.hidden, half, &mut rng);
        let ae_a = AttrAutoencoder::new(&mut params, "a", d, self.hidden, half, &mut rng);

        let mut adam = Adam::new(self.lr);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch_size) {
                // The batch's structural / attribute rows are densified —
                // batch-sized, so small even at Pubmed/Flickr scale.
                let s_dense = gather_sparse_rows(&s_mat, chunk);
                let x_dense = gather_sparse_rows(&x_mat, chunk);

                let mut tape = Tape::new();
                let vars = params.attach(&mut tape);
                let s_in = tape.constant(s_dense.clone());
                let x_in = tape.constant(x_dense.clone());
                let zs = ae_s.encoder.forward(&mut tape, &vars, s_in);
                let za = ae_a.encoder.forward(&mut tape, &vars, x_in);
                let s_hat = ae_s.decoder.forward(&mut tape, &vars, zs);
                let a_hat = ae_a.decoder.forward(&mut tape, &vars, za);
                let s_target = tape.constant(s_dense);
                let a_target = tape.constant(x_dense);
                let l_s = tape.mse(s_hat, s_target);
                let l_a = tape.mse(a_hat, a_target);
                let diff = tape.sub(zs, za);
                let diff2 = tape.sqr(diff);
                let l_c0 = tape.mean(diff2);
                let l_c = tape.scale(l_c0, self.consistency);
                let l_sa = tape.add(l_s, l_a);
                let loss = tape.add(l_sa, l_c);
                tape.backward(loss);
                let grads = params.collect_grads(&tape, &vars);
                adam.step(&mut params, &grads);
            }
        }

        // Final embedding: concat of both codes over all nodes (batched).
        let mut out = Matrix::zeros(n, self.dim);
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        for chunk in all.chunks(self.batch_size.max(64)) {
            let s_dense = gather_sparse_rows(&s_mat, chunk);
            let x_dense = gather_sparse_rows(&x_mat, chunk);
            let mut tape = Tape::new();
            let vars = params.attach(&mut tape);
            let s_in = tape.constant(s_dense);
            let x_in = tape.constant(x_dense);
            let zs = ae_s.encoder.forward(&mut tape, &vars, s_in);
            let za = ae_a.encoder.forward(&mut tape, &vars, x_in);
            let z = tape.concat_cols(zs, za);
            let z_val = tape.value(z);
            for (k, &v) in chunk.iter().enumerate() {
                out.row_mut(v as usize).copy_from_slice(z_val.row(k));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    #[test]
    fn dane_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let dane = Dane { hidden: 32, dim: 16, epochs: 15, ..Default::default() };
        let emb = dane.embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("dane");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        assert!(score > 0.15, "nmi {score}");
    }

    #[test]
    fn sparse_row_subset_matches_dense_gather() {
        let m = SparseMatrix::from_triplets(3, 4, vec![(0, 1, 2.0), (2, 3, 1.0)]);
        let sub = sparse_row_subset(&m, &[2, 0]);
        let dense = gather_sparse_rows(&m, &[2, 0]);
        assert_eq!(sub.to_dense(), dense);
        assert_eq!(dense.get(0, 3), 1.0);
        assert_eq!(dense.get(1, 1), 2.0);
    }
}
