//! ARGA / ARVGA (Pan et al., IJCAI 2018): adversarially regularized graph
//! autoencoder. A GAE/VGAE encoder–decoder is trained jointly with a
//! discriminator MLP that tries to tell embedding rows apart from standard
//! Gaussian samples; the encoder is additionally rewarded for fooling the
//! discriminator, which regularizes the embedding distribution.
//!
//! Training alternates, as in the original:
//! 1. **Discriminator step** — maximize
//!    `log D(ε) + log(1 − D(Z))` with `Z` detached,
//! 2. **Encoder step** — minimize reconstruction (+ KL for ARVGA) plus the
//!    generator term `−log D(Z)` with the discriminator frozen.

use std::rc::Rc;
use std::sync::Arc;

use coane_graph::split::sample_non_edges;
use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::normal;
use coane_nn::layers::{Activation, Mlp};
use coane_nn::{Adam, Matrix, Params, SparseMatrix, Tape, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::Embedder;
use crate::gae::{attrs_as_sparse, norm_adj_as_sparse};

/// ARGA/ARVGA hyperparameters (paper setting: encoder 256–128,
/// discriminator 128–512(–1); we default to a 64-unit hidden layer scaled by
/// `disc_hidden`).
#[derive(Clone, Copy, Debug)]
pub struct Arga {
    /// Variational encoder (ARVGA) or deterministic (ARGA).
    pub variational: bool,
    /// Hidden width of the first GCN layer.
    pub hidden: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Hidden width of the discriminator MLP.
    pub disc_hidden: usize,
    /// Training epochs (one discriminator + one encoder step each).
    pub epochs: usize,
    /// Adam learning rate (both players).
    pub lr: f32,
    /// Weight of the adversarial term in the encoder loss.
    pub adv_weight: f32,
    /// KL weight (ARVGA only).
    pub kl_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Arga {
    fn default() -> Self {
        Self {
            variational: false,
            hidden: 256,
            dim: 128,
            disc_hidden: 512,
            epochs: 120,
            lr: 0.01,
            adv_weight: 0.2,
            kl_weight: 1.0,
            seed: 42,
        }
    }
}

struct Encoder {
    w0: usize,
    w1: usize,
    w_logvar: Option<usize>,
}

impl Arga {
    fn encode(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        enc: &Encoder,
        x: &Arc<SparseMatrix>,
        a: &Arc<SparseMatrix>,
    ) -> (Var, Option<Var>) {
        let xw = tape.spmm(Arc::clone(x), vars[enc.w0]);
        let h1 = tape.spmm(Arc::clone(a), xw);
        let h1 = tape.relu(h1);
        let hw = tape.matmul(h1, vars[enc.w1]);
        let mu = tape.spmm(Arc::clone(a), hw);
        let logvar = enc.w_logvar.map(|wl| {
            let lw = tape.matmul(h1, vars[wl]);
            tape.spmm(Arc::clone(a), lw)
        });
        (mu, logvar)
    }
}

impl Embedder for Arga {
    fn name(&self) -> &'static str {
        if self.variational {
            "ARVGA"
        } else {
            "ARGA"
        }
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA46A);
        let x = Arc::new(attrs_as_sparse(graph));
        let a = Arc::new(norm_adj_as_sparse(graph));
        let d = graph.attr_dim();

        // Encoder parameters.
        let mut enc_params = Params::new();
        let enc = Encoder {
            w0: enc_params
                .add("w0", coane_nn::init::xavier_uniform(d, self.hidden, &mut rng))
                .index(),
            w1: enc_params
                .add("w1", coane_nn::init::xavier_uniform(self.hidden, self.dim, &mut rng))
                .index(),
            w_logvar: self.variational.then(|| {
                enc_params
                    .add(
                        "w_logvar",
                        coane_nn::init::xavier_uniform(self.hidden, self.dim, &mut rng),
                    )
                    .index()
            }),
        };
        // Discriminator parameters.
        let mut disc_params = Params::new();
        let disc = Mlp::new(
            &mut disc_params,
            "disc",
            &[self.dim, self.disc_hidden, 1],
            Activation::Relu,
            &mut rng,
        );

        let pos_edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(u, v, _)| (u, v)).collect();
        if pos_edges.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let mut enc_adam = Adam::new(self.lr);
        let mut disc_adam = Adam::new(self.lr);
        let ones = Rc::new(Matrix::full(n, 1, 1.0));
        let zeros = Rc::new(Matrix::full(n, 1, 0.0));

        for _ in 0..self.epochs {
            // ---- 1. current embeddings (detached) for the discriminator ----
            let z_detached = {
                let mut tape = Tape::new();
                let vars = enc_params.attach(&mut tape);
                let (mu, logvar) = self.encode(&mut tape, &vars, &enc, &x, &a);
                let z = self.sample_z(&mut tape, mu, logvar, n, &mut rng);
                tape.value(z).clone()
            };

            // ---- 2. discriminator step ----
            {
                let mut tape = Tape::new();
                let vars = disc_params.attach(&mut tape);
                let real = tape.constant(normal(n, self.dim, 1.0, &mut rng));
                let fake = tape.constant(z_detached.clone());
                let d_real = disc.forward(&mut tape, &vars, real);
                let d_fake = disc.forward(&mut tape, &vars, fake);
                let l_real = tape.bce_with_logits(d_real, Rc::clone(&ones));
                let l_fake = tape.bce_with_logits(d_fake, Rc::clone(&zeros));
                let m_real = tape.mean(l_real);
                let m_fake = tape.mean(l_fake);
                let loss = tape.add(m_real, m_fake);
                tape.backward(loss);
                let grads = disc_params.collect_grads(&tape, &vars);
                disc_adam.step(&mut disc_params, &grads);
            }

            // ---- 3. encoder step: reconstruction (+ KL) + fool the frozen D ----
            {
                let negs = sample_non_edges(graph, pos_edges.len(), &mut rng);
                let mut tape = Tape::new();
                let enc_vars = enc_params.attach(&mut tape);
                // Discriminator weights enter as constants → no grads for D.
                let disc_vars: Vec<Var> =
                    disc_params.iter().map(|(_, _, m)| tape.constant(m.clone())).collect();
                let (mu, logvar) = self.encode(&mut tape, &enc_vars, &enc, &x, &a);
                let z = self.sample_z(&mut tape, mu, logvar, n, &mut rng);

                // reconstruction via sampled edges
                let mut us = Vec::with_capacity(pos_edges.len() * 2);
                let mut vs = Vec::with_capacity(us.capacity());
                let mut targets = Vec::with_capacity(us.capacity());
                for &(uu, vv) in &pos_edges {
                    us.push(uu);
                    vs.push(vv);
                    targets.push(1.0f32);
                }
                for &(uu, vv) in &negs {
                    us.push(uu);
                    vs.push(vv);
                    targets.push(0.0f32);
                }
                let zu = tape.gather_rows(z, Rc::new(us));
                let zv = tape.gather_rows(z, Rc::new(vs));
                let logits = tape.rows_dot(zu, zv);
                let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                let bce = tape.bce_with_logits(logits, t);
                let mut loss = tape.mean(bce);

                if let Some(lv) = logvar {
                    let mu2 = tape.sqr(mu);
                    let evar = tape.exp(lv);
                    let one_plus = tape.add_const(lv, 1.0);
                    let t1 = tape.sub(one_plus, mu2);
                    let t2 = tape.sub(t1, evar);
                    let ksum = tape.sum(t2);
                    let kl = tape.scale(ksum, -0.5 * self.kl_weight / (n as f32 * self.dim as f32));
                    loss = tape.add(loss, kl);
                }

                // generator term: make D call z "real"
                let d_fake = disc.forward(&mut tape, &disc_vars, z);
                let l_gen = tape.bce_with_logits(d_fake, Rc::clone(&ones));
                let m_gen = tape.mean(l_gen);
                let adv = tape.scale(m_gen, self.adv_weight);
                let total = tape.add(loss, adv);
                tape.backward(total);
                let grads = enc_params.collect_grads(&tape, &enc_vars);
                enc_adam.step(&mut enc_params, &grads);
            }
        }

        // Deterministic μ as the final embedding.
        let mut tape = Tape::new();
        let vars = enc_params.attach(&mut tape);
        let (mu, _) = self.encode(&mut tape, &vars, &enc, &x, &a);
        tape.value(mu).clone()
    }
}

impl Arga {
    fn sample_z(
        &self,
        tape: &mut Tape,
        mu: Var,
        logvar: Option<Var>,
        n: usize,
        rng: &mut ChaCha8Rng,
    ) -> Var {
        match logvar {
            None => mu,
            Some(lv) => {
                let half = tape.scale(lv, 0.5);
                let std = tape.exp(half);
                let eps = tape.constant(normal(n, self.dim, 1.0, rng));
                let noise = tape.mul(std, eps);
                tape.add(mu, noise)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    fn quick(variational: bool) -> Arga {
        Arga { variational, hidden: 32, dim: 16, disc_hidden: 32, epochs: 50, ..Default::default() }
    }

    #[test]
    fn arga_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let emb = quick(false).embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("arga");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        assert!(score > 0.2, "nmi {score}");
    }

    #[test]
    fn arvga_runs_and_is_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(80, 2, 0.25, 0.02, 30, &mut rng);
        let emb = quick(true).embed(&g);
        emb.assert_finite("arvga");
        assert_eq!(emb.shape(), (80, 16));
    }

    #[test]
    fn adversarial_term_regularizes_scale() {
        // With a strong adversarial weight the embedding distribution should
        // stay near the standard Gaussian's scale rather than blowing up.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = planted_partition(80, 2, 0.25, 0.02, 30, &mut rng);
        let strong = Arga { adv_weight: 2.0, ..quick(false) }.embed(&g);
        let rms = (strong.as_slice().iter().map(|&v| (v as f64).powi(2)).sum::<f64>()
            / strong.len() as f64)
            .sqrt();
        assert!(rms < 10.0, "embedding scale exploded: rms {rms}");
    }

    #[test]
    fn names() {
        assert_eq!(quick(false).name(), "ARGA");
        assert_eq!(quick(true).name(), "ARVGA");
    }
}
