//! Skip-gram with negative sampling (SGNS) over random walks — the engine
//! behind the DeepWalk and node2vec baselines. Hand-coded SGD in the
//! word2vec style (per-pair updates, linearly decaying learning rate), which
//! is much faster than taping millions of tiny graphs.

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::uniform;
use coane_nn::tape::stable_sigmoid;
use coane_nn::Matrix;
use coane_walks::{WalkConfig, Walker};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{unigram_table, walk_pairs, Embedder};

/// SGNS hyperparameters shared by DeepWalk and node2vec.
#[derive(Clone, Copy, Debug)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius (paper setting: 10).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Walks per node (paper setting for baselines: 10).
    pub walks_per_node: usize,
    /// Walk length (paper setting: 80).
    pub walk_length: usize,
    /// Passes over the pair list.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to 1e-4.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            window: 10,
            negatives: 5,
            walks_per_node: 10,
            walk_length: 80,
            epochs: 2,
            lr: 0.025,
            seed: 42,
        }
    }
}

/// Trains SGNS embeddings from pre-generated walks. Returns the input
/// ("center") embedding matrix, the standard word2vec output.
pub fn train_skipgram(walks: &[Vec<NodeId>], n: usize, cfg: &SkipGramConfig) -> Matrix {
    train_skipgram_obs(walks, n, cfg, &coane_obs::Obs::disabled())
}

/// [`train_skipgram`] with telemetry: the SGD pass runs under a `train`
/// timing scope and records pair/step counters. Telemetry is
/// observation-only — the embedding is bit-identical for any `obs` state.
#[allow(clippy::needless_range_loop)] // indexed form is clearer in this kernel
pub fn train_skipgram_obs(
    walks: &[Vec<NodeId>],
    n: usize,
    cfg: &SkipGramConfig,
    obs: &coane_obs::Obs,
) -> Matrix {
    let _scope = obs.scope("train");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5697);
    let bound = 0.5 / cfg.dim as f32;
    let mut emb_in = uniform(n, cfg.dim, -bound, bound, &mut rng);
    let mut emb_out = Matrix::zeros(n, cfg.dim);
    let noise = unigram_table(walks, n);
    let mut pairs = walk_pairs(walks, cfg.window);
    if obs.is_enabled() {
        obs.add("sgns/pairs", pairs.len() as u64);
        obs.add("sgns/steps", (pairs.len() * cfg.epochs) as u64);
    }
    if pairs.is_empty() {
        return emb_in;
    }
    let total_steps = (pairs.len() * cfg.epochs) as f32;
    let mut step = 0usize;
    let mut grad_center = vec![0.0f32; cfg.dim];
    for _ in 0..cfg.epochs {
        pairs.shuffle(&mut rng);
        for &(center, context) in &pairs {
            let lr = (cfg.lr * (1.0 - step as f32 / total_steps)).max(1e-4);
            step += 1;
            grad_center.iter_mut().for_each(|g| *g = 0.0);
            // positive + negatives share the same update form:
            // err = σ(dot) − label.
            for sample in 0..=cfg.negatives {
                let (target, label) =
                    if sample == 0 { (context, 1.0f32) } else { (noise.sample(&mut rng), 0.0f32) };
                if target == center {
                    continue;
                }
                let ci = center as usize;
                let ti = target as usize;
                let dot: f32 =
                    emb_in.row(ci).iter().zip(emb_out.row(ti)).map(|(&a, &b)| a * b).sum();
                let err = stable_sigmoid(dot) - label;
                for k in 0..cfg.dim {
                    grad_center[k] += err * emb_out.get(ti, k);
                }
                for k in 0..cfg.dim {
                    let g = err * emb_in.get(ci, k);
                    let v = emb_out.get(ti, k) - lr * g;
                    emb_out.set(ti, k, v);
                }
            }
            let ci = center as usize;
            for (k, &g) in grad_center.iter().enumerate() {
                let v = emb_in.get(ci, k) - lr * g;
                emb_in.set(ci, k, v);
            }
        }
    }
    emb_in
}

/// DeepWalk (Perozzi et al., 2014): uniform random walks + SGNS.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeepWalk {
    /// SGNS configuration.
    pub config: SkipGramConfig,
}

impl Embedder for DeepWalk {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        self.embed_observed(graph, &coane_obs::Obs::disabled())
    }

    fn embed_observed(&self, graph: &AttributedGraph, obs: &coane_obs::Obs) -> Matrix {
        let _scope = obs.scope(self.name());
        let walker = Walker::new(
            graph,
            WalkConfig {
                walks_per_node: self.config.walks_per_node,
                walk_length: self.config.walk_length,
                p: 1.0,
                q: 1.0,
                seed: self.config.seed,
            },
        );
        let walks = walker.generate_all_obs(crate::common::worker_threads(), obs);
        train_skipgram_obs(&walks, graph.num_nodes(), &self.config, obs)
    }
}

/// node2vec (Grover & Leskovec, 2016): biased second-order walks + SGNS.
/// The paper compares with `p = q = 1`, which makes the walk distribution
/// identical to DeepWalk's but keeps node2vec's sampling machinery.
#[derive(Clone, Copy, Debug)]
pub struct Node2Vec {
    /// SGNS configuration.
    pub config: SkipGramConfig,
    /// Return parameter.
    pub p: f32,
    /// In-out parameter.
    pub q: f32,
}

impl Default for Node2Vec {
    fn default() -> Self {
        Self { config: SkipGramConfig::default(), p: 1.0, q: 1.0 }
    }
}

impl Embedder for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        self.embed_observed(graph, &coane_obs::Obs::disabled())
    }

    fn embed_observed(&self, graph: &AttributedGraph, obs: &coane_obs::Obs) -> Matrix {
        let _scope = obs.scope(self.name());
        let walker = Walker::new(
            graph,
            WalkConfig {
                walks_per_node: self.config.walks_per_node,
                walk_length: self.config.walk_length,
                p: self.p,
                q: self.q,
                seed: self.config.seed,
            },
        );
        let walks = walker.generate_all_obs(crate::common::worker_threads(), obs);
        train_skipgram_obs(&walks, graph.num_nodes(), &self.config, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;

    fn fast_cfg() -> SkipGramConfig {
        SkipGramConfig {
            dim: 16,
            window: 3,
            negatives: 3,
            walks_per_node: 4,
            walk_length: 20,
            epochs: 2,
            ..Default::default()
        }
    }

    fn community_separation(emb: &Matrix, labels: &[u32]) -> (f64, f64) {
        let cos = |a: &[f32], b: &[f32]| coane_nn::sim::cosine(a, b) as f64;
        let (mut same, mut ns, mut diff, mut nd) = (0.0, 0usize, 0.0, 0usize);
        for i in 0..emb.rows() {
            for j in (i + 1)..emb.rows() {
                let c = cos(emb.row(i), emb.row(j));
                if labels[i] == labels[j] {
                    same += c;
                    ns += 1;
                } else {
                    diff += c;
                    nd += 1;
                }
            }
        }
        (same / ns as f64, diff / nd as f64)
    }

    #[test]
    fn deepwalk_separates_planted_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(150, 3, 0.15, 0.005, 64, &mut rng);
        let emb = DeepWalk { config: fast_cfg() }.embed(&g);
        assert_eq!(emb.shape(), (150, 16));
        emb.assert_finite("deepwalk");
        let (intra, inter) = community_separation(&emb, g.labels().unwrap());
        assert!(intra > inter + 0.05, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn node2vec_biased_walk_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = planted_partition(100, 2, 0.15, 0.01, 32, &mut rng);
        let emb = Node2Vec { config: fast_cfg(), p: 0.5, q: 2.0 }.embed(&g);
        emb.assert_finite("node2vec");
        let (intra, inter) = community_separation(&emb, g.labels().unwrap());
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(60, 2, 0.2, 0.02, 16, &mut rng);
        let e1 = DeepWalk { config: fast_cfg() }.embed(&g);
        let e2 = DeepWalk { config: fast_cfg() }.embed(&g);
        assert_eq!(e1, e2);
    }

    #[test]
    fn empty_walk_pairs_returns_init() {
        // A graph of isolated nodes produces singleton walks → no pairs.
        let g = {
            let mut b = coane_graph::GraphBuilder::new(5, 5);
            b.add_edge(0, 1, 1.0); // one edge so builder is happy
            b.with_attrs(coane_graph::NodeAttributes::identity(5)).build()
        };
        let cfg = SkipGramConfig { window: 0, ..fast_cfg() };
        let walker = Walker::new(
            &g,
            WalkConfig { walks_per_node: 1, walk_length: 2, p: 1.0, q: 1.0, seed: 0 },
        );
        let walks = walker.generate_all(1);
        let emb = train_skipgram(&walks, 5, &cfg);
        emb.assert_finite("empty-pair skipgram");
    }
}
