//! GAE and VGAE (Kipf & Welling, 2016): a two-layer GCN encoder with an
//! inner-product decoder. The decoder's dense `σ(ZZᵀ)` reconstruction is
//! trained by edge sampling (all positive edges + an equal number of sampled
//! non-edges per epoch), the standard scalable formulation. VGAE adds
//! Gaussian reparameterization and the KL regularizer.

use std::rc::Rc;
use std::sync::Arc;

use coane_graph::ops::normalized_adjacency;
use coane_graph::split::sample_non_edges;
use coane_graph::{AttributedGraph, NodeId};
use coane_nn::init::normal;
use coane_nn::layers::{Activation, Mlp};
use coane_nn::{Adam, Matrix, Params, SparseMatrix, Tape, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::Embedder;

/// Plain or variational graph auto-encoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaeKind {
    /// Deterministic GAE.
    Plain,
    /// Variational GAE (μ/log σ² heads + KL).
    Variational,
}

/// GAE/VGAE hyperparameters (paper setting: 2 layers, 256–128).
#[derive(Clone, Copy, Debug)]
pub struct Gae {
    /// Plain or variational.
    pub kind: GaeKind,
    /// Hidden width of the first GCN layer.
    pub hidden: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// KL weight (VGAE only).
    pub kl_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Gae {
    fn default() -> Self {
        Self {
            kind: GaeKind::Plain,
            hidden: 256,
            dim: 128,
            epochs: 120,
            lr: 0.01,
            kl_weight: 1.0,
            seed: 42,
        }
    }
}

/// Converts graph attributes to the autograd sparse type.
pub fn attrs_as_sparse(graph: &AttributedGraph) -> SparseMatrix {
    let n = graph.num_nodes();
    let mut triplets = Vec::with_capacity(graph.attrs().nnz());
    for v in 0..n as NodeId {
        let (idx, val) = graph.attrs().row(v);
        for (&a, &x) in idx.iter().zip(val) {
            triplets.push((v as usize, a as usize, x));
        }
    }
    SparseMatrix::from_triplets(n, graph.attr_dim(), triplets)
}

/// Converts the graph's normalized adjacency to the autograd sparse type.
pub fn norm_adj_as_sparse(graph: &AttributedGraph) -> SparseMatrix {
    let a = normalized_adjacency(graph);
    SparseMatrix::from_csr(a.n, a.n, a.indptr, a.indices, a.values)
}

impl Gae {
    fn encode_mu(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        w0: usize,
        w1: usize,
        x: &Arc<SparseMatrix>,
        a: &Arc<SparseMatrix>,
    ) -> Var {
        let xw = tape.spmm(Arc::clone(x), vars[w0]);
        let h1 = tape.spmm(Arc::clone(a), xw);
        let h1 = tape.relu(h1);
        let hw = tape.matmul(h1, vars[w1]);
        tape.spmm(Arc::clone(a), hw)
    }
}

impl Embedder for Gae {
    fn name(&self) -> &'static str {
        match self.kind {
            GaeKind::Plain => "GAE",
            GaeKind::Variational => "VGAE",
        }
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x6AE);
        let x = Arc::new(attrs_as_sparse(graph));
        let a = Arc::new(norm_adj_as_sparse(graph));
        let d = graph.attr_dim();

        let mut params = Params::new();
        let w0 = params.add("w0", coane_nn::init::xavier_uniform(d, self.hidden, &mut rng)).index();
        let w1 = params
            .add("w1", coane_nn::init::xavier_uniform(self.hidden, self.dim, &mut rng))
            .index();
        let w_logvar = (self.kind == GaeKind::Variational).then(|| {
            params
                .add("w_logvar", coane_nn::init::xavier_uniform(self.hidden, self.dim, &mut rng))
                .index()
        });

        let pos_edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(u, v, _)| (u, v)).collect();
        if pos_edges.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let mut adam = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let negs = sample_non_edges(graph, pos_edges.len(), &mut rng);
            let mut tape = Tape::new();
            let vars = params.attach(&mut tape);
            let mu = self.encode_mu(&mut tape, &vars, w0, w1, &x, &a);
            let z = match (self.kind, w_logvar) {
                (GaeKind::Variational, Some(wl)) => {
                    // logvar head shares the first layer.
                    let xw = tape.spmm(Arc::clone(&x), vars[w0]);
                    let h1 = tape.spmm(Arc::clone(&a), xw);
                    let h1 = tape.relu(h1);
                    let hw = tape.matmul(h1, vars[wl]);
                    let logvar = tape.spmm(Arc::clone(&a), hw);
                    // z = μ + ε ⊙ exp(½ logvar)
                    let half_logvar = tape.scale(logvar, 0.5);
                    let std = tape.exp(half_logvar);
                    let eps = tape.constant(normal(n, self.dim, 1.0, &mut rng));
                    let noise = tape.mul(std, eps);
                    let z = tape.add(mu, noise);
                    // KL = −½ Σ(1 + logvar − μ² − e^{logvar}) / n
                    let mu2 = tape.sqr(mu);
                    let evar = tape.exp(logvar);
                    let one_plus = tape.add_const(logvar, 1.0);
                    let t1 = tape.sub(one_plus, mu2);
                    let t2 = tape.sub(t1, evar);
                    let ksum = tape.sum(t2);
                    let kl = tape.scale(ksum, -0.5 * self.kl_weight / (n as f32 * self.dim as f32));
                    Some((z, kl))
                }
                _ => None,
            };
            let (z_final, kl) = match z {
                Some((zv, kl)) => (zv, Some(kl)),
                None => (mu, None),
            };
            // Edge reconstruction loss.
            let mut us: Vec<u32> = Vec::with_capacity(pos_edges.len() * 2);
            let mut vs: Vec<u32> = Vec::with_capacity(us.capacity());
            let mut targets = Vec::with_capacity(us.capacity());
            for &(uu, vv) in &pos_edges {
                us.push(uu);
                vs.push(vv);
                targets.push(1.0f32);
            }
            for &(uu, vv) in &negs {
                us.push(uu);
                vs.push(vv);
                targets.push(0.0f32);
            }
            let zu = tape.gather_rows(z_final, Rc::new(us));
            let zv = tape.gather_rows(z_final, Rc::new(vs));
            let logits = tape.rows_dot(zu, zv);
            let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
            let bce = tape.bce_with_logits(logits, t);
            let recon = tape.mean(bce);
            let loss = match kl {
                Some(k) => tape.add(recon, k),
                None => recon,
            };
            tape.backward(loss);
            let grads = params.collect_grads(&tape, &vars);
            adam.step(&mut params, &grads);
        }
        // Final embedding: deterministic μ.
        let mut tape = Tape::new();
        let vars = params.attach(&mut tape);
        let mu = self.encode_mu(&mut tape, &vars, w0, w1, &x, &a);
        tape.value(mu).clone()
    }
}

/// An MLP attribute autoencoder used as a shared building block by the
/// DANE-lite and ANRL-lite baselines (kept here to avoid a separate crate).
pub struct AttrAutoencoder {
    /// Encoder network.
    pub encoder: Mlp,
    /// Decoder network.
    pub decoder: Mlp,
}

impl AttrAutoencoder {
    /// Builds encoder `in_dim → hidden → out_dim` and mirrored decoder on
    /// `params`.
    pub fn new<R: rand::Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let encoder = Mlp::new(
            params,
            &format!("{name}.enc"),
            &[in_dim, hidden, out_dim],
            Activation::Relu,
            rng,
        );
        let decoder = Mlp::new(
            params,
            &format!("{name}.dec"),
            &[out_dim, hidden, in_dim],
            Activation::Relu,
            rng,
        );
        Self { encoder, decoder }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    fn small() -> AttributedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        planted_partition(100, 2, 0.25, 0.01, 40, &mut rng)
    }

    fn quick(kind: GaeKind) -> Gae {
        Gae { kind, hidden: 32, dim: 16, epochs: 60, ..Default::default() }
    }

    #[test]
    fn gae_embeds_with_community_signal() {
        let g = small();
        let emb = quick(GaeKind::Plain).embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("gae");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng);
        assert!(score > 0.2, "nmi {score}");
    }

    #[test]
    fn vgae_runs_and_is_finite() {
        let g = small();
        let emb = quick(GaeKind::Variational).embed(&g);
        emb.assert_finite("vgae");
        assert_eq!(emb.shape(), (100, 16));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(quick(GaeKind::Plain).name(), "GAE");
        assert_eq!(quick(GaeKind::Variational).name(), "VGAE");
    }

    #[test]
    fn attrs_sparse_roundtrip() {
        let g = small();
        let x = attrs_as_sparse(&g);
        assert_eq!(x.shape(), (100, 40));
        assert_eq!(x.nnz(), g.attrs().nnz());
    }
}
