//! ANRL-lite (after Zhang et al., IJCAI 2018): a neighbour-enhancement
//! attribute autoencoder trained jointly with a skip-gram objective — the
//! bottleneck code must both reconstruct the node's attributes and predict
//! its random-walk context via negative sampling.

use std::rc::Rc;

use coane_graph::{AttributedGraph, NodeId};
use coane_nn::layers::{Activation, Mlp};
use coane_nn::{Adam, Matrix, Params, Tape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::common::{unigram_table, walk_pairs, Embedder};

/// ANRL-lite hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Anrl {
    /// Hidden width of encoder/decoder.
    pub hidden: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Node minibatch size.
    pub batch_size: usize,
    /// Negative samples per context pair.
    pub negatives: usize,
    /// Weight of the attribute-reconstruction term.
    pub recon_weight: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Walks per node for context pairs.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Anrl {
    fn default() -> Self {
        Self {
            hidden: 256,
            dim: 128,
            epochs: 10,
            batch_size: 256,
            negatives: 5,
            recon_weight: 1.0,
            lr: 0.005,
            walks_per_node: 10,
            walk_length: 80,
            window: 10,
            seed: 42,
        }
    }
}

impl Embedder for Anrl {
    fn name(&self) -> &'static str {
        "ANRL"
    }

    fn embed(&self, graph: &AttributedGraph) -> Matrix {
        let n = graph.num_nodes();
        let d = graph.attr_dim();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA42);

        let mut params = Params::new();
        let encoder =
            Mlp::new(&mut params, "enc", &[d, self.hidden, self.dim], Activation::Relu, &mut rng);
        let decoder =
            Mlp::new(&mut params, "dec", &[self.dim, self.hidden, d], Activation::Relu, &mut rng);
        let out_emb = params.add("out_emb", coane_nn::init::xavier_uniform(n, self.dim, &mut rng));

        // Context pairs grouped by center.
        let walker = coane_walks::Walker::new(
            graph,
            coane_walks::WalkConfig {
                walks_per_node: self.walks_per_node,
                walk_length: self.walk_length,
                p: 1.0,
                q: 1.0,
                seed: self.seed,
            },
        );
        let walks = walker.generate_all(crate::common::worker_threads());
        let mut by_center: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in walk_pairs(&walks, self.window) {
            by_center[u as usize].push(v);
        }
        let noise = unigram_table(&walks, n);

        let mut adam = Adam::new(self.lr);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        use rand::Rng;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch_size) {
                let x_dense = Matrix::from_vec(chunk.len(), d, graph.attrs().gather_dense(chunk));
                // One positive context per center per step + negatives.
                let mut srcs: Vec<u32> = Vec::new();
                let mut dsts: Vec<u32> = Vec::new();
                let mut targets: Vec<f32> = Vec::new();
                for (k, &v) in chunk.iter().enumerate() {
                    let ctxs = &by_center[v as usize];
                    if ctxs.is_empty() {
                        continue;
                    }
                    let pos = ctxs[rng.gen_range(0..ctxs.len())];
                    srcs.push(k as u32);
                    dsts.push(pos);
                    targets.push(1.0);
                    for _ in 0..self.negatives {
                        srcs.push(k as u32);
                        dsts.push(noise.sample(&mut rng));
                        targets.push(0.0);
                    }
                }
                let mut tape = Tape::new();
                let vars = params.attach(&mut tape);
                let x_in = tape.constant(x_dense.clone());
                let z = encoder.forward(&mut tape, &vars, x_in);
                let x_hat = decoder.forward(&mut tape, &vars, z);
                let x_target = tape.constant(x_dense);
                let mse = tape.mse(x_hat, x_target);
                let l_recon = tape.scale(mse, self.recon_weight);
                let loss = if srcs.is_empty() {
                    l_recon
                } else {
                    let zu = tape.gather_rows(z, Rc::new(srcs));
                    let zv = tape.gather_rows(vars[out_emb.index()], Rc::new(dsts));
                    let logits = tape.rows_dot(zu, zv);
                    let t = Rc::new(Matrix::from_vec(targets.len(), 1, targets));
                    let bce = tape.bce_with_logits(logits, t);
                    let l_sg = tape.mean(bce);
                    tape.add(l_recon, l_sg)
                };
                tape.backward(loss);
                let grads = params.collect_grads(&tape, &vars);
                adam.step(&mut params, &grads);
            }
        }

        // Final embeddings = encoder output over all nodes.
        let mut out = Matrix::zeros(n, self.dim);
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        for chunk in all.chunks(self.batch_size.max(64)) {
            let x_dense = Matrix::from_vec(chunk.len(), d, graph.attrs().gather_dense(chunk));
            let mut tape = Tape::new();
            let vars = params.attach(&mut tape);
            let x_in = tape.constant(x_dense);
            let z = encoder.forward(&mut tape, &vars, x_in);
            let z_val = tape.value(z);
            for (k, &v) in chunk.iter().enumerate() {
                out.row_mut(v as usize).copy_from_slice(z_val.row(k));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coane_datasets::generator::planted_partition;
    use coane_eval::nmi_clustering;

    #[test]
    fn anrl_embeds_with_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(100, 2, 0.25, 0.01, 40, &mut rng);
        let anrl = Anrl {
            hidden: 32,
            dim: 16,
            epochs: 8,
            walks_per_node: 3,
            walk_length: 15,
            window: 3,
            ..Default::default()
        };
        let emb = anrl.embed(&g);
        assert_eq!(emb.shape(), (100, 16));
        emb.assert_finite("anrl");
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let score = nmi_clustering(emb.as_slice(), 16, g.labels().unwrap(), &mut rng2);
        assert!(score > 0.15, "nmi {score}");
    }

    #[test]
    fn deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = planted_partition(50, 2, 0.3, 0.03, 16, &mut rng);
        let anrl = Anrl {
            hidden: 16,
            dim: 8,
            epochs: 2,
            walks_per_node: 2,
            walk_length: 10,
            window: 2,
            ..Default::default()
        };
        assert_eq!(anrl.embed(&g), anrl.embed(&g));
    }
}
