//! # coane-baselines
//!
//! From-scratch implementations of the competing embedding methods in the
//! CoANE paper's evaluation (§4.1):
//!
//! | Paper baseline | Module | Family |
//! |----------------|--------|--------|
//! | DeepWalk-style skip-gram | [`skipgram`] | plain random-walk NE |
//! | node2vec (p, q biased walks) | [`skipgram`] | plain random-walk NE |
//! | LINE (1st + 2nd order) | [`self::line`](crate::line) | shallow proximity NE |
//! | GAE | [`gae`] | graph-autoencoder ANE |
//! | VGAE | [`gae`] | graph-autoencoder ANE |
//! | GraphSAGE (mean, unsupervised) | [`sage`] | subgraph aggregation ANE |
//! | ASNE | [`asne`] | joint structure–attribute ANE |
//! | DANE (lite) | [`dane`] | dual-autoencoder ANE |
//! | ANRL (lite) | [`anrl`] | autoencoder + skip-gram ANE |
//! | ARGA / ARVGA (adversarially regularized) | [`arga`] | adversarial graph-autoencoder ANE |
//! | STNE (lite: GRU self-translation) | [`stne`] | sequence-model ANE |
//!
//! Every baseline family in the paper's comparison is covered; DANE, ANRL
//! and STNE are "lite" variants (see their module docs and `DESIGN.md` §3).
//!
//! All methods expose a config struct and an `embed(&AttributedGraph) ->
//! Matrix` entry point, and implement the [`Embedder`] trait used by the
//! benchmark harness.

pub mod anrl;
pub mod arga;
pub mod asne;
pub mod common;
pub mod dane;
pub mod gae;
pub mod line;
pub mod sage;
pub mod skipgram;
pub mod stne;

pub use anrl::Anrl;
pub use arga::Arga;
pub use asne::Asne;
pub use common::Embedder;
pub use dane::Dane;
pub use gae::{Gae, GaeKind};
pub use line::Line;
pub use sage::GraphSage;
pub use skipgram::{DeepWalk, Node2Vec};
pub use stne::Stne;
