//! Cross-request micro-batching for the HTTP front-end.
//!
//! Concurrent `/knn` and `/score_links` requests that land within one
//! *batch window* are coalesced into a single engine kernel pass
//! ([`QueryEngine::knn_multi`] / [`QueryEngine::score_links_multi`] — many
//! one-at-a-time dot products become one blocked matmul), and the per-job
//! answers are demultiplexed back to the waiting connections.
//!
//! ## Shape
//!
//! Handler threads never execute queries themselves: they enqueue a
//! [`Job`] carrying a reply channel and block on it. One dedicated worker
//! thread drains the queue — when a job arrives it waits up to the window
//! for stragglers, takes everything queued, groups jobs by identical
//! parameters (only equal [`KnnParams`] / scorers may share a kernel
//! pass), executes each group, and replies. A dedicated worker (rather
//! than electing a handler thread as leader) means submission can never
//! deadlock: every handler may block on its reply channel simultaneously
//! and the batch still runs.
//!
//! ## Determinism
//!
//! Coalescing must not change response bytes, and by construction it
//! cannot: the engine's multi-job entry points are bit-identical for any
//! batch composition (see `engine.rs` module docs), so the only thing the
//! window size or traffic interleaving can affect is *timing*. The
//! batched-vs-serial test in `tests/keepalive.rs` locks this down.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use coane_error::{CoaneError, CoaneResult};
use coane_nn::Scorer;

use crate::engine::{KnnAnswer, KnnParams, KnnTarget, QueryEngine};
use crate::generation::ViewStamp;

/// Reply channel handing one kNN job its answers plus the stamp of the
/// generation view the round ran against.
type KnnReply = SyncSender<CoaneResult<(Vec<KnnAnswer>, ViewStamp)>>;
/// Reply channel handing one link-scoring job its scores.
type LinksReply = SyncSender<CoaneResult<Vec<f64>>>;
/// A drained link-scoring job: `(pairs, scorer, reply)`.
type LinksJob = (Vec<(u64, u64)>, Scorer, LinksReply);

/// One queued request body with its reply channel.
enum Job {
    Knn { queries: Vec<KnnTarget>, params: KnnParams, reply: KnnReply },
    Links { pairs: Vec<(u64, u64)>, scorer: Scorer, reply: LinksReply },
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<State>,
    arrived: Condvar,
}

/// The coalescing worker: owns a queue and one execution thread. Dropping
/// the batcher closes the queue and joins the worker (pending jobs are
/// executed first).
pub struct MicroBatcher {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher").finish()
    }
}

impl MicroBatcher {
    /// Starts the worker thread. `window` is how long the worker lingers
    /// after the first job of a round to let concurrent requests join the
    /// same kernel pass; `Duration::ZERO` executes each round immediately
    /// (coalescing then only happens when jobs pile up while a round runs).
    pub fn start(engine: Arc<QueryEngine>, window: Duration) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { jobs: VecDeque::new(), closed: false }),
            arrived: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("coane-batcher".into())
            .spawn(move || worker_loop(&worker_shared, &engine, window))
            .expect("spawn batcher worker");
        Self { shared, worker: Some(worker) }
    }

    fn enqueue(&self, job: Job) -> CoaneResult<()> {
        let mut state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(CoaneError::config("server is shutting down"));
        }
        state.jobs.push_back(job);
        drop(state);
        self.arrived_notify();
        Ok(())
    }

    fn arrived_notify(&self) {
        self.shared.arrived.notify_one();
    }

    /// Submits one kNN request body and blocks until its answers (and the
    /// stamp of the view they were computed against) are ready. Callers
    /// hold their admission [`crate::Permit`] across this call.
    pub fn submit_knn(
        &self,
        queries: Vec<KnnTarget>,
        params: KnnParams,
    ) -> CoaneResult<(Vec<KnnAnswer>, ViewStamp)> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.enqueue(Job::Knn { queries, params, reply })?;
        rx.recv().map_err(|_| CoaneError::config("server is shutting down"))?
    }

    /// Submits one link-scoring request body and blocks for its scores.
    pub fn submit_links(&self, pairs: Vec<(u64, u64)>, scorer: Scorer) -> CoaneResult<Vec<f64>> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.enqueue(Job::Links { pairs, scorer, reply })?;
        rx.recv().map_err(|_| CoaneError::config("server is shutting down"))?
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().closed = true;
        self.shared.arrived.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, engine: &QueryEngine, window: Duration) {
    loop {
        let round = {
            let mut state = shared.state.lock().unwrap();
            // Sleep until work arrives or shutdown.
            while state.jobs.is_empty() && !state.closed {
                state = shared.arrived.wait(state).unwrap();
            }
            if state.jobs.is_empty() {
                return; // closed and drained
            }
            // Linger for the batch window so concurrent submitters land in
            // this round; re-arm the wait after spurious wakeups.
            if !window.is_zero() && !state.closed {
                let deadline = Instant::now() + window;
                loop {
                    let now = Instant::now();
                    if now >= deadline || state.closed {
                        break;
                    }
                    let (next, _timeout) =
                        shared.arrived.wait_timeout(state, deadline - now).unwrap();
                    state = next;
                    if state.closed {
                        break;
                    }
                }
            }
            std::mem::take(&mut state.jobs)
        };
        execute_round(engine, round);
    }
}

/// Executes one drained round: group jobs by identical parameters (arrival
/// order preserved within a group), one engine pass per group, replies in
/// job order. A receiver that gave up (disconnected) is skipped silently.
fn execute_round(engine: &QueryEngine, round: VecDeque<Job>) {
    let mut knn: Vec<(Vec<KnnTarget>, KnnParams, KnnReply)> = Vec::new();
    let mut links: Vec<LinksJob> = Vec::new();
    for job in round {
        match job {
            Job::Knn { queries, params, reply } => knn.push((queries, params, reply)),
            Job::Links { pairs, scorer, reply } => links.push((pairs, scorer, reply)),
        }
    }
    // kNN groups: all jobs sharing one KnnParams value run as one pass.
    let mut done = vec![false; knn.len()];
    for i in 0..knn.len() {
        if done[i] {
            continue;
        }
        let params = knn[i].1;
        let members: Vec<usize> = (i..knn.len()).filter(|&j| knn[j].1 == params).collect();
        for &j in &members {
            done[j] = true;
        }
        let jobs: Vec<&[KnnTarget]> = members.iter().map(|&j| knn[j].0.as_slice()).collect();
        let (results, stamp) = engine.knn_multi(&jobs, params);
        for (&j, result) in members.iter().zip(results) {
            let _ = knn[j].2.send(result.map(|answers| (answers, stamp)));
        }
    }
    let mut done = vec![false; links.len()];
    for i in 0..links.len() {
        if done[i] {
            continue;
        }
        let scorer = links[i].1;
        let members: Vec<usize> = (i..links.len()).filter(|&j| links[j].1 == scorer).collect();
        for &j in &members {
            done[j] = true;
        }
        let jobs: Vec<&[(u64, u64)]> = members.iter().map(|&j| links[j].0.as_slice()).collect();
        let results = engine.score_links_multi(&jobs, scorer);
        for (&j, result) in members.iter().zip(results) {
            let _ = links[j].2.send(result);
        }
    }
}
