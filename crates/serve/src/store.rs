//! The on-disk embedding store: a versioned, CRC-checked binary table of
//! node embeddings written once by the trainer/CLI and loaded read-only by
//! the server.
//!
//! ## File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"COANESTR"
//! 8       4     format version (u32 LE)
//! 12      8     payload length (u64 LE)
//! 20      4     CRC32 (IEEE) of the payload bytes (u32 LE)
//! 24      ...   payload
//! ```
//!
//! The payload is a flat little-endian encoding:
//!
//! ```text
//! num_nodes u64 · dim u64 · meta_len u64 · meta (UTF-8 JSON, free-form)
//! ids       num_nodes × u64          (external id of each row, unique)
//! vectors   num_nodes × dim × f32    (row-major, fixed stride)
//! ```
//!
//! The layout is mmap-style: rows live at a fixed stride so row `i` is the
//! slice at `i*dim .. (i+1)*dim`, addressable without any per-row framing.
//! [`EmbeddingStore::open`] reads the file once, verifies length + CRC32,
//! and decodes the vector block into one contiguous `f32` buffer; all row
//! access after that ([`EmbeddingStore::row`], [`EmbeddingStore::vectors`])
//! is zero-copy borrowing into that buffer.
//!
//! Every malformed-file condition — wrong magic, unsupported version,
//! truncation, length or CRC mismatch, shape contradictions, duplicate
//! ids — surfaces a typed [`CoaneError::Store`] (exit code 8) instead of a
//! panic, mirroring the checkpoint layer's treatment of untrusted input.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

use coane_core::checkpoint::crc32;
use coane_error::{CoaneError, CoaneResult};

/// Magic bytes identifying a CoANE embedding-store file.
pub const STORE_MAGIC: &[u8; 8] = b"COANESTR";
/// On-disk store format version this build reads and writes.
pub const STORE_FORMAT_VERSION: u32 = 1;
/// Header size in bytes (magic + version + payload length + CRC32).
const HEADER_LEN: usize = 24;
/// Sanity bound on counts decoded from untrusted files.
const MAX_DECODE_ITEMS: u64 = 1 << 32;

/// A read-only embedding table: `num_nodes × dim` f32 vectors plus an
/// id ↔ row-index map and a free-form metadata string.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    dim: usize,
    ids: Vec<u64>,
    index_of: HashMap<u64, u32>,
    vectors: Vec<f32>,
    meta: String,
}

impl EmbeddingStore {
    /// Builds an in-memory store from a flat row-major embedding. `ids[i]`
    /// is the external id of row `i`; pass `None` to use the identity
    /// mapping `id = row index`.
    ///
    /// Returns a [`CoaneError::Store`] if the shape is inconsistent, the
    /// store is empty, or ids repeat.
    pub fn new(
        embedding: Vec<f32>,
        dim: usize,
        ids: Option<Vec<u64>>,
        meta: impl Into<String>,
    ) -> CoaneResult<Self> {
        let store_err = |m: String| CoaneError::Store { path: None, message: m };
        if dim == 0 {
            return Err(store_err("embedding dimension must be positive".into()));
        }
        if !embedding.len().is_multiple_of(dim) {
            return Err(store_err(format!(
                "embedding length {} is not a multiple of dim {dim}",
                embedding.len()
            )));
        }
        let n = embedding.len() / dim;
        if n == 0 {
            return Err(store_err("store must hold at least one vector".into()));
        }
        let ids = ids.unwrap_or_else(|| (0..n as u64).collect());
        if ids.len() != n {
            return Err(store_err(format!("{} ids for {n} vectors", ids.len())));
        }
        let mut index_of = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            if index_of.insert(id, i as u32).is_some() {
                return Err(store_err(format!("duplicate node id {id}")));
            }
        }
        Ok(Self { dim, ids, index_of, vectors: embedding, meta: meta.into() })
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store is empty (never true for a constructed store).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The free-form metadata string recorded at export time.
    pub fn meta(&self) -> &str {
        &self.meta
    }

    /// Embedding of row `index` — a zero-copy slice into the table.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn row(&self, index: usize) -> &[f32] {
        &self.vectors[index * self.dim..(index + 1) * self.dim]
    }

    /// The whole table as one row-major slice (zero-copy).
    pub fn vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// External id of row `index`.
    pub fn id_of(&self, index: usize) -> u64 {
        self.ids[index]
    }

    /// All external ids in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Row index of external id, if present.
    pub fn index_of(&self, id: u64) -> Option<u32> {
        self.index_of.get(&id).copied()
    }

    // ------------------------------------------------------------ mutation
    //
    // The store stays read-only from the outside; the generation layer
    // (`crate::generation`) is the only writer, and it maintains the
    // invariants these helpers assume (matching dimension, absent id).

    /// Overwrites the vector of `row` in place.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `v` has the wrong dimension.
    pub(crate) fn set_row(&mut self, row: usize, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "set_row dimension mismatch");
        self.vectors[row * self.dim..(row + 1) * self.dim].copy_from_slice(v);
    }

    /// Appends a new `(id, vector)` row at index `len()`.
    ///
    /// # Panics
    /// Panics if `id` is already present or `v` has the wrong dimension.
    pub(crate) fn push_row(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "push_row dimension mismatch");
        let row = self.ids.len() as u32;
        let prev = self.index_of.insert(id, row);
        assert!(prev.is_none(), "push_row duplicate id {id}");
        self.ids.push(id);
        self.vectors.extend_from_slice(v);
    }

    // ------------------------------------------------------------- on disk

    /// Serializes the store to `path` atomically: bytes go to a `.tmp`
    /// sibling which is fsynced then renamed into place, so a crash
    /// mid-write never leaves a half-written file under the final name.
    pub fn save(&self, path: &Path) -> CoaneResult<()> {
        let mut payload = Vec::with_capacity(
            3 * 8 + self.meta.len() + self.ids.len() * 8 + self.vectors.len() * 4,
        );
        payload.extend_from_slice(&(self.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(self.dim as u64).to_le_bytes());
        payload.extend_from_slice(&(self.meta.len() as u64).to_le_bytes());
        payload.extend_from_slice(self.meta.as_bytes());
        for &id in &self.ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        for &v in &self.vectors {
            payload.extend_from_slice(&v.to_le_bytes());
        }

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(STORE_MAGIC);
        bytes.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        atomic_write_bytes(path, &bytes)
    }

    /// Loads a store written by [`EmbeddingStore::save`], verifying magic,
    /// version, payload length, CRC32 and structural shape. Any mismatch is
    /// a typed [`CoaneError::Store`].
    pub fn open(path: &Path) -> CoaneResult<Self> {
        let bytes = std::fs::read(path).map_err(|e| CoaneError::io(path, e))?;
        Self::decode(&bytes).map_err(|m| CoaneError::store(path, m))
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("file too short for header: {} bytes", bytes.len()));
        }
        if &bytes[0..8] != STORE_MAGIC {
            return Err("bad magic: not a CoANE embedding store".into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != STORE_FORMAT_VERSION {
            return Err(format!(
                "unsupported store format version {version} (this build reads version \
                 {STORE_FORMAT_VERSION})"
            ));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let actual_len = (bytes.len() - HEADER_LEN) as u64;
        if payload_len != actual_len {
            return Err(format!(
                "payload length mismatch: header says {payload_len}, file holds {actual_len} \
                 (truncated or padded file)"
            ));
        }
        let payload = &bytes[HEADER_LEN..];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return Err(format!(
                "CRC32 mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ));
        }

        let mut cur = Cursor { bytes: payload, pos: 0 };
        let n = cur.take_u64()?;
        let dim = cur.take_u64()?;
        if n == 0 || dim == 0 || n > MAX_DECODE_ITEMS || dim > MAX_DECODE_ITEMS {
            return Err(format!("implausible shape: {n} × {dim}"));
        }
        let meta_len = cur.take_u64()?;
        let meta_bytes = cur.take_bytes(meta_len, "metadata")?;
        let meta = std::str::from_utf8(meta_bytes)
            .map_err(|_| "metadata is not valid UTF-8".to_string())?
            .to_string();
        let n = n as usize;
        let dim = dim as usize;
        let id_bytes = cur.take_bytes(n as u64 * 8, "id table")?;
        let ids: Vec<u64> =
            id_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        let count = n
            .checked_mul(dim)
            .ok_or_else(|| format!("vector block size overflows: {n} × {dim}"))?;
        let vec_bytes = cur.take_bytes(count as u64 * 4, "vector block")?;
        let vectors: Vec<f32> =
            vec_bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        if cur.pos != payload.len() {
            return Err(format!("{} trailing bytes after vector block", payload.len() - cur.pos));
        }
        Self::new(vectors, dim, Some(ids), meta).map_err(|e| e.to_string())
    }
}

/// Atomically replaces `path` with `bytes`: writes a `.tmp` sibling, fsyncs
/// it, then renames it into place, so a crash mid-write never leaves a
/// half-written file under the final name. Shared by the store writer and
/// the generation layer (`CURRENT` marker, mutation-log rotation).
pub(crate) fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> CoaneResult<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| CoaneError::io(&tmp, e))?;
    f.write_all(bytes).map_err(|e| CoaneError::io(&tmp, e))?;
    f.sync_all().map_err(|e| CoaneError::io(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| CoaneError::io(path, e))?;
    Ok(())
}

/// Bounds-checked little-endian reader over untrusted payload bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_bytes(&mut self, len: u64, what: &str) -> Result<&'a [u8], String> {
        let remaining = (self.bytes.len() - self.pos) as u64;
        if len > remaining {
            return Err(format!("truncated payload: {what} wants {len} bytes, {remaining} left"));
        }
        let s = &self.bytes[self.pos..self.pos + len as usize];
        self.pos += len as usize;
        Ok(s)
    }

    fn take_u64(&mut self) -> Result<u64, String> {
        let b = self.take_bytes(8, "u64 field")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("coane_store_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> EmbeddingStore {
        let emb: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 3.0).collect();
        EmbeddingStore::new(emb, 4, Some(vec![7, 3, 11]), "{\"src\":\"unit\"}").unwrap()
    }

    #[test]
    fn row_access_and_id_map() {
        let s = sample();
        assert_eq!((s.len(), s.dim()), (3, 4));
        assert_eq!(s.row(1), &[-1.0, -0.5, 0.0, 0.5]);
        assert_eq!(s.id_of(2), 11);
        assert_eq!(s.index_of(3), Some(1));
        assert_eq!(s.index_of(99), None);
        assert_eq!(s.vectors().len(), 12);
    }

    #[test]
    fn duplicate_or_misshapen_inputs_rejected() {
        assert!(EmbeddingStore::new(vec![0.0; 8], 4, Some(vec![1, 1]), "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 7], 4, None, "").is_err());
        assert!(EmbeddingStore::new(vec![], 4, None, "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 8], 0, None, "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 8], 4, Some(vec![1]), "").is_err());
    }

    #[test]
    fn save_open_roundtrip_is_exact() {
        let s = sample();
        let path = tmp("roundtrip.store");
        s.save(&path).unwrap();
        let loaded = EmbeddingStore::open(&path).unwrap();
        assert_eq!(loaded.vectors(), s.vectors());
        assert_eq!(loaded.ids(), s.ids());
        assert_eq!(loaded.dim(), s.dim());
        assert_eq!(loaded.meta(), s.meta());
    }
}
