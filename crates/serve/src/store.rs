//! The on-disk embedding store: a versioned, CRC-checked binary table of
//! node embeddings written once by the trainer/CLI and loaded read-only by
//! the server.
//!
//! ## File format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"COANESTR"
//! 8       4     format version (u32 LE)
//! 12      8     payload length (u64 LE)
//! 20      4     CRC32 (IEEE) of the payload bytes (u32 LE)
//! 24      ...   payload
//! ```
//!
//! The **version 1** payload (full-precision f32, the default) is a flat
//! little-endian encoding:
//!
//! ```text
//! num_nodes u64 · dim u64 · meta_len u64 · meta (UTF-8 JSON, free-form)
//! ids       num_nodes × u64          (external id of each row, unique)
//! vectors   num_nodes × dim × f32    (row-major, fixed stride)
//! ```
//!
//! The **version 2** payload carries a quantized scoring table (f16 or
//! int8) *plus* the exact f32 rows as a sidecar — the sidecar is what the
//! re-rank stage, WAL fold and ground-truth scoring read, so quantization
//! error can only affect ANN candidate selection, never final scores:
//!
//! ```text
//! num_nodes u64 · dim u64 · precision u8 (1 = f16, 2 = int8)
//! meta_len  u64 · meta (UTF-8 JSON, free-form)
//! ids       num_nodes × u64
//! qparams   num_nodes × (scale f32 · zero_point f32)   (int8 only; the
//!           zero point is reserved and must be 0.0 — symmetric range)
//! codes     num_nodes × dim × (u16 LE | i8)            (f16 | int8)
//! vectors   num_nodes × dim × f32                      (exact sidecar)
//! ```
//!
//! f32 stores always write version 1 — byte-identical to every earlier
//! build — and this build reads both versions. Codes are a pure function
//! of the f32 row ([`coane_nn::qkernels`]), every writer maintains that
//! invariant, and the CRC covers codes and sidecar alike, so a decoded
//! table is trusted as-is.
//!
//! The layout is mmap-style: rows live at a fixed stride so row `i` is the
//! slice at `i*dim .. (i+1)*dim`, addressable without any per-row framing.
//! [`EmbeddingStore::open`] reads the file once, verifies length + CRC32,
//! and decodes the vector block into one contiguous `f32` buffer; all row
//! access after that ([`EmbeddingStore::row`], [`EmbeddingStore::vectors`])
//! is zero-copy borrowing into that buffer.
//!
//! Every malformed-file condition — wrong magic, unsupported version,
//! truncation, length or CRC mismatch, shape contradictions, duplicate
//! ids, bad precision byte, non-zero int8 zero point — surfaces a typed
//! [`CoaneError::Store`] (exit code 8) instead of a panic, mirroring the
//! checkpoint layer's treatment of untrusted input.

use std::borrow::Cow;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

use coane_core::checkpoint::crc32;
use coane_error::{CoaneError, CoaneResult};
use coane_nn::qkernels::{self, Precision};
use coane_nn::Scorer;

/// Magic bytes identifying a CoANE embedding-store file.
pub const STORE_MAGIC: &[u8; 8] = b"COANESTR";
/// On-disk store format version for full-precision f32 stores.
pub const STORE_FORMAT_VERSION: u32 = 1;
/// On-disk store format version for quantized (f16 / int8) stores.
pub const STORE_FORMAT_VERSION_QUANT: u32 = 2;
/// Header size in bytes (magic + version + payload length + CRC32).
const HEADER_LEN: usize = 24;
/// Sanity bound on counts decoded from untrusted files.
const MAX_DECODE_ITEMS: u64 = 1 << 32;

/// Precision byte in a version-2 payload for f16 codes.
const PRECISION_BYTE_F16: u8 = 1;
/// Precision byte in a version-2 payload for int8 codes.
const PRECISION_BYTE_INT8: u8 = 2;

/// The quantized scoring table riding alongside the exact f32 rows.
///
/// Per-row derived constants (f16 norms, int8 code sums-of-squares) are
/// *not* serialized — they are recomputed from the codes on load and on
/// every row mutation, so they can never drift from the codes.
#[derive(Debug, Clone)]
enum QuantTable {
    /// f32 store: no codes, scoring reads the exact rows directly.
    None,
    /// f16 codes plus the per-row dequantized L2 norm (cosine route).
    F16 { codes: Vec<u16>, norms: Vec<f32> },
    /// Symmetric int8 codes plus per-row scale and exact code sum-of-squares.
    Int8 { codes: Vec<i8>, scales: Vec<f32>, sumsqs: Vec<i32> },
}

/// A read-only embedding table: `num_nodes × dim` f32 vectors plus an
/// id ↔ row-index map, a free-form metadata string, and (for f16/int8
/// stores) a quantized scoring table kept in lock-step with the rows.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    dim: usize,
    ids: Vec<u64>,
    index_of: HashMap<u64, u32>,
    vectors: Vec<f32>,
    meta: String,
    quant: QuantTable,
}

impl EmbeddingStore {
    /// Builds an in-memory store from a flat row-major embedding. `ids[i]`
    /// is the external id of row `i`; pass `None` to use the identity
    /// mapping `id = row index`.
    ///
    /// Returns a [`CoaneError::Store`] if the shape is inconsistent, the
    /// store is empty, or ids repeat.
    pub fn new(
        embedding: Vec<f32>,
        dim: usize,
        ids: Option<Vec<u64>>,
        meta: impl Into<String>,
    ) -> CoaneResult<Self> {
        let store_err = |m: String| CoaneError::Store { path: None, message: m };
        if dim == 0 {
            return Err(store_err("embedding dimension must be positive".into()));
        }
        if !embedding.len().is_multiple_of(dim) {
            return Err(store_err(format!(
                "embedding length {} is not a multiple of dim {dim}",
                embedding.len()
            )));
        }
        let n = embedding.len() / dim;
        if n == 0 {
            return Err(store_err("store must hold at least one vector".into()));
        }
        let ids = ids.unwrap_or_else(|| (0..n as u64).collect());
        if ids.len() != n {
            return Err(store_err(format!("{} ids for {n} vectors", ids.len())));
        }
        let mut index_of = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            if index_of.insert(id, i as u32).is_some() {
                return Err(store_err(format!("duplicate node id {id}")));
            }
        }
        Ok(Self {
            dim,
            ids,
            index_of,
            vectors: embedding,
            meta: meta.into(),
            quant: QuantTable::None,
        })
    }

    /// Re-encodes the scoring table at `precision`, rebuilding every code
    /// from the exact f32 rows (a pure function of the row bytes, so two
    /// stores with equal rows always quantize identically). `F32` drops
    /// any existing codes. The f32 sidecar is untouched either way.
    pub fn with_precision(mut self, precision: Precision) -> CoaneResult<Self> {
        if precision != Precision::F32 && self.dim > qkernels::MAX_QUANT_DIM {
            return Err(CoaneError::Store {
                path: None,
                message: format!(
                    "dimension {} exceeds the quantized-store cap {}",
                    self.dim,
                    qkernels::MAX_QUANT_DIM
                ),
            });
        }
        let n = self.len();
        self.quant = match precision {
            Precision::F32 => QuantTable::None,
            Precision::F16 => {
                let mut codes = Vec::with_capacity(n * self.dim);
                let mut norms = Vec::with_capacity(n);
                for r in 0..n {
                    let row_codes = qkernels::quantize_f16_row(self.row(r));
                    norms.push(qkernels::f16_row_norm(&row_codes));
                    codes.extend(row_codes);
                }
                QuantTable::F16 { codes, norms }
            }
            Precision::Int8 => {
                let mut codes = Vec::with_capacity(n * self.dim);
                let mut scales = Vec::with_capacity(n);
                let mut sumsqs = Vec::with_capacity(n);
                for r in 0..n {
                    let (row_codes, scale) = qkernels::quantize_i8_row(self.row(r));
                    scales.push(scale);
                    sumsqs.push(qkernels::sumsq_i8(&row_codes));
                    codes.extend(row_codes);
                }
                QuantTable::Int8 { codes, scales, sumsqs }
            }
        };
        Ok(self)
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store is empty (never true for a constructed store).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The free-form metadata string recorded at export time.
    pub fn meta(&self) -> &str {
        &self.meta
    }

    /// Embedding of row `index` — a zero-copy slice into the table.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn row(&self, index: usize) -> &[f32] {
        &self.vectors[index * self.dim..(index + 1) * self.dim]
    }

    /// The whole table as one row-major slice (zero-copy).
    pub fn vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// External id of row `index`.
    pub fn id_of(&self, index: usize) -> u64 {
        self.ids[index]
    }

    /// All external ids in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Row index of external id, if present.
    pub fn index_of(&self, id: u64) -> Option<u32> {
        self.index_of.get(&id).copied()
    }

    /// The precision of the scoring table the ANN hot path reads.
    pub fn precision(&self) -> Precision {
        match self.quant {
            QuantTable::None => Precision::F32,
            QuantTable::F16 { .. } => Precision::F16,
            QuantTable::Int8 { .. } => Precision::Int8,
        }
    }

    /// Bytes the ANN scoring path streams per full scan: the code table
    /// plus, for int8, the per-row quantization parameters. The exact f32
    /// sidecar is *not* counted — only the re-rank stage touches it, and
    /// only for `k·rerank_factor` rows per query.
    pub fn store_bytes(&self) -> usize {
        let n = self.len();
        match self.quant {
            QuantTable::None => n * self.dim * 4,
            QuantTable::F16 { .. } => n * self.dim * 2,
            QuantTable::Int8 { .. } => n * self.dim + n * 8,
        }
    }

    // ------------------------------------------------------------ mutation
    //
    // The store stays read-only from the outside; the generation layer
    // (`crate::generation`) is the only writer, and it maintains the
    // invariants these helpers assume (matching dimension, absent id).

    /// Overwrites the vector of `row` in place.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `v` has the wrong dimension.
    pub(crate) fn set_row(&mut self, row: usize, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "set_row dimension mismatch");
        self.vectors[row * self.dim..(row + 1) * self.dim].copy_from_slice(v);
        self.requantize_row(row, false);
    }

    /// Appends a new `(id, vector)` row at index `len()`.
    ///
    /// # Panics
    /// Panics if `id` is already present or `v` has the wrong dimension.
    pub(crate) fn push_row(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "push_row dimension mismatch");
        let row = self.ids.len() as u32;
        let prev = self.index_of.insert(id, row);
        assert!(prev.is_none(), "push_row duplicate id {id}");
        self.ids.push(id);
        self.vectors.extend_from_slice(v);
        self.requantize_row(row as usize, true);
    }

    /// Re-derives the quantized codes (and derived per-row constants) of
    /// one row from its freshly written f32 values, keeping the invariant
    /// `codes == quantize(sidecar rows)` across every mutation path.
    fn requantize_row(&mut self, row: usize, append: bool) {
        let dim = self.dim;
        match &mut self.quant {
            QuantTable::None => {}
            QuantTable::F16 { codes, norms } => {
                let row_codes =
                    qkernels::quantize_f16_row(&self.vectors[row * dim..(row + 1) * dim]);
                let norm = qkernels::f16_row_norm(&row_codes);
                if append {
                    codes.extend(row_codes);
                    norms.push(norm);
                } else {
                    codes[row * dim..(row + 1) * dim].copy_from_slice(&row_codes);
                    norms[row] = norm;
                }
            }
            QuantTable::Int8 { codes, scales, sumsqs } => {
                let (row_codes, scale) =
                    qkernels::quantize_i8_row(&self.vectors[row * dim..(row + 1) * dim]);
                let sumsq = qkernels::sumsq_i8(&row_codes);
                if append {
                    codes.extend(row_codes);
                    scales.push(scale);
                    sumsqs.push(sumsq);
                } else {
                    codes[row * dim..(row + 1) * dim].copy_from_slice(&row_codes);
                    scales[row] = scale;
                    sumsqs[row] = sumsq;
                }
            }
        }
    }

    // ----------------------------------------------------------- scoring
    //
    // The ANN layers (`crate::hnsw`) score through probes so one code path
    // serves all precisions: an f32 probe reproduces `Scorer::score`
    // exactly (bit-identical to the pre-quantization behavior), and the
    // quantized probes go through the fused kernels in
    // `coane_nn::qkernels` with their ISA/thread determinism contract.

    /// Prepares a query vector for repeated scoring against this store's
    /// precision: quantizes it once (f16 round-trip or int8 codes) so the
    /// per-candidate cost in a graph traversal is a single fused kernel.
    ///
    /// # Panics
    /// Panics if `q` has the wrong dimension.
    pub(crate) fn probe_for_vector<'a>(&self, q: &'a [f32]) -> QuantProbe<'a> {
        assert_eq!(q.len(), self.dim, "probe dimension mismatch");
        match &self.quant {
            QuantTable::None => QuantProbe::F32(Cow::Borrowed(q)),
            QuantTable::F16 { .. } => {
                let codes = qkernels::quantize_f16_row(q);
                let norm = qkernels::f16_row_norm(&codes);
                let vals = codes.iter().map(|&h| qkernels::dequantize_f16(h)).collect();
                QuantProbe::F16 { vals: Cow::Owned(vals), norm }
            }
            QuantTable::Int8 { .. } => {
                let (codes, scale) = qkernels::quantize_i8_row(q);
                let sumsq = qkernels::sumsq_i8(&codes);
                QuantProbe::Int8 { codes: Cow::Owned(codes), scale, sumsq }
            }
        }
    }

    /// A probe carrying row `index`'s *own* stored representation — codes
    /// are borrowed, nothing is re-rounded — so row-vs-row scoring during
    /// index build, extension and WAL replay is an exact function of the
    /// stored codes (for int8, pure integer arithmetic end to end).
    pub(crate) fn probe_for_row(&self, index: usize) -> QuantProbe<'_> {
        match &self.quant {
            QuantTable::None => QuantProbe::F32(Cow::Borrowed(self.row(index))),
            QuantTable::F16 { codes, norms } => {
                let row = &codes[index * self.dim..(index + 1) * self.dim];
                let vals = row.iter().map(|&h| qkernels::dequantize_f16(h)).collect();
                QuantProbe::F16 { vals: Cow::Owned(vals), norm: norms[index] }
            }
            QuantTable::Int8 { codes, scales, sumsqs } => QuantProbe::Int8 {
                codes: Cow::Borrowed(&codes[index * self.dim..(index + 1) * self.dim]),
                scale: scales[index],
                sumsq: sumsqs[index],
            },
        }
    }

    /// Scores a probe against one stored row (greater = more similar,
    /// matching [`Scorer::score`] orientation). For an f32 probe this *is*
    /// `scorer.score(q, row)`; quantized probes go through the fused
    /// kernels plus a fixed-order scalar combine.
    pub(crate) fn quant_score(&self, scorer: Scorer, probe: &QuantProbe<'_>, index: usize) -> f32 {
        let dim = self.dim;
        match (probe, &self.quant) {
            (QuantProbe::F32(q), _) => scorer.score(q, self.row(index)),
            (QuantProbe::F16 { vals, norm }, QuantTable::F16 { codes, norms }) => {
                let row = &codes[index * dim..(index + 1) * dim];
                let mut raw = [0.0f32];
                match scorer {
                    Scorer::Euclidean => qkernels::f16_l2_rows(row, vals, dim, &mut raw),
                    _ => qkernels::f16_dot_rows(row, vals, dim, &mut raw),
                }
                qkernels::combine_f16(scorer, raw[0], *norm, norms[index])
            }
            (
                QuantProbe::Int8 { codes: q, scale, sumsq },
                QuantTable::Int8 { codes, scales, sumsqs },
            ) => {
                let row = &codes[index * dim..(index + 1) * dim];
                let mut idot = [0i32];
                qkernels::i8_dot_rows(row, q, dim, &mut idot);
                qkernels::combine_i8(scorer, idot[0], *scale, *sumsq, scales[index], sumsqs[index])
            }
            _ => unreachable!("probe precision does not match store precision"),
        }
    }

    /// Scores a probe against *every* row in one fused scan — the
    /// brute-force path for quantized stores. Parallel over row chunks on
    /// the workspace pool; each output element is a pure function of its
    /// (probe, row) pair, so the result is bit-identical at any thread
    /// count and ISA level.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`, or on an f32 probe (the f32
    /// brute-force path keeps its blocked matmul route in `crate::hnsw`).
    pub(crate) fn quant_scores_block(
        &self,
        scorer: Scorer,
        probe: &QuantProbe<'_>,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), self.len(), "quant_scores_block output length mismatch");
        let dim = self.dim;
        match (probe, &self.quant) {
            (QuantProbe::F16 { vals, norm }, QuantTable::F16 { codes, norms }) => {
                qkernels::f16_scan(codes, vals, dim, scorer == Scorer::Euclidean, out);
                for (o, &rn) in out.iter_mut().zip(norms) {
                    *o = qkernels::combine_f16(scorer, *o, *norm, rn);
                }
            }
            (
                QuantProbe::Int8 { codes: q, scale, sumsq },
                QuantTable::Int8 { codes, scales, sumsqs },
            ) => {
                let mut idots = vec![0i32; out.len()];
                qkernels::i8_dot_scan(codes, q, dim, &mut idots);
                for (((o, &d), &rs), &rss) in out.iter_mut().zip(&idots).zip(scales).zip(sumsqs) {
                    *o = qkernels::combine_i8(scorer, d, *scale, *sumsq, rs, rss);
                }
            }
            _ => unreachable!("quant_scores_block requires a quantized store and matching probe"),
        }
    }

    // ------------------------------------------------------------- on disk

    /// Serializes the store to `path` atomically: bytes go to a `.tmp`
    /// sibling which is fsynced then renamed into place, so a crash
    /// mid-write never leaves a half-written file under the final name.
    ///
    /// f32 stores write format version 1 — byte-identical to earlier
    /// builds — and quantized stores write version 2 with the code table
    /// ahead of the exact f32 sidecar.
    pub fn save(&self, path: &Path) -> CoaneResult<()> {
        let version = match self.quant {
            QuantTable::None => STORE_FORMAT_VERSION,
            _ => STORE_FORMAT_VERSION_QUANT,
        };
        let mut payload = Vec::with_capacity(
            4 * 8
                + 1
                + self.meta.len()
                + self.ids.len() * 8
                + self.vectors.len() * 4
                + self.store_bytes(),
        );
        payload.extend_from_slice(&(self.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(self.dim as u64).to_le_bytes());
        match &self.quant {
            QuantTable::None => {}
            QuantTable::F16 { .. } => payload.push(PRECISION_BYTE_F16),
            QuantTable::Int8 { .. } => payload.push(PRECISION_BYTE_INT8),
        }
        payload.extend_from_slice(&(self.meta.len() as u64).to_le_bytes());
        payload.extend_from_slice(self.meta.as_bytes());
        for &id in &self.ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        match &self.quant {
            QuantTable::None => {}
            QuantTable::F16 { codes, .. } => {
                for &c in codes {
                    payload.extend_from_slice(&c.to_le_bytes());
                }
            }
            QuantTable::Int8 { codes, scales, .. } => {
                for &s in scales {
                    payload.extend_from_slice(&s.to_le_bytes());
                    payload.extend_from_slice(&0.0f32.to_le_bytes()); // reserved zero point
                }
                payload.extend(codes.iter().map(|&c| c as u8));
            }
        }
        for &v in &self.vectors {
            payload.extend_from_slice(&v.to_le_bytes());
        }

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(STORE_MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        atomic_write_bytes(path, &bytes)
    }

    /// Loads a store written by [`EmbeddingStore::save`], verifying magic,
    /// version, payload length, CRC32 and structural shape. Any mismatch is
    /// a typed [`CoaneError::Store`].
    pub fn open(path: &Path) -> CoaneResult<Self> {
        let bytes = std::fs::read(path).map_err(|e| CoaneError::io(path, e))?;
        Self::decode(&bytes).map_err(|m| CoaneError::store(path, m))
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("file too short for header: {} bytes", bytes.len()));
        }
        if &bytes[0..8] != STORE_MAGIC {
            return Err("bad magic: not a CoANE embedding store".into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != STORE_FORMAT_VERSION && version != STORE_FORMAT_VERSION_QUANT {
            return Err(format!(
                "unsupported store format version {version} (this build reads versions \
                 {STORE_FORMAT_VERSION} and {STORE_FORMAT_VERSION_QUANT})"
            ));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let actual_len = (bytes.len() - HEADER_LEN) as u64;
        if payload_len != actual_len {
            return Err(format!(
                "payload length mismatch: header says {payload_len}, file holds {actual_len} \
                 (truncated or padded file)"
            ));
        }
        let payload = &bytes[HEADER_LEN..];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return Err(format!(
                "CRC32 mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ));
        }

        let mut cur = Cursor { bytes: payload, pos: 0 };
        let n = cur.take_u64()?;
        let dim = cur.take_u64()?;
        if n == 0 || dim == 0 || n > MAX_DECODE_ITEMS || dim > MAX_DECODE_ITEMS {
            return Err(format!("implausible shape: {n} × {dim}"));
        }
        let precision = if version == STORE_FORMAT_VERSION_QUANT {
            let b = cur.take_bytes(1, "precision byte")?[0];
            match b {
                PRECISION_BYTE_F16 => Precision::F16,
                PRECISION_BYTE_INT8 => Precision::Int8,
                other => return Err(format!("unknown precision byte {other}")),
            }
        } else {
            Precision::F32
        };
        let meta_len = cur.take_u64()?;
        let meta_bytes = cur.take_bytes(meta_len, "metadata")?;
        let meta = std::str::from_utf8(meta_bytes)
            .map_err(|_| "metadata is not valid UTF-8".to_string())?
            .to_string();
        let n = n as usize;
        let dim = dim as usize;
        if precision != Precision::F32 && dim > qkernels::MAX_QUANT_DIM {
            return Err(format!(
                "dimension {dim} exceeds the quantized-store cap {}",
                qkernels::MAX_QUANT_DIM
            ));
        }
        let id_bytes = cur.take_bytes(n as u64 * 8, "id table")?;
        let ids: Vec<u64> =
            id_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        let count = n
            .checked_mul(dim)
            .ok_or_else(|| format!("vector block size overflows: {n} × {dim}"))?;

        // Quantized blocks precede the f32 sidecar. The CRC already vouches
        // for the bytes; codes are decoded as-is (every writer produces
        // them as a pure function of the f32 rows), and the per-row derived
        // constants are recomputed from the codes so they cannot drift.
        let quant = match precision {
            Precision::F32 => QuantTable::None,
            Precision::F16 => {
                let code_bytes = cur.take_bytes(count as u64 * 2, "f16 code block")?;
                let codes: Vec<u16> = code_bytes
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                let norms = (0..n)
                    .map(|r| qkernels::f16_row_norm(&codes[r * dim..(r + 1) * dim]))
                    .collect();
                QuantTable::F16 { codes, norms }
            }
            Precision::Int8 => {
                let qparam_bytes = cur.take_bytes(n as u64 * 8, "int8 qparam block")?;
                let mut scales = Vec::with_capacity(n);
                for (r, pair) in qparam_bytes.chunks_exact(8).enumerate() {
                    let scale = f32::from_le_bytes(pair[0..4].try_into().unwrap());
                    let zero = f32::from_le_bytes(pair[4..8].try_into().unwrap());
                    if !(scale.is_finite() && scale > 0.0) {
                        return Err(format!("row {r}: invalid int8 scale {scale}"));
                    }
                    if zero.to_bits() != 0 {
                        return Err(format!(
                            "row {r}: non-zero int8 zero point {zero} (reserved, must be 0.0)"
                        ));
                    }
                    scales.push(scale);
                }
                let code_bytes = cur.take_bytes(count as u64, "int8 code block")?;
                let codes: Vec<i8> = code_bytes.iter().map(|&b| b as i8).collect();
                let sumsqs =
                    (0..n).map(|r| qkernels::sumsq_i8(&codes[r * dim..(r + 1) * dim])).collect();
                QuantTable::Int8 { codes, scales, sumsqs }
            }
        };

        let vec_bytes = cur.take_bytes(count as u64 * 4, "vector block")?;
        let vectors: Vec<f32> =
            vec_bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        if cur.pos != payload.len() {
            return Err(format!("{} trailing bytes after vector block", payload.len() - cur.pos));
        }
        let mut store = Self::new(vectors, dim, Some(ids), meta).map_err(|e| e.to_string())?;
        store.quant = quant;
        Ok(store)
    }
}

/// A query prepared for repeated scoring against one store's precision:
/// the quantize-once half of every fused distance evaluation.
///
/// [`EmbeddingStore::probe_for_vector`] quantizes an external query;
/// [`EmbeddingStore::probe_for_row`] borrows a row's own stored codes so
/// row-vs-row scoring (index build, extension, WAL replay) never
/// re-rounds anything. `Cow` keeps the row path allocation-free for int8.
#[derive(Debug, Clone)]
pub(crate) enum QuantProbe<'a> {
    /// Full-precision query: scoring is exactly [`Scorer::score`].
    F32(Cow<'a, [f32]>),
    /// f16 route: the query's f16-rounded values (so a query compares to
    /// the rows on equal footing) plus their dequantized L2 norm.
    F16 { vals: Cow<'a, [f32]>, norm: f32 },
    /// int8 route: query codes, scale, and exact code sum-of-squares.
    Int8 { codes: Cow<'a, [i8]>, scale: f32, sumsq: i32 },
}

/// Atomically replaces `path` with `bytes`: writes a `.tmp` sibling, fsyncs
/// it, then renames it into place, so a crash mid-write never leaves a
/// half-written file under the final name. Shared by the store writer and
/// the generation layer (`CURRENT` marker, mutation-log rotation).
pub(crate) fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> CoaneResult<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| CoaneError::io(&tmp, e))?;
    f.write_all(bytes).map_err(|e| CoaneError::io(&tmp, e))?;
    f.sync_all().map_err(|e| CoaneError::io(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| CoaneError::io(path, e))?;
    Ok(())
}

/// Bounds-checked little-endian reader over untrusted payload bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_bytes(&mut self, len: u64, what: &str) -> Result<&'a [u8], String> {
        let remaining = (self.bytes.len() - self.pos) as u64;
        if len > remaining {
            return Err(format!("truncated payload: {what} wants {len} bytes, {remaining} left"));
        }
        let s = &self.bytes[self.pos..self.pos + len as usize];
        self.pos += len as usize;
        Ok(s)
    }

    fn take_u64(&mut self) -> Result<u64, String> {
        let b = self.take_bytes(8, "u64 field")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("coane_store_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> EmbeddingStore {
        let emb: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 3.0).collect();
        EmbeddingStore::new(emb, 4, Some(vec![7, 3, 11]), "{\"src\":\"unit\"}").unwrap()
    }

    #[test]
    fn row_access_and_id_map() {
        let s = sample();
        assert_eq!((s.len(), s.dim()), (3, 4));
        assert_eq!(s.row(1), &[-1.0, -0.5, 0.0, 0.5]);
        assert_eq!(s.id_of(2), 11);
        assert_eq!(s.index_of(3), Some(1));
        assert_eq!(s.index_of(99), None);
        assert_eq!(s.vectors().len(), 12);
    }

    #[test]
    fn duplicate_or_misshapen_inputs_rejected() {
        assert!(EmbeddingStore::new(vec![0.0; 8], 4, Some(vec![1, 1]), "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 7], 4, None, "").is_err());
        assert!(EmbeddingStore::new(vec![], 4, None, "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 8], 0, None, "").is_err());
        assert!(EmbeddingStore::new(vec![0.0; 8], 4, Some(vec![1]), "").is_err());
    }

    #[test]
    fn save_open_roundtrip_is_exact() {
        let s = sample();
        let path = tmp("roundtrip.store");
        s.save(&path).unwrap();
        let loaded = EmbeddingStore::open(&path).unwrap();
        assert_eq!(loaded.vectors(), s.vectors());
        assert_eq!(loaded.ids(), s.ids());
        assert_eq!(loaded.dim(), s.dim());
        assert_eq!(loaded.meta(), s.meta());
    }
}
