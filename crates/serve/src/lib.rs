//! # coane-serve — the online serving layer
//!
//! Everything after training: a trained embedding matrix becomes a
//! versioned, CRC-checked binary [`EmbeddingStore`]; a deterministic
//! [`HnswIndex`] is built over it in parallel on the workspace thread pool;
//! and a [`QueryEngine`] answers three query classes — approximate/exact
//! kNN, batch link scoring (through the exact scorer path the offline
//! evaluation uses), and inductive encoding of unseen attributed nodes via
//! the trained model's no-grad forward. [`http`] wraps the engine in a
//! std-only HTTP/1.1 keep-alive JSON server whose [`batch`] micro-batcher
//! coalesces concurrent requests into single kernel passes, with per-class
//! load shedding (429 + `Retry-After`) once the admission queue saturates.
//!
//! The workspace determinism contract extends to serving: store bytes,
//! index structure, and every query answer are bit-identical for a given
//! seed at any thread count. The recall/determinism integration tests in
//! `tests/` lock this down.

pub mod batch;
pub mod engine;
pub mod hnsw;
pub mod http;
pub mod store;

pub use batch::MicroBatcher;
pub use engine::{
    EngineLimits, InductiveContext, KnnAnswer, KnnParams, KnnTarget, Permit, QueryClass,
    QueryEngine, UnseenNode,
};
pub use hnsw::{knn_exact, knn_exact_batch, ExactIndex, Hit, HnswConfig, HnswIndex};
pub use http::{http_request, HttpClient, HttpServer, ServerConfig};
pub use store::{EmbeddingStore, STORE_FORMAT_VERSION, STORE_MAGIC};
