//! # coane-serve — the online serving layer
//!
//! Everything after training: a trained embedding matrix becomes a
//! versioned, CRC-checked binary [`EmbeddingStore`]; a deterministic
//! [`HnswIndex`] is built over it in parallel on the workspace thread pool;
//! and a [`QueryEngine`] answers four query classes — approximate/exact
//! kNN, batch link scoring (through the exact scorer path the offline
//! evaluation uses), inductive encoding of unseen attributed nodes via
//! the trained model's no-grad forward, and live mutations (upserts and
//! tombstone deletes). [`http`] wraps the engine in a std-only HTTP/1.1
//! keep-alive JSON server whose [`batch`] micro-batcher coalesces
//! concurrent requests into single kernel passes, with per-class load
//! shedding (429 + `Retry-After`) once the admission queue saturates.
//!
//! Mutable servers journal every acked mutation to a CRC-checked
//! write-ahead log ([`mutlog`]) and fold the log into fresh on-disk
//! *generations* in a background compaction thread ([`generation`]):
//! readers pin an immutable [`GenerationView`] per query round and are
//! never blocked by writers or compaction, and a `kill -9` at any instant
//! recovers exactly the acked prefix — falling back to the previous
//! generation when the current one is damaged.
//!
//! The workspace determinism contract extends to serving: store bytes,
//! index structure, WAL bytes, compacted generations, and every query
//! answer are bit-identical for a given seed at any thread count. The
//! recall/determinism/replay integration tests in `tests/` lock this down.

pub mod batch;
pub mod engine;
pub mod generation;
pub mod hnsw;
pub mod http;
pub mod mutlog;
pub mod store;

pub use batch::MicroBatcher;
pub use coane_nn::Precision;
pub use engine::{
    EngineLimits, InductiveContext, KnnAnswer, KnnParams, KnnTarget, MutationAck, Permit,
    QueryClass, QueryEngine, UnseenNode, UpsertItem, UpsertSource,
};
pub use generation::{
    GenerationManager, GenerationView, MutationConfig, MutationStats, RecoveryReport, ViewStamp,
};
pub use hnsw::{knn_exact, knn_exact_batch, ExactIndex, Hit, HnswConfig, HnswIndex};
pub use http::{http_request, HttpClient, HttpServer, ServerConfig};
pub use mutlog::{MutLog, MutOp, MutRecord, WalReplay, WAL_FORMAT_VERSION, WAL_MAGIC};
pub use store::{EmbeddingStore, STORE_FORMAT_VERSION, STORE_FORMAT_VERSION_QUANT, STORE_MAGIC};
