//! # coane-serve — the online serving layer
//!
//! Everything after training: a trained embedding matrix becomes a
//! versioned, CRC-checked binary [`EmbeddingStore`]; a deterministic
//! [`HnswIndex`] is built over it in parallel on the workspace thread pool;
//! and a [`QueryEngine`] answers three query classes — approximate/exact
//! kNN, batch link scoring (through the exact scorer path the offline
//! evaluation uses), and inductive encoding of unseen attributed nodes via
//! the trained model's no-grad forward. [`http`] wraps the engine in a
//! std-only HTTP/1.1 JSON server.
//!
//! The workspace determinism contract extends to serving: store bytes,
//! index structure, and every query answer are bit-identical for a given
//! seed at any thread count. The recall/determinism integration tests in
//! `tests/` lock this down.

pub mod engine;
pub mod hnsw;
pub mod http;
pub mod store;

pub use engine::{
    EngineLimits, InductiveContext, KnnAnswer, KnnParams, KnnTarget, QueryEngine, UnseenNode,
};
pub use hnsw::{knn_exact, Hit, HnswConfig, HnswIndex};
pub use http::{http_request, HttpServer, ServerConfig};
pub use store::{EmbeddingStore, STORE_FORMAT_VERSION, STORE_MAGIC};
