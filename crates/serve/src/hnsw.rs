//! Deterministic HNSW approximate-nearest-neighbor index over an
//! [`EmbeddingStore`](crate::EmbeddingStore).
//!
//! ## Determinism contract
//!
//! Like every kernel in this workspace, the index is **bit-identical at any
//! thread count**:
//!
//! - Level assignment is a pure function of `(seed, row index)` through the
//!   vendored ChaCha8 — no shared RNG stream to race on.
//! - Construction is *generational*: rows are inserted in index order, but
//!   grouped into generations whose boundaries depend only on the row count
//!   (1, 1, 2, 4, … capped at [`HnswConfig::max_generation`]). Within a
//!   generation, every row's candidate search runs **read-only against the
//!   graph frozen at the previous generation boundary** — those searches are
//!   embarrassingly parallel on [`coane_nn::pool`] and independent of
//!   scheduling. Linking (the only mutation) then replays sequentially in
//!   row order.
//! - All candidate orderings break float ties by row index via
//!   [`f32::total_cmp`]-based comparison, so no ordering ever depends on an
//!   unstable sort or hash-map iteration.
//!
//! The price of frozen-generation searches is that rows inserted in the same
//! generation cannot select each other as neighbors at insert time (they can
//! still be linked later as reverse edges never arise; coverage comes from
//! the doubling schedule keeping generations small relative to the inserted
//! prefix). The recall test in `tests/hnsw.rs` pins the resulting quality:
//! recall@10 ≥ 0.95 against brute force on a seeded 2k-node fixture.

use coane_nn::sim::{norm, score_block};
use coane_nn::{pool, Matrix, Precision, Scorer};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::store::{EmbeddingStore, QuantProbe};

/// HNSW build/search parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbors per node on layers > 0 (layer 0 allows `2·m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Default candidate-list width during search (raised to `k` when the
    /// caller asks for more results than this).
    pub ef_search: usize,
    /// Seed for the per-row level assignment.
    pub seed: u64,
    /// Largest generation size during construction; smaller values tighten
    /// graph quality (searches see a fresher graph), larger values expose
    /// more build parallelism. Purely a build-schedule knob — the result is
    /// bit-identical for any thread count either way, but *different*
    /// `max_generation` values produce different (equally valid) graphs.
    pub max_generation: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 16, ef_construction: 128, ef_search: 64, seed: 42, max_generation: 64 }
    }
}

/// An (id, score)-style search hit: `index` is the store row, `score` the
/// similarity under the query's scorer (greater = more similar).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Store row index.
    pub index: u32,
    /// Similarity score (greater is more similar).
    pub score: f32,
}

/// Hierarchical navigable-small-world graph over store rows.
///
/// The scorer is fixed at build time: HNSW's navigability depends on the
/// metric the edges were chosen under, so queries use the same scorer.
#[derive(Clone, Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    scorer: Scorer,
    /// `levels[v]` = highest layer row `v` appears on.
    levels: Vec<u8>,
    /// `layers[l][v]` = neighbor lists of row `v` on layer `l` (empty when
    /// `levels[v] < l`).
    layers: Vec<Vec<Vec<u32>>>,
    /// Entry point: a row on the top layer.
    entry: u32,
}

/// Max layer count; `floor(-ln(u) / ln(m))` virtually never exceeds this.
const MAX_LEVEL: usize = 24;

/// Deterministic per-row level: ChaCha8 keyed by `(seed, row)` drives the
/// standard exponential layer assignment with multiplier `1/ln(m)`.
fn level_for(seed: u64, row: u64, m: usize) -> u8 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // 53 high bits → uniform in (0, 1]; the +1 offset excludes exact zero.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    let ml = 1.0 / (m.max(2) as f64).ln();
    ((-u.ln() * ml) as usize).min(MAX_LEVEL) as u8
}

/// Distance = negated similarity, so smaller is closer under every scorer.
/// All graph scoring goes through [`EmbeddingStore::quant_score`]: on an
/// f32 store that is exactly `-scorer.score(probe, row)` (bit-identical to
/// the pre-quantization behavior), and on an f16/int8 store it is the
/// fused quantized kernel with the same determinism contract.
#[inline]
fn dist(store: &EmbeddingStore, scorer: Scorer, probe: &QuantProbe<'_>, row: u32) -> f32 {
    -store.quant_score(scorer, probe, row as usize)
}

/// Total order on (distance, row) pairs: by distance, then row index. Using
/// `total_cmp` keeps NaNs ordered instead of poisoning a sort.
#[inline]
fn by_dist(a: &(f32, u32), b: &(f32, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

impl HnswIndex {
    /// Builds the index over every row of `store` in parallel on the
    /// workspace pool. Bit-identical for any thread count.
    pub fn build(store: &EmbeddingStore, scorer: Scorer, config: HnswConfig) -> Self {
        let n = store.len();
        let m = config.m.max(2);
        let levels: Vec<u8> = (0..n as u64).map(|v| level_for(config.seed, v, m)).collect();
        let max_level = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut index = Self {
            config: HnswConfig { m, ..config },
            scorer,
            levels,
            layers: vec![vec![Vec::new(); n]; max_level + 1],
            entry: 0,
        };

        // Generation boundaries: 1, 1, 2, 4, 8, … capped. Depends only on n.
        let mut start = 0usize;
        let mut gen = 1usize;
        let mut inserted = 0usize; // rows visible to frozen searches
        while start < n {
            let end = (start + gen).min(n);
            // Phase 1 — parallel, read-only candidate searches against the
            // graph as of `inserted` rows. Each row writes only its own slot.
            let candidates: Vec<Vec<Vec<(f32, u32)>>> = pool::parallel_map(end - start, |k| {
                let v = (start + k) as u32;
                index.insert_candidates(store, v, inserted)
            });
            // Phase 2 — sequential linking in row order.
            for (k, cands) in candidates.into_iter().enumerate() {
                index.link(store, (start + k) as u32, cands);
            }
            inserted = end;
            start = end;
            gen = (gen * 2).min(index.config.max_generation.max(1));
        }
        index
    }

    /// Incremental insertion for the live-mutation path: appends rows
    /// `self.len()..store.len()` to the graph, **one row per generation**
    /// (each row's candidate search sees every previously inserted row).
    ///
    /// One-at-a-time insertion is what makes the mutation subsystem's
    /// replay-equality contract hold: the graph after inserting rows
    /// `a..c` is identical whether the range arrived as one `extend` call,
    /// row by row, or split anywhere in between (including across a crash
    /// and restart), because no generation boundary ever depends on how
    /// the stream was batched. Levels stay the same pure
    /// `(seed, row)` ChaCha8 function the batch build uses, so an index
    /// grown by `extend` and one built over the same rows assign identical
    /// layers — only the edge sets differ (extend's searches see a fresher
    /// graph than the doubling schedule's frozen generations).
    pub fn extend(&mut self, store: &EmbeddingStore) {
        let n = store.len();
        while self.levels.len() < n {
            let v = self.levels.len();
            let level = level_for(self.config.seed, v as u64, self.config.m) as usize;
            self.levels.push(level as u8);
            for layer in &mut self.layers {
                layer.push(Vec::new());
            }
            while self.layers.len() <= level {
                self.layers.push(vec![Vec::new(); v + 1]);
            }
            let candidates = self.insert_candidates(store, v as u32, v);
            self.link(store, v as u32, candidates);
        }
    }

    /// Number of rows the graph covers (rows `>= len()` of a grown store
    /// are unknown to it until [`HnswIndex::extend`] runs).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// The similarity scorer the graph was built under.
    pub fn scorer(&self) -> Scorer {
        self.scorer
    }

    /// Neighbor lists of `row` per layer, for tests and diagnostics.
    pub fn neighbors(&self, row: u32) -> Vec<&[u32]> {
        self.layers.iter().map(|layer| layer[row as usize].as_slice()).collect()
    }

    /// Total directed edge count across all layers.
    pub fn num_edges(&self) -> usize {
        self.layers.iter().map(|l| l.iter().map(Vec::len).sum::<usize>()).sum()
    }

    /// Greedy candidate search for inserting `v`, seeing only rows
    /// `< frozen`. Returns one candidate list per layer `0..=level(v)`
    /// (outer index = layer).
    fn insert_candidates(
        &self,
        store: &EmbeddingStore,
        v: u32,
        frozen: usize,
    ) -> Vec<Vec<(f32, u32)>> {
        let node_level = self.levels[v as usize] as usize;
        if frozen == 0 {
            return vec![Vec::new(); node_level + 1];
        }
        // The inserted row probes with its *own* stored codes, so build and
        // replay scoring is an exact function of the code table (for int8,
        // pure integer arithmetic — ISA- and thread-invariant for free).
        let q = store.probe_for_row(v as usize);
        let top = self.levels[self.entry as usize] as usize;
        let mut ep = self.entry;
        let mut ep_d = dist(store, self.scorer, &q, ep);
        // Greedy descent through layers above the node's level.
        for l in (node_level + 1..=top).rev() {
            (ep, ep_d) = self.greedy_step(store, &q, ep, ep_d, l, frozen);
        }
        // Full beam search on each layer the node joins.
        let mut out = vec![Vec::new(); node_level + 1];
        for l in (0..=node_level.min(top)).rev() {
            let found =
                self.search_layer(store, &q, (ep, ep_d), l, self.config.ef_construction, frozen);
            if let Some(&(d, e)) = found.first() {
                (ep, ep_d) = (e, d);
            }
            out[l] = found;
        }
        out
    }

    /// Greedy hill-climb to the locally closest node on `layer`.
    fn greedy_step(
        &self,
        store: &EmbeddingStore,
        q: &QuantProbe<'_>,
        mut ep: u32,
        mut ep_d: f32,
        layer: usize,
        frozen: usize,
    ) -> (u32, f32) {
        loop {
            let mut improved = false;
            for &u in &self.layers[layer][ep as usize] {
                if (u as usize) >= frozen {
                    continue;
                }
                let d = dist(store, self.scorer, q, u);
                if by_dist(&(d, u), &(ep_d, ep)).is_lt() {
                    (ep, ep_d) = (u, d);
                    improved = true;
                }
            }
            if !improved {
                return (ep, ep_d);
            }
        }
    }

    /// Classic `SEARCH-LAYER`: beam search with candidate list width `ef`,
    /// restricted to rows `< frozen`. Returns hits sorted by (distance,
    /// row) ascending.
    fn search_layer(
        &self,
        store: &EmbeddingStore,
        q: &QuantProbe<'_>,
        entry: (u32, f32),
        layer: usize,
        ef: usize,
        frozen: usize,
    ) -> Vec<(f32, u32)> {
        let (ep, ep_d) = entry;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // BinaryHeap needs Ord; wrap (dist, row) in a total-order newtype.
        #[derive(PartialEq)]
        struct Key(f32, u32);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                by_dist(&(self.0, self.1), &(other.0, other.1))
            }
        }

        let mut visited = vec![false; frozen];
        visited[ep as usize] = true;
        // Min-heap of frontier candidates, max-heap of current best `ef`.
        let mut frontier: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        let mut best: BinaryHeap<Key> = BinaryHeap::new();
        frontier.push(Reverse(Key(ep_d, ep)));
        best.push(Key(ep_d, ep));

        while let Some(Reverse(Key(cd, c))) = frontier.pop() {
            let worst = best.peek().expect("best is never empty").0;
            if cd > worst && best.len() >= ef {
                break;
            }
            for &u in &self.layers[layer][c as usize] {
                if (u as usize) >= frozen || visited[u as usize] {
                    continue;
                }
                visited[u as usize] = true;
                let d = dist(store, self.scorer, q, u);
                if best.len() < ef || d < best.peek().expect("non-empty").0 {
                    frontier.push(Reverse(Key(d, u)));
                    best.push(Key(d, u));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, u32)> = best.into_iter().map(|Key(d, u)| (d, u)).collect();
        out.sort_unstable_by(by_dist);
        out
    }

    /// Sequential link phase for row `v`: pick up to `M` neighbors per
    /// layer from the phase-1 candidates, add reverse edges, and shrink any
    /// list that overflows its cap. Promotes `v` to entry point if it tops
    /// the hierarchy.
    fn link(&mut self, store: &EmbeddingStore, v: u32, candidates: Vec<Vec<(f32, u32)>>) {
        let node_level = self.levels[v as usize] as usize;
        for (l, mut cands) in candidates.into_iter().enumerate() {
            cands.truncate(self.max_degree(l));
            for &(_, u) in &cands {
                self.layers[l][v as usize].push(u);
                self.layers[l][u as usize].push(v);
                if self.layers[l][u as usize].len() > self.max_degree(l) {
                    self.shrink(store, l, u);
                }
            }
        }
        if node_level > self.levels[self.entry as usize] as usize || v == 0 {
            self.entry = v;
        }
    }

    /// Neighbor cap on `layer`: `2·m` on the ground layer, `m` above.
    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Re-selects the closest `max_degree` neighbors of `u` on `layer`.
    /// Called only from the sequential link phase, so mutation order is
    /// deterministic. Uses stored-row distances (not query distances), with
    /// the usual (distance, row) total order.
    fn shrink(&mut self, store: &EmbeddingStore, layer: usize, u: u32) {
        let cap = self.max_degree(layer);
        let list = std::mem::take(&mut self.layers[layer][u as usize]);
        let base = store.probe_for_row(u as usize);
        let mut scored: Vec<(f32, u32)> =
            list.into_iter().map(|w| (dist(store, self.scorer, &base, w), w)).collect();
        scored.sort_unstable_by(by_dist);
        scored.truncate(cap);
        self.layers[layer][u as usize] = scored.into_iter().map(|(_, w)| w).collect();
    }

    /// kNN search: the `k` most similar store rows to `query`, sorted by
    /// score descending (ties by row index). `ef` defaults to
    /// `max(ef_search, k)`.
    pub fn knn(&self, store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), store.dim(), "query dimension mismatch");
        let n = store.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let probe = store.probe_for_vector(query);
        let ef = self.config.ef_search.max(k);
        let top = self.levels[self.entry as usize] as usize;
        let mut ep = self.entry;
        let mut ep_d = dist(store, self.scorer, &probe, ep);
        for l in (1..=top).rev() {
            (ep, ep_d) = self.greedy_step(store, &probe, ep, ep_d, l, n);
        }
        let found = self.search_layer(store, &probe, (ep, ep_d), 0, ef, n);
        found.into_iter().take(k).map(|(d, u)| Hit { index: u, score: -d }).collect()
    }
}

/// Exact brute-force kNN over every store row, parallel on the pool and
/// bit-identical at any thread count: per-row scores are computed into
/// disjoint slots, then selected with a total-order sort. The ground truth
/// for recall tests and the baseline the serve bench compares against.
pub fn knn_exact(store: &EmbeddingStore, query: &[f32], k: usize, scorer: Scorer) -> Vec<Hit> {
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    let n = store.len();
    let mut scores = vec![0.0f32; n];
    pool::parallel_chunks(&mut scores, 256, |start, slab| {
        for (off, s) in slab.iter_mut().enumerate() {
            *s = scorer.score(query, store.row(start + off));
        }
    });
    let mut order: Vec<(f32, u32)> = scores.into_iter().zip(0..n as u32).collect();
    order.sort_unstable_by(|a, b| by_dist(&(-a.0, a.1), &(-b.0, b.1)));
    order.into_iter().take(k).map(|(s, u)| Hit { index: u, score: s }).collect()
}

/// Store-row tile height for [`knn_exact_batch`]: bounds the score block to
/// `queries × EXACT_TILE` floats (≤ 2 MB at the engine's max batch) while
/// each tile is still large enough to keep the blocked matmul kernel busy.
const EXACT_TILE: usize = 2048;

/// Batched exact kNN: scores *all* queries against the store through the
/// blocked [`score_block`] kernel (one matmul per store tile instead of one
/// sequential dot chain per pair), returning per-query hits sorted by score
/// descending, ties by row index — the same total order as [`knn_exact`].
///
/// ## Determinism
///
/// Bit-identical for any batch composition and any thread count: every
/// score is a pure function of its (query row, store row) pair, and tile
/// boundaries depend only on the store length. Selection keeps the exact
/// top-`k` of the union after each tile under the strict (−score, row)
/// total order, so it is also invariant to tiling. Note the scores are the
/// multi-lane kernel's — *reassociated* relative to [`knn_exact`]'s
/// sequential [`Scorer::score`] chains, so the two entry points agree on
/// ranking quality but not bitwise; `knn_exact` stays the recall ground
/// truth.
pub fn knn_exact_batch(
    store: &EmbeddingStore,
    queries: &[&[f32]],
    k: usize,
    scorer: Scorer,
) -> Vec<Vec<Hit>> {
    let dim = store.dim();
    for q in queries {
        assert_eq!(q.len(), dim, "query dimension mismatch");
    }
    let m = queries.len();
    let n = store.len();
    if m == 0 || n == 0 || k == 0 {
        return vec![Vec::new(); m];
    }
    let mut flat = Vec::with_capacity(m * dim);
    for q in queries {
        flat.extend_from_slice(q);
    }
    let mut best: Vec<Vec<(f32, u32)>> = vec![Vec::with_capacity(k + EXACT_TILE); m];
    let mut tile0 = 0usize;
    while tile0 < n {
        let rows = EXACT_TILE.min(n - tile0);
        let tile = &store.vectors()[tile0 * dim..(tile0 + rows) * dim];
        let block = score_block(scorer, &flat, m, tile, rows, dim);
        for (qi, cand) in best.iter_mut().enumerate() {
            cand.extend(
                block[qi * rows..(qi + 1) * rows]
                    .iter()
                    .enumerate()
                    .map(|(off, &s)| (s, (tile0 + off) as u32)),
            );
            cand.sort_unstable_by(|a, b| by_dist(&(-a.0, a.1), &(-b.0, b.1)));
            cand.truncate(k);
        }
        tile0 += rows;
    }
    best.into_iter()
        .map(|c| c.into_iter().map(|(s, u)| Hit { index: u, score: s }).collect())
        .collect()
}

/// Exact top-`k` of a score stream under the strict (−score, row) total
/// order — the same order every kNN entry point ranks by. An insertion list
/// instead of a full sort: for `k ≪ n` almost every candidate loses to the
/// current worst survivor and costs one comparison, which is what lets the
/// batched exact path spend its time in the matmul rather than in sorting.
/// Deterministic by construction — the result is the unique top-`k` of a
/// total order, independent of how the stream was produced or batched.
fn topk(scores: impl Iterator<Item = f32>, k: usize) -> Vec<Hit> {
    let mut top: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
    for (i, s) in scores.enumerate() {
        let cand = (-s, i as u32);
        if top.len() == k {
            if by_dist(&cand, top.last().expect("k > 0")) != std::cmp::Ordering::Less {
                continue;
            }
            top.pop();
        }
        let pos = top.partition_point(|t| by_dist(t, &cand) == std::cmp::Ordering::Less);
        top.insert(pos, cand);
    }
    top.into_iter().map(|(d, u)| Hit { index: u, score: -d }).collect()
}

/// Pre-transposed store for the batched exact path.
///
/// [`knn_exact_batch`] streams `n×dim` store tiles through
/// [`score_block`]'s nt kernel — fine for one-off calls, but each score is
/// still a short dot chain, so coalescing queries barely amortizes anything.
/// `ExactIndex` pays the transpose once (`dim×n`, doubling the store's
/// resident size) so that `m` concurrent queries become a single
/// `m×dim · dim×n` product through the register-tiled [`Matrix::matmul`] —
/// the same multiversioned kernel the trainer runs — where the store
/// streams through cache once per *batch* instead of once per query. This
/// is what turns cross-request coalescing into real throughput: measured on
/// one core, per-query kernel time drops ~3–4× between batch 1 and batch 6.
///
/// ## Determinism
///
/// Bit-identical for any batch composition and any thread count:
/// [`Matrix::matmul`] preserves exact k-ascending summation per element, so
/// each score is a pure function of its (query, store row) pair; cosine
/// folds `1/(‖q‖ + 1e-12)` into the query and `1/(‖v‖ + 1e-12)` into the
/// selection scan, both pure per side. Selection via [`topk`] is the unique
/// top-`k` of a strict total order. Like [`knn_exact_batch`], scores are
/// *reassociated* relative to [`knn_exact`]'s sequential chains (and
/// cosine's stabilizer is folded per factor rather than added to the norm
/// product), so rankings agree but bytes differ across entry points —
/// `knn_exact` stays the recall ground truth.
pub struct ExactIndex(ExactImpl);

enum ExactImpl {
    /// f32 store: pre-transposed matmul route (see above).
    F32 {
        /// `dim×n` transpose of the store, so `queries · store_t` is one
        /// matmul.
        store_t: Matrix,
        /// Per-row `1/(‖v‖ + 1e-12)` for the cosine route (zero rows
        /// score 0).
        inv_norms: Vec<f32>,
    },
    /// Quantized store: no side table at all — the brute-force path is a
    /// fused streaming scan of the code table
    /// ([`EmbeddingStore::quant_scores_block`]), which reads 2–4× fewer
    /// bytes per row than the f32 matmul and is exactly the
    /// memory-bandwidth reduction quantization buys.
    Quant,
}

impl ExactIndex {
    /// Builds the brute-force accelerator matching the store's precision:
    /// the `dim×n` transpose + inverse norms for f32, nothing for a
    /// quantized store (its scan reads the code table in place).
    pub fn build(store: &EmbeddingStore) -> Self {
        if store.precision() != Precision::F32 {
            return Self(ExactImpl::Quant);
        }
        let (n, dim) = (store.len(), store.dim());
        let data = store.vectors();
        let mut t = vec![0.0f32; n * dim];
        for r in 0..n {
            for (c, &v) in data[r * dim..(r + 1) * dim].iter().enumerate() {
                t[c * n + r] = v;
            }
        }
        let inv_norms = (0..n).map(|r| 1.0 / (norm(store.row(r)) + 1e-12)).collect();
        Self(ExactImpl::F32 { store_t: Matrix::from_vec(dim, n, t), inv_norms })
    }

    /// Batched exact kNN (exact over the store's *scoring table*: full
    /// f32 precision on an f32 store, quantized-score brute force on an
    /// f16/int8 store, where the engine's rerank stage restores exact f32
    /// ordering). Per-query hits sorted by score descending, ties by row
    /// index. On the f32 matmul route, dot and cosine take the fast path
    /// and Euclidean falls back to [`knn_exact_batch`] (the L2 expansion
    /// `‖a‖² − 2⟨a,b⟩ + ‖b‖²` would reassociate per batch); the quantized
    /// scan handles all three scorers in one fused kernel.
    ///
    /// # Panics
    /// Panics if a query's dimension disagrees with the store's.
    pub fn knn(
        &self,
        store: &EmbeddingStore,
        queries: &[&[f32]],
        k: usize,
        scorer: Scorer,
    ) -> Vec<Vec<Hit>> {
        let ExactImpl::F32 { store_t, inv_norms } = &self.0 else {
            return Self::knn_quant(store, queries, k, scorer);
        };
        if scorer == Scorer::Euclidean {
            return knn_exact_batch(store, queries, k, scorer);
        }
        let dim = store.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimension mismatch");
        }
        let (m, n) = (queries.len(), store.len());
        if m == 0 || n == 0 || k == 0 {
            return vec![Vec::new(); m];
        }
        let mut flat = Vec::with_capacity(m * dim);
        for q in queries {
            match scorer {
                Scorer::Dot => flat.extend_from_slice(q),
                Scorer::Cosine => {
                    let inv_qn = 1.0 / (norm(q) + 1e-12);
                    flat.extend(q.iter().map(|&x| x * inv_qn));
                }
                Scorer::Euclidean => unreachable!("handled above"),
            }
        }
        let scores = Matrix::from_vec(m, dim, flat).matmul(store_t);
        pool::parallel_map(m, |i| {
            let row = scores.row(i);
            match scorer {
                Scorer::Cosine => topk(row.iter().zip(inv_norms).map(|(&s, &inv)| s * inv), k),
                _ => topk(row.iter().copied(), k),
            }
        })
    }

    /// Brute force over a quantized store: one fused code-table scan per
    /// query (the scan itself parallelizes over row chunks on the pool, so
    /// queries run sequentially here — no nested parallelism). Every score
    /// is a pure function of its (query, row) pair, so results are
    /// bit-identical at any thread count and ISA level.
    fn knn_quant(
        store: &EmbeddingStore,
        queries: &[&[f32]],
        k: usize,
        scorer: Scorer,
    ) -> Vec<Vec<Hit>> {
        let dim = store.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimension mismatch");
        }
        if queries.is_empty() || store.is_empty() || k == 0 {
            return vec![Vec::new(); queries.len()];
        }
        let mut scores = vec![0.0f32; store.len()];
        queries
            .iter()
            .map(|q| {
                let probe = store.probe_for_vector(q);
                store.quant_scores_block(scorer, &probe, &mut scores);
                topk(scores.iter().copied(), k)
            })
            .collect()
    }
}
