//! The CRC-checked write-ahead mutation log (WAL) behind live upserts and
//! deletes.
//!
//! Every mutation is encoded, appended, and fsynced here **before** it is
//! applied to the in-memory generation view or acknowledged to the client,
//! so an acknowledged mutation is durable: replaying the log over the
//! generation's base store reproduces the acknowledged state exactly (the
//! log records resulting *vectors*, never attribute payloads, so replay
//! needs no model).
//!
//! ## File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"COANEWAL"
//! 8       4     format version (u32 LE)
//! 12      8     generation this log extends (u64 LE)
//! 20      8     base sequence number: records carry base_seq+1.. (u64 LE)
//! 28      ...   records
//! ```
//!
//! Each record is independently framed and checksummed:
//!
//! ```text
//! payload_len u32 · crc32(payload) u32 · payload
//! payload = seq u64 · op u8 · id u64 · [count u32 · count × f32]  (upsert)
//!           seq u64 · op u8 · id u64                              (delete)
//! ```
//!
//! Sequence numbers are dense and ascending (`base_seq+1, base_seq+2, …`),
//! which lets replay detect a log that does not belong to its base store.
//!
//! ## Damage handling
//!
//! Per-record framing means a torn tail (crash mid-append) or a corrupted
//! record invalidates only the *suffix* from that record on:
//! [`MutLog::replay`] returns the longest valid prefix plus a damage
//! description, and [`MutLog::recover`] truncates the file back to that
//! prefix so appends resume cleanly. A damaged **header** (bad magic,
//! unsupported version, truncation into the first 28 bytes) means nothing
//! in the file can be trusted — that is a typed [`CoaneError::MutLog`]
//! (exit code 10), and the generation layer falls back to the previous
//! generation.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use coane_core::checkpoint::crc32;
use coane_error::{CoaneError, CoaneResult};

use crate::store::atomic_write_bytes;

/// Magic bytes identifying a CoANE mutation log.
pub const WAL_MAGIC: &[u8; 8] = b"COANEWAL";
/// On-disk mutation-log format version this build reads and writes.
pub const WAL_FORMAT_VERSION: u32 = 1;
/// Header size in bytes (magic + version + generation + base sequence).
const WAL_HEADER_LEN: usize = 28;
/// Sanity bound on a single record payload decoded from untrusted bytes.
const MAX_RECORD_LEN: u32 = 1 << 28;

const OP_UPSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One mutation operation, as logged and replayed.
#[derive(Clone, Debug, PartialEq)]
pub enum MutOp {
    /// Insert a new row (unknown id) or overwrite an existing row's vector
    /// in place (known id; a tombstoned id is revived).
    Upsert {
        /// External node id.
        id: u64,
        /// The resulting embedding vector (store dimension).
        vector: Vec<f32>,
    },
    /// Tombstone an id: filtered from results immediately, row reclaimed at
    /// the next compaction.
    Delete {
        /// External node id (must be live).
        id: u64,
    },
}

/// One logged mutation: a dense ascending sequence number plus the op.
#[derive(Clone, Debug, PartialEq)]
pub struct MutRecord {
    /// Global mutation sequence number (1-based across generations).
    pub seq: u64,
    /// The operation.
    pub op: MutOp,
}

/// What replaying a mutation log recovers.
#[derive(Debug)]
pub struct WalReplay {
    /// Generation this log extends (from the header).
    pub generation: u64,
    /// Sequence number of the generation's base store; records carry
    /// `base_seq+1..`.
    pub base_seq: u64,
    /// The valid record prefix, in sequence order.
    pub records: Vec<MutRecord>,
    /// `Some(description)` when a torn or corrupted suffix was discarded.
    pub damage: Option<String>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
}

/// An open, appendable mutation log.
pub struct MutLog {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl std::fmt::Debug for MutLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutLog").field("path", &self.path).field("bytes", &self.bytes).finish()
    }
}

fn encode_record(r: &MutRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(21);
    payload.extend_from_slice(&r.seq.to_le_bytes());
    match &r.op {
        MutOp::Upsert { id, vector } => {
            payload.push(OP_UPSERT);
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for &v in vector {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        MutOp::Delete { id } => {
            payload.push(OP_DELETE);
            payload.extend_from_slice(&id.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<MutRecord, String> {
    if payload.len() < 17 {
        return Err(format!("record payload too short: {} bytes", payload.len()));
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let op = payload[8];
    let id = u64::from_le_bytes(payload[9..17].try_into().unwrap());
    match op {
        OP_UPSERT => {
            if payload.len() < 21 {
                return Err("upsert record truncated before vector length".into());
            }
            let count = u32::from_le_bytes(payload[17..21].try_into().unwrap()) as usize;
            let rest = &payload[21..];
            if rest.len() != count * 4 {
                return Err(format!(
                    "upsert record vector length mismatch: {count} floats vs {} bytes",
                    rest.len()
                ));
            }
            let vector =
                rest.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            Ok(MutRecord { seq, op: MutOp::Upsert { id, vector } })
        }
        OP_DELETE => {
            if payload.len() != 17 {
                return Err(format!("{} trailing bytes after delete record", payload.len() - 17));
            }
            Ok(MutRecord { seq, op: MutOp::Delete { id } })
        }
        other => Err(format!("unknown mutation opcode {other}")),
    }
}

impl MutLog {
    /// Creates (atomically replaces) the log at `path` with a fresh header
    /// and an optional carried-over record tail, fsynced before the rename —
    /// used at first boot (empty tail) and at generation rotation (the
    /// records past the compaction cut carry into the next generation's
    /// log). A crash mid-create leaves the previous file intact.
    pub fn create(
        path: &Path,
        generation: u64,
        base_seq: u64,
        carry: &[MutRecord],
    ) -> CoaneResult<Self> {
        let mut bytes = Vec::with_capacity(WAL_HEADER_LEN);
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&WAL_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.extend_from_slice(&base_seq.to_le_bytes());
        for r in carry {
            bytes.extend_from_slice(&encode_record(r));
        }
        atomic_write_bytes(path, &bytes)?;
        let file =
            OpenOptions::new().append(true).open(path).map_err(|e| CoaneError::io(path, e))?;
        Ok(Self { file, path: path.to_path_buf(), bytes: bytes.len() as u64 })
    }

    /// Appends `records` and fsyncs. Only after this returns may the
    /// mutations be applied or acknowledged.
    pub fn append(&mut self, records: &[MutRecord]) -> CoaneResult<()> {
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&encode_record(r));
        }
        self.file.write_all(&buf).map_err(|e| CoaneError::io(&self.path, e))?;
        self.file.sync_all().map_err(|e| CoaneError::io(&self.path, e))?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Current log size in bytes (header + records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reads and validates the log at `path`. Header damage (bad magic,
    /// unsupported version, truncation) is a typed [`CoaneError::MutLog`];
    /// record damage (torn tail, CRC mismatch, undecodable or out-of-order
    /// record) stops replay at the valid prefix and is reported in
    /// [`WalReplay::damage`] instead.
    pub fn replay(path: &Path) -> CoaneResult<WalReplay> {
        let bytes = std::fs::read(path).map_err(|e| CoaneError::io(path, e))?;
        if bytes.len() < WAL_HEADER_LEN {
            return Err(CoaneError::mutlog(
                path,
                format!("file too short for header: {} bytes", bytes.len()),
            ));
        }
        if &bytes[0..8] != WAL_MAGIC {
            return Err(CoaneError::mutlog(path, "bad magic: not a CoANE mutation log"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != WAL_FORMAT_VERSION {
            return Err(CoaneError::mutlog(
                path,
                format!(
                    "unsupported mutation-log format version {version} (this build reads version \
                     {WAL_FORMAT_VERSION})"
                ),
            ));
        }
        let generation = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let base_seq = u64::from_le_bytes(bytes[20..28].try_into().unwrap());

        let mut records = Vec::new();
        let mut damage = None;
        let mut pos = WAL_HEADER_LEN;
        let mut expect = base_seq + 1;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 8 {
                damage = Some(format!("torn record framing: {remaining} bytes at offset {pos}"));
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                damage = Some(format!("implausible record length {len} at offset {pos}"));
                break;
            }
            if remaining - 8 < len as usize {
                damage = Some(format!(
                    "torn record payload at offset {pos}: wants {len} bytes, {} left",
                    remaining - 8
                ));
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len as usize];
            let actual_crc = crc32(payload);
            if actual_crc != stored_crc {
                damage = Some(format!(
                    "record CRC32 mismatch at offset {pos}: stored {stored_crc:#010x}, computed \
                     {actual_crc:#010x}"
                ));
                break;
            }
            match decode_payload(payload) {
                Ok(r) if r.seq == expect => {
                    records.push(r);
                    expect += 1;
                }
                Ok(r) => {
                    damage = Some(format!(
                        "out-of-order record at offset {pos}: seq {} where {expect} was expected",
                        r.seq
                    ));
                    break;
                }
                Err(m) => {
                    damage = Some(format!("undecodable record at offset {pos}: {m}"));
                    break;
                }
            }
            pos += 8 + len as usize;
        }
        Ok(WalReplay { generation, base_seq, records, damage, valid_len: pos as u64 })
    }

    /// Replays the log, truncates any damaged suffix back to the valid
    /// prefix, and reopens it for appending. Header damage propagates as a
    /// typed [`CoaneError::MutLog`], like [`MutLog::replay`].
    pub fn recover(path: &Path) -> CoaneResult<(WalReplay, Self)> {
        let replay = Self::replay(path)?;
        let file =
            OpenOptions::new().append(true).open(path).map_err(|e| CoaneError::io(path, e))?;
        if replay.damage.is_some() {
            file.set_len(replay.valid_len).map_err(|e| CoaneError::io(path, e))?;
            file.sync_all().map_err(|e| CoaneError::io(path, e))?;
        }
        let bytes = replay.valid_len;
        Ok((replay, Self { file, path: path.to_path_buf(), bytes }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("coane_mutlog_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records(base_seq: u64, n: usize) -> Vec<MutRecord> {
        (0..n as u64)
            .map(|i| {
                let seq = base_seq + 1 + i;
                let op = if i % 3 == 2 {
                    MutOp::Delete { id: i }
                } else {
                    MutOp::Upsert { id: 100 + i, vector: vec![i as f32, -1.5, 0.25] }
                };
                MutRecord { seq, op }
            })
            .collect()
    }

    #[test]
    fn roundtrip_create_append_replay() {
        let path = tmp("roundtrip.wal");
        let carry = sample_records(7, 2);
        let mut log = MutLog::create(&path, 3, 7, &carry).unwrap();
        let more = sample_records(9, 4);
        log.append(&more).unwrap();
        let replay = MutLog::replay(&path).unwrap();
        assert_eq!(replay.generation, 3);
        assert_eq!(replay.base_seq, 7);
        assert!(replay.damage.is_none(), "{:?}", replay.damage);
        let mut want = carry;
        want.extend(more);
        assert_eq!(replay.records, want);
        assert_eq!(replay.valid_len, log.bytes());
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_and_truncates() {
        let path = tmp("torn.wal");
        let mut log = MutLog::create(&path, 0, 0, &[]).unwrap();
        log.append(&sample_records(0, 3)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (replay, mut reopened) = MutLog::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 2, "last record was torn");
        assert!(replay.damage.is_some());
        // Appending after recovery lands right after the valid prefix.
        reopened.append(&sample_records(2, 1)).unwrap();
        let replay2 = MutLog::replay(&path).unwrap();
        assert!(replay2.damage.is_none(), "{:?}", replay2.damage);
        assert_eq!(replay2.records.len(), 3);
        assert_eq!(replay2.records[2].seq, 3);
    }

    #[test]
    fn crc_flip_stops_at_prefix() {
        let path = tmp("crcflip.wal");
        let mut log = MutLog::create(&path, 0, 0, &[]).unwrap();
        log.append(&sample_records(0, 3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3; // inside the last record's payload
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let replay = MutLog::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        let damage = replay.damage.expect("flip must be reported");
        assert!(damage.contains("CRC32"), "{damage}");
    }

    #[test]
    fn header_damage_is_typed_mutlog_error() {
        let path = tmp("badmagic.wal");
        std::fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00junkjunkjunkjunk").unwrap();
        let err = MutLog::replay(&path).unwrap_err();
        assert_eq!(err.kind(), "mutlog");
        assert_eq!(err.exit_code(), 10);

        let short = tmp("short.wal");
        std::fs::write(&short, b"COANEWAL").unwrap();
        let err = MutLog::replay(&short).unwrap_err();
        assert_eq!(err.kind(), "mutlog");
    }
}
