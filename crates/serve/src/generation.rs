//! Crash-safe generations: the mutable state layer between the query
//! engine and the on-disk [`EmbeddingStore`].
//!
//! ## Shape
//!
//! Readers see an immutable [`GenerationView`] — store + HNSW index +
//! pre-transposed exact index + tombstone mask — behind an
//! `RwLock<Arc<…>>`. Every query pins one view for its whole pass, so
//! `/knn` never blocks on mutations or compaction; a mutation batch builds
//! the *successor* view off to the side and swaps the `Arc` (the write
//! lock is held only for the pointer swap).
//!
//! Mutations are serialized by a writer lock and follow WAL-then-apply:
//! encode → append + fsync to the generation's mutation log
//! ([`crate::mutlog`]) → apply to a cloned view → swap. An acknowledged
//! mutation is therefore durable, and the in-memory state is always
//! `apply(build(base store), logged records)` — the same expression
//! recovery evaluates, which is what makes kill−9 at any instant
//! recoverable to exactly the acknowledged prefix.
//!
//! ## Generation lifecycle (delta → compact → swap → drain)
//!
//! Generation `G` on disk is `gen-G.store` (a normal CRC-checked store
//! file) plus `gen-G.wal` (its delta). When the delta reaches
//! `compact_every` records, a background thread folds the **first**
//! `compact_every` records into the next base — the cut is count-based, so
//! `gen-(G+1).store` is a pure function of `(gen-G.store, log prefix)` and
//! an interrupted compaction re-produces identical bytes after restart.
//! Tombstoned rows are dropped (reclaimed) at this fold. The swap step
//! then, under the writer lock: writes `gen-(G+1).wal` carrying the
//! records past the cut, atomically updates the `CURRENT` marker, rebuilds
//! the live view from the new base + carried tail, and swaps it in.
//! Generation `G` is retained as the fallback until `G+1` in turn retires
//! it (drain), so at most three generations of files ever exist.
//!
//! ## Recovery
//!
//! Boot reads `CURRENT` → generation `G` and loads `gen-G.store` +
//! replayed `gen-G.wal`. A damaged log *tail* is truncated to the valid
//! prefix (crash mid-append loses only the unacknowledged suffix). A
//! damaged store or log *header* fails the whole generation: recovery
//! falls back to generation `G-1`, whose log still carries every record of
//! the interrupted fold window — the next compaction then regenerates the
//! `G` files byte-identically. Only when no generation loads does boot
//! fail, with a typed [`CoaneError::MutLog`] (exit code 10).
//!
//! ## Determinism contract
//!
//! Everything above is deterministic at any thread count and any batch
//! split: record sequence numbers are dense, the live index grows through
//! one-row-at-a-time [`HnswIndex::extend`] (batch-split invariant), a
//! compacted base index is always `HnswIndex::build` over the compacted
//! store, and the compaction cut depends only on the record count. Replays
//! of the same acknowledged mutation stream — live, after restart, or on a
//! fresh server — converge on bit-identical stores, adjacency, and
//! answers.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use coane_error::{CoaneError, CoaneResult};
use coane_nn::{Precision, Scorer};
use coane_obs::Obs;

use crate::hnsw::{ExactIndex, HnswConfig, HnswIndex};
use crate::mutlog::{MutLog, MutOp, MutRecord};
use crate::store::{atomic_write_bytes, EmbeddingStore};

/// Identifies the store state a response was computed against: which
/// generation served it and the last mutation sequence number applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewStamp {
    /// Generation number of the view's base store.
    pub generation: u64,
    /// Last applied mutation sequence number (0 = pristine seed).
    pub seq: u64,
}

/// Configuration of the mutable path.
#[derive(Clone, Debug)]
pub struct MutationConfig {
    /// Directory holding generation stores, mutation logs, and `CURRENT`.
    pub dir: PathBuf,
    /// Fold the delta into the next generation once this many records are
    /// pending.
    pub compact_every: usize,
}

/// Everything loaded during a mutable boot, for operator logging.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Generation the server came up on.
    pub generation: u64,
    /// Last applied sequence number after log replay.
    pub seq: u64,
    /// Records replayed from the generation's mutation log.
    pub replayed: usize,
    /// Whether boot fell back from a damaged newer generation.
    pub fell_back: bool,
    /// Typed-error strings for everything skipped or truncated on the way.
    pub notes: Vec<String>,
}

/// An immutable snapshot of the serving state. Queries pin one view and
/// use it for their whole pass; clones share the underlying store/index.
#[derive(Clone)]
pub struct GenerationView {
    generation: u64,
    seq: u64,
    base_rows: usize,
    store: Arc<EmbeddingStore>,
    index: Arc<HnswIndex>,
    exact: Arc<ExactIndex>,
    /// `dead[row]` = tombstoned (filtered from every result until the row
    /// is reclaimed at compaction or revived by an upsert).
    dead: Vec<bool>,
    n_dead: usize,
}

impl std::fmt::Debug for GenerationView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationView")
            .field("generation", &self.generation)
            .field("seq", &self.seq)
            .field("rows", &self.store.len())
            .field("tombstones", &self.n_dead)
            .finish()
    }
}

impl GenerationView {
    fn from_base(
        generation: u64,
        seq: u64,
        store: Arc<EmbeddingStore>,
        index: Arc<HnswIndex>,
    ) -> Self {
        let n = store.len();
        let exact = Arc::new(ExactIndex::build(&store));
        Self { generation, seq, base_rows: n, store, index, exact, dead: vec![false; n], n_dead: 0 }
    }

    /// Applies `records` in sequence order, producing the successor view.
    /// Pure in `(self, records)`: the appended rows enter the index one at
    /// a time ([`HnswIndex::extend`]), so the result is invariant to how
    /// the record stream was batched. Fails (without side effects) only
    /// when the records contradict the base state — which for CRC-valid
    /// logs means the log does not belong to this store.
    fn apply(&self, records: &[MutRecord]) -> Result<Self, String> {
        if records.is_empty() {
            return Ok(self.clone());
        }
        let mut store = (*self.store).clone();
        let mut index = (*self.index).clone();
        let mut dead = self.dead.clone();
        for r in records {
            match &r.op {
                MutOp::Upsert { id, vector } => {
                    if vector.len() != store.dim() {
                        return Err(format!(
                            "record seq {}: upsert vector has dim {} but the store holds dim {}",
                            r.seq,
                            vector.len(),
                            store.dim()
                        ));
                    }
                    if let Some(row) = store.index_of(*id) {
                        store.set_row(row as usize, vector);
                        dead[row as usize] = false;
                    } else {
                        store.push_row(*id, vector);
                        dead.push(false);
                        index.extend(&store);
                    }
                }
                MutOp::Delete { id } => {
                    let row = store.index_of(*id).ok_or_else(|| {
                        format!("record seq {}: delete of unknown node id {id}", r.seq)
                    })? as usize;
                    if dead[row] {
                        return Err(format!(
                            "record seq {}: delete of already-deleted node id {id}",
                            r.seq
                        ));
                    }
                    dead[row] = true;
                }
            }
        }
        let n_dead = dead.iter().filter(|&&d| d).count();
        if n_dead >= store.len() {
            return Err("mutation stream deletes every row".into());
        }
        let exact = Arc::new(ExactIndex::build(&store));
        let seq = records.last().expect("non-empty").seq;
        Ok(Self {
            generation: self.generation,
            seq,
            base_rows: self.base_rows,
            store: Arc::new(store),
            index: Arc::new(index),
            exact,
            dead,
            n_dead,
        })
    }

    /// The stamp identifying this view.
    pub fn stamp(&self) -> ViewStamp {
        ViewStamp { generation: self.generation, seq: self.seq }
    }

    /// The view's store (base rows followed by delta-appended rows).
    pub fn store(&self) -> &Arc<EmbeddingStore> {
        &self.store
    }

    /// The view's ANN index (covers every store row, including tombstoned
    /// ones — filtering happens at answer demux).
    pub fn index(&self) -> &Arc<HnswIndex> {
        &self.index
    }

    /// The view's pre-transposed exact index.
    pub fn exact(&self) -> &Arc<ExactIndex> {
        &self.exact
    }

    /// Whether `row` is tombstoned.
    #[inline]
    pub fn is_dead(&self, row: usize) -> bool {
        self.dead[row]
    }

    /// Row index of a **live** external id (tombstoned ids read as absent).
    pub fn resolve_live(&self, id: u64) -> Option<u32> {
        self.store.index_of(id).filter(|&r| !self.dead[r as usize])
    }

    /// Number of tombstoned rows.
    pub fn tombstones(&self) -> usize {
        self.n_dead
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_rows(&self) -> usize {
        self.store.len() - self.n_dead
    }

    /// Rows in the generation's base store (delta rows follow them).
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }
}

/// A point-in-time summary of the mutation subsystem for `/stats`.
#[derive(Clone, Copy, Debug)]
pub struct MutationStats {
    /// Whether this server accepts mutations.
    pub mutable: bool,
    /// Current generation number.
    pub generation: u64,
    /// Last applied mutation sequence number.
    pub seq: u64,
    /// Rows in the generation's base store.
    pub base_rows: usize,
    /// Live (queryable) rows.
    pub live_rows: usize,
    /// Tombstoned rows awaiting reclamation.
    pub tombstones: usize,
    /// Records pending in the current generation's log.
    pub pending: usize,
    /// Mutation-log size in bytes (header + records).
    pub wal_bytes: u64,
    /// Compaction threshold (0 on a read-only server).
    pub compact_every: usize,
    /// Precision of the scoring table the ANN path reads.
    pub precision: Precision,
    /// Bytes the ANN scoring path streams per full scan (codes +
    /// quantization parameters; the f32 sidecar is not counted).
    pub store_bytes: usize,
}

struct WriterState {
    /// `None` on a read-only (static) manager.
    wal: Option<MutLog>,
    /// Records since the current base, in sequence order (= log contents).
    records: Vec<MutRecord>,
    /// The current generation's base store.
    base: Arc<EmbeddingStore>,
    base_seq: u64,
    next_seq: u64,
    generation: u64,
    /// A compaction round is between cut and swap.
    compacting: bool,
    /// The last compaction attempt failed; cleared when the next starts.
    stalled: bool,
}

struct Inner {
    view: RwLock<Arc<GenerationView>>,
    writer: Mutex<WriterState>,
    /// Signalled (with the writer lock) whenever compaction state settles.
    idle: Condvar,
    config: Option<MutationConfig>,
    scorer: Scorer,
    hnsw: HnswConfig,
    obs: Obs,
}

/// Owner of the generation lifecycle: hands out views, serializes
/// mutations, and runs the background compactor. Dropping it stops and
/// joins the compactor (pending folds finish first).
pub struct GenerationManager {
    inner: Arc<Inner>,
    trigger: Option<SyncSender<()>>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for GenerationManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationManager").field("mutable", &self.is_mutable()).finish()
    }
}

fn store_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("gen-{generation}.store"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("gen-{generation}.wal"))
}

impl GenerationManager {
    /// A frozen single-generation manager: every view is the seed state and
    /// [`GenerationManager::mutate`] reports the server read-only.
    pub fn new_static(store: EmbeddingStore, index: HnswIndex, obs: Obs) -> Self {
        let scorer = index.scorer();
        let hnsw = index.config().clone();
        let view = GenerationView::from_base(0, 0, Arc::new(store), Arc::new(index));
        let base = Arc::clone(&view.store);
        let inner = Arc::new(Inner {
            view: RwLock::new(Arc::new(view)),
            writer: Mutex::new(WriterState {
                wal: None,
                records: Vec::new(),
                base,
                base_seq: 0,
                next_seq: 1,
                generation: 0,
                compacting: false,
                stalled: false,
            }),
            idle: Condvar::new(),
            config: None,
            scorer,
            hnsw,
            obs,
        });
        Self { inner, trigger: None, compactor: None }
    }

    /// Opens (or initializes) a mutable generation directory. On first boot
    /// the seed store/index become generation 0; otherwise the directory's
    /// `CURRENT` generation is recovered — replaying its mutation log, and
    /// falling back to the previous generation when the current one is
    /// damaged — and the seed state is ignored. Spawns the compactor.
    pub fn open(
        seed_store: EmbeddingStore,
        seed_index: HnswIndex,
        config: MutationConfig,
        obs: Obs,
    ) -> CoaneResult<(Self, RecoveryReport)> {
        if config.compact_every == 0 {
            return Err(CoaneError::config("compact-every must be positive"));
        }
        let scorer = seed_index.scorer();
        let hnsw = seed_index.config().clone();
        std::fs::create_dir_all(&config.dir).map_err(|e| CoaneError::io(&config.dir, e))?;
        let current_path = config.dir.join("CURRENT");

        let (view, writer, report) = if current_path.exists() {
            Self::recover(&config, &current_path, scorer, &hnsw, &obs)?
        } else {
            // First boot: the seed becomes generation 0.
            seed_store.save(&store_path(&config.dir, 0))?;
            let wal = MutLog::create(&wal_path(&config.dir, 0), 0, 0, &[])?;
            atomic_write_bytes(&current_path, b"0\n")?;
            let view = GenerationView::from_base(0, 0, Arc::new(seed_store), Arc::new(seed_index));
            let base = Arc::clone(&view.store);
            let writer = WriterState {
                wal: Some(wal),
                records: Vec::new(),
                base,
                base_seq: 0,
                next_seq: 1,
                generation: 0,
                compacting: false,
                stalled: false,
            };
            let report = RecoveryReport {
                generation: 0,
                seq: 0,
                replayed: 0,
                fell_back: false,
                notes: Vec::new(),
            };
            (view, writer, report)
        };

        obs.gauge("serve/mut/generation", report.generation as f64);
        obs.gauge("serve/mut/tombstones", view.tombstones() as f64);
        obs.gauge("serve/mut/delta_rows", (view.store.len() - view.base_rows) as f64);
        obs.gauge("serve/mut/wal_bytes", writer.wal.as_ref().map_or(0, MutLog::bytes) as f64);
        if report.replayed > 0 {
            obs.add("serve/mut/replayed", report.replayed as u64);
        }
        if report.fell_back {
            obs.add("serve/mut/fallbacks", 1);
        }

        let pending = writer.records.len();
        let inner = Arc::new(Inner {
            view: RwLock::new(Arc::new(view)),
            writer: Mutex::new(writer),
            idle: Condvar::new(),
            config: Some(config),
            scorer,
            hnsw,
            obs,
        });
        let (tx, rx) = mpsc::sync_channel::<()>(1);
        let worker_inner = Arc::clone(&inner);
        let compactor = std::thread::Builder::new()
            .name("coane-compactor".into())
            .spawn(move || compactor_loop(&worker_inner, &rx))
            .expect("spawn compactor");
        let manager = Self { inner, trigger: Some(tx), compactor: Some(compactor) };
        // A recovered delta may already be over the threshold (this is also
        // the self-heal path after a fallback: re-folding regenerates the
        // damaged generation's files).
        if pending >= manager.compact_every() {
            manager.trigger_compaction();
        }
        Ok((manager, report))
    }

    /// Loads the `CURRENT` generation, falling back once to the previous
    /// one when the current is damaged.
    fn recover(
        config: &MutationConfig,
        current_path: &Path,
        scorer: Scorer,
        hnsw: &HnswConfig,
        obs: &Obs,
    ) -> CoaneResult<(GenerationView, WriterState, RecoveryReport)> {
        let text = std::fs::read_to_string(current_path)
            .map_err(|e| CoaneError::mutlog(current_path, format!("unreadable CURRENT: {e}")))?;
        let current: u64 = text.trim().parse().map_err(|_| {
            CoaneError::mutlog(
                current_path,
                format!("CURRENT does not name a generation: {:?}", text.trim()),
            )
        })?;
        let mut notes = Vec::new();
        let mut attempts = vec![current];
        if current > 0 {
            attempts.push(current - 1);
        }
        for (attempt, generation) in attempts.iter().copied().enumerate() {
            match Self::load_generation(config, generation, scorer, hnsw, obs, &mut notes) {
                Ok((view, writer)) => {
                    let report = RecoveryReport {
                        generation,
                        seq: view.seq,
                        replayed: writer.records.len(),
                        fell_back: attempt > 0,
                        notes,
                    };
                    return Ok((view, writer, report));
                }
                Err(e) => notes.push(format!("generation {generation} unusable: {e}")),
            }
        }
        Err(CoaneError::mutlog(
            &config.dir,
            format!("no usable generation to recover: {}", notes.join("; ")),
        ))
    }

    fn load_generation(
        config: &MutationConfig,
        generation: u64,
        scorer: Scorer,
        hnsw: &HnswConfig,
        obs: &Obs,
        notes: &mut Vec<String>,
    ) -> CoaneResult<(GenerationView, WriterState)> {
        let sp = store_path(&config.dir, generation);
        let wp = wal_path(&config.dir, generation);
        let base = Arc::new(EmbeddingStore::open(&sp)?);
        let (replay, wal) = MutLog::recover(&wp)?;
        if replay.generation != generation {
            return Err(CoaneError::mutlog(
                &wp,
                format!("log header names generation {}, expected {generation}", replay.generation),
            ));
        }
        if let Some(damage) = &replay.damage {
            notes.push(format!(
                "generation {generation}: log tail truncated to {} records ({damage})",
                replay.records.len()
            ));
        }
        // The recovered base index is always `build(store)` — the same
        // expression that produced it at compaction time — so the live
        // index below is identical to an uninterrupted run's.
        let index = {
            let _scope = obs.scope("serve/mut/recover_build");
            Arc::new(HnswIndex::build(&base, scorer, hnsw.clone()))
        };
        let base_view =
            GenerationView::from_base(generation, replay.base_seq, Arc::clone(&base), index);
        let view = base_view
            .apply(&replay.records)
            .map_err(|m| CoaneError::mutlog(&wp, format!("log does not match base store: {m}")))?;
        let next_seq = view.seq + 1;
        let writer = WriterState {
            wal: Some(wal),
            records: replay.records,
            base,
            base_seq: replay.base_seq,
            next_seq,
            generation,
            compacting: false,
            stalled: false,
        };
        Ok((view, writer))
    }

    /// The current view; cheap (one `Arc` clone under a read lock).
    pub fn current(&self) -> Arc<GenerationView> {
        Arc::clone(&self.inner.view.read().unwrap())
    }

    /// Whether this manager accepts mutations.
    pub fn is_mutable(&self) -> bool {
        self.inner.config.is_some()
    }

    /// The scorer every generation's indexes are built under.
    pub fn scorer(&self) -> Scorer {
        self.inner.scorer
    }

    fn compact_every(&self) -> usize {
        self.inner.config.as_ref().map_or(usize::MAX, |c| c.compact_every)
    }

    fn trigger_compaction(&self) {
        if let Some(tx) = &self.trigger {
            let _ = tx.try_send(()); // a queued trigger already covers us
        }
    }

    /// Applies one validated mutation batch: WAL-append + fsync, then view
    /// swap. Batches are atomic (all records or none) and serialized;
    /// readers never block. Returns the stamp of the resulting view.
    pub fn mutate(&self, ops: Vec<MutOp>) -> CoaneResult<ViewStamp> {
        let inner = &self.inner;
        if inner.config.is_none() {
            return Err(CoaneError::config(
                "server is read-only; restart with --mutable to accept upserts and deletes",
            ));
        }
        if ops.is_empty() {
            return Ok(self.current().stamp());
        }
        let mut w = inner.writer.lock().unwrap();
        // The view only changes under the writer lock, so this is the
        // latest state.
        let view = Arc::clone(&inner.view.read().unwrap());
        Self::validate(&view, &ops)?;
        let records: Vec<MutRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| MutRecord { seq: w.next_seq + i as u64, op })
            .collect();
        // Apply first (pure — no side effects on error), then make the
        // records durable, then publish. A crash between append and swap
        // replays the records on restart; they were not yet acknowledged.
        let new_view = {
            let _scope = inner.obs.scope("serve/mut/apply");
            Arc::new(view.apply(&records).map_err(CoaneError::config)?)
        };
        w.wal.as_mut().expect("mutable manager has a log").append(&records)?;
        *inner.view.write().unwrap() = Arc::clone(&new_view);
        w.next_seq += records.len() as u64;
        w.records.extend(records);
        let stamp = new_view.stamp();
        inner.obs.gauge("serve/mut/tombstones", new_view.tombstones() as f64);
        inner.obs.gauge("serve/mut/delta_rows", (new_view.store.len() - new_view.base_rows) as f64);
        inner.obs.gauge("serve/mut/wal_bytes", w.wal.as_ref().map_or(0, MutLog::bytes) as f64);
        let should_compact = !w.compacting && w.records.len() >= self.compact_every();
        drop(w);
        if should_compact {
            self.trigger_compaction();
        }
        Ok(stamp)
    }

    /// Rejects a batch that contradicts the current state. Simulated
    /// sequentially so every *prefix* of the accepted stream keeps at least
    /// one live row — compaction cuts at arbitrary prefixes.
    fn validate(view: &GenerationView, ops: &[MutOp]) -> CoaneResult<()> {
        let dim = view.store.dim();
        let mut overlay: HashMap<u64, bool> = HashMap::new();
        let mut live = view.live_rows();
        for (i, op) in ops.iter().enumerate() {
            match op {
                MutOp::Upsert { id, vector } => {
                    if vector.len() != dim {
                        return Err(CoaneError::config(format!(
                            "upsert {i} (id {id}): vector has dim {} but the store holds dim {dim}",
                            vector.len()
                        )));
                    }
                    let was_live = overlay
                        .get(id)
                        .copied()
                        .unwrap_or_else(|| view.resolve_live(*id).is_some());
                    if !was_live {
                        live += 1;
                    }
                    overlay.insert(*id, true);
                }
                MutOp::Delete { id } => {
                    let was_live = overlay
                        .get(id)
                        .copied()
                        .unwrap_or_else(|| view.resolve_live(*id).is_some());
                    if !was_live {
                        return Err(CoaneError::config(format!(
                            "delete {i}: unknown or already-deleted node id {id}"
                        )));
                    }
                    if live == 1 {
                        return Err(CoaneError::config(format!(
                            "delete {i} (id {id}) would empty the store"
                        )));
                    }
                    live -= 1;
                    overlay.insert(*id, false);
                }
            }
        }
        Ok(())
    }

    /// A point-in-time stats snapshot for `/stats` and `/healthz`.
    pub fn stats(&self) -> MutationStats {
        let w = self.inner.writer.lock().unwrap();
        let view = self.current();
        MutationStats {
            mutable: self.is_mutable(),
            generation: view.generation,
            seq: view.seq,
            base_rows: view.base_rows,
            live_rows: view.live_rows(),
            tombstones: view.tombstones(),
            pending: w.records.len(),
            wal_bytes: w.wal.as_ref().map_or(0, MutLog::bytes),
            compact_every: self.inner.config.as_ref().map_or(0, |c| c.compact_every),
            precision: view.store.precision(),
            store_bytes: view.store.store_bytes(),
        }
    }

    /// Blocks until no compaction is running or runnable — the delta is
    /// below the threshold, or the last attempt failed (stalled). Test and
    /// shutdown helper; mutations arriving concurrently can re-arm work.
    pub fn wait_idle(&self) {
        let Some(cfg) = self.inner.config.as_ref() else { return };
        let mut w = self.inner.writer.lock().unwrap();
        while w.compacting || (w.records.len() >= cfg.compact_every && !w.stalled) {
            let (next, _) = self.inner.idle.wait_timeout(w, Duration::from_millis(50)).unwrap();
            w = next;
        }
    }
}

impl Drop for GenerationManager {
    fn drop(&mut self) {
        drop(self.trigger.take()); // compactor's recv() errors out
        if let Some(worker) = self.compactor.take() {
            let _ = worker.join();
        }
    }
}

fn compactor_loop(inner: &Arc<Inner>, rx: &Receiver<()>) {
    while rx.recv().is_ok() {
        loop {
            match compact_once(inner) {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    // Typed error to stderr; the server keeps serving on
                    // the current generation and retries at next trigger.
                    eprintln!("serve: compaction failed ({}): {e}", e.kind());
                    inner.obs.add("serve/mut/compact_errors", 1);
                    let mut w = inner.writer.lock().unwrap();
                    w.compacting = false;
                    w.stalled = true;
                    drop(w);
                    break;
                }
            }
        }
        inner.idle.notify_all();
    }
}

/// One fold: base + first `compact_every` records → next generation.
/// Returns `Ok(false)` when the delta is below the threshold.
fn compact_once(inner: &Arc<Inner>) -> CoaneResult<bool> {
    let cfg = inner.config.as_ref().expect("compactor only runs on mutable managers");
    let (base, window, generation, base_seq) = {
        let mut w = inner.writer.lock().unwrap();
        if w.records.len() < cfg.compact_every {
            return Ok(false);
        }
        w.compacting = true;
        w.stalled = false;
        (Arc::clone(&w.base), w.records[..cfg.compact_every].to_vec(), w.generation, w.base_seq)
    };
    let next = generation + 1;

    // Heavy work without any lock: fold the window into the next base,
    // rebuild its index, and persist the store. All pure functions of
    // (base store, window) — an interrupted fold reproduces these bytes.
    let (new_base, new_index) = {
        let _scope = inner.obs.scope("serve/mut/compact");
        let store = compact_base(&base, &window)
            .map_err(|m| CoaneError::mutlog(wal_path(&cfg.dir, generation), m))?;
        let index = HnswIndex::build(&store, inner.scorer, inner.hnsw.clone());
        store.save(&store_path(&cfg.dir, next))?;
        (Arc::new(store), Arc::new(index))
    };

    // Swap under the writer lock: rotate the log (carrying the tail),
    // flip CURRENT, rebuild the live view from the new base + tail.
    {
        let mut w = inner.writer.lock().unwrap();
        let _scope = inner.obs.scope("serve/mut/swap");
        let tail = w.records[cfg.compact_every..].to_vec();
        let next_base_seq = base_seq + cfg.compact_every as u64;
        let wal = MutLog::create(&wal_path(&cfg.dir, next), next, next_base_seq, &tail)?;
        atomic_write_bytes(&cfg.dir.join("CURRENT"), format!("{next}\n").as_bytes())?;
        let base_view = GenerationView::from_base(
            next,
            next_base_seq,
            Arc::clone(&new_base),
            Arc::clone(&new_index),
        );
        let new_view = base_view.apply(&tail).map_err(|m| {
            CoaneError::mutlog(wal_path(&cfg.dir, next), format!("carried tail rejected: {m}"))
        })?;
        inner.obs.gauge("serve/mut/generation", next as f64);
        inner.obs.gauge("serve/mut/tombstones", new_view.tombstones() as f64);
        inner.obs.gauge("serve/mut/delta_rows", (new_view.store.len() - new_view.base_rows) as f64);
        inner.obs.gauge("serve/mut/wal_bytes", wal.bytes() as f64);
        *inner.view.write().unwrap() = Arc::new(new_view);
        w.wal = Some(wal);
        w.records = tail;
        w.base = new_base;
        w.base_seq = next_base_seq;
        w.generation = next;
        w.compacting = false;
    }
    inner.obs.add("serve/mut/compactions", 1);
    inner.idle.notify_all();

    // Drain: generation `next-1` stays as the recovery fallback; anything
    // older is retired. Removal failures are harmless (retried next fold).
    if next >= 2 {
        let _ = std::fs::remove_file(store_path(&cfg.dir, next - 2));
        let _ = std::fs::remove_file(wal_path(&cfg.dir, next - 2));
    }
    Ok(true)
}

/// Folds `window` into `base` and drops tombstoned rows (row order
/// otherwise preserved): the next generation's base store. A pure function
/// of its inputs — this is what makes an interrupted compaction
/// re-runnable byte-identically.
fn compact_base(base: &EmbeddingStore, window: &[MutRecord]) -> Result<EmbeddingStore, String> {
    let mut store = base.clone();
    let mut dead = vec![false; store.len()];
    for r in window {
        match &r.op {
            MutOp::Upsert { id, vector } => {
                if vector.len() != store.dim() {
                    return Err(format!("record seq {}: upsert dimension mismatch", r.seq));
                }
                if let Some(row) = store.index_of(*id) {
                    store.set_row(row as usize, vector);
                    dead[row as usize] = false;
                } else {
                    store.push_row(*id, vector);
                    dead.push(false);
                }
            }
            MutOp::Delete { id } => {
                let row = store
                    .index_of(*id)
                    .ok_or_else(|| format!("record seq {}: delete of unknown id {id}", r.seq))?;
                dead[row as usize] = true;
            }
        }
    }
    let dim = store.dim();
    let mut ids = Vec::new();
    let mut vectors = Vec::new();
    for (row, &is_dead) in dead.iter().enumerate() {
        if !is_dead {
            ids.push(store.id_of(row));
            vectors.extend_from_slice(store.row(row));
        }
    }
    // Folding re-quantizes the whole table from the exact f32 rows (WAL
    // records are always f32), so the next base's code table is the same
    // pure function of (base rows, window) that a crash-and-replay run
    // would produce — byte-identical self-healing carries over to
    // quantized stores unchanged.
    EmbeddingStore::new(vectors, dim, Some(ids), store.meta().to_string())
        .and_then(|s| s.with_precision(base.precision()))
        .map_err(|e| e.to_string())
}
