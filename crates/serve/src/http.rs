//! Minimal std-only HTTP/1.1 JSON front-end for the [`QueryEngine`].
//!
//! No async runtime and no networking dependencies: a `TcpListener` accept
//! loop feeds a bounded channel drained by a fixed pool of handler threads.
//! The channel bound is the engine's `queue_cap`; when every handler is busy
//! and the channel is full, the accept loop blocks on `send` — connections
//! queue in the kernel backlog and clients see latency, not dropped
//! requests.
//!
//! ## Connection lifecycle
//!
//! Connections are **keep-alive** (HTTP/1.1 persistent): a handler thread
//! owns a connection and serves requests off it in a loop until the client
//! closes, sends `Connection: close`, or times out. Two timeouts guard the
//! loop (see [`ServerConfig`]):
//!
//! - *Idle timeout* (`keep_alive_timeout`): waiting for the **first byte**
//!   of the next request. Expiry is a normal end of conversation — the
//!   connection closes silently.
//! - *Read deadline* (`read_deadline`): once the first byte arrives the
//!   whole request (line, headers, body) must complete within this budget.
//!   Expiry gets `408 Request Timeout` and a close — a slow-loris peer
//!   dribbling header bytes cannot pin a handler beyond the deadline.
//!
//! HTTP/1.0 clients without `Connection: keep-alive` get one request per
//! connection, as they expect.
//!
//! ## Micro-batching and load shedding
//!
//! `/knn` and `/score_links` handlers do not execute queries directly:
//! after a non-blocking [`QueryEngine::try_admit`], the request body is
//! submitted to the [`MicroBatcher`], which coalesces concurrent bodies
//! into one engine kernel pass (identical response bytes — see
//! `batch.rs`). When the admission queue is saturated for the request's
//! [`QueryClass`], the server sheds with `429 Too Many Requests` +
//! `Retry-After` instead of queueing. Per-route latency histograms are
//! recorded under `serve/http/<route>` and surfaced at `/stats` with
//! p50/p90/p99 in microseconds.
//!
//! ## Routes
//!
//! | Route          | Method | Body                                              |
//! |----------------|--------|---------------------------------------------------|
//! | `/knn`         | POST   | `{"ids":[..]?, "vectors":[[..]]?, "k"?, "scorer"?, "exact"?}` |
//! | `/score_links` | POST   | `{"pairs":[[u,v],..], "scorer"?}`                 |
//! | `/encode`      | POST   | `{"nodes":[{"attr_indices","attr_values","edges"}], "k"?}` |
//! | `/upsert`      | POST   | `{"nodes":[{"id", "vector"? | "attr_indices"/"attr_values"/"edges"}]}` |
//! | `/delete`      | POST   | `{"ids":[..]}`                                    |
//! | `/healthz`     | GET    | —                                                 |
//! | `/stats`       | GET    | —                                                 |
//! | `/shutdown`    | POST   | —                                                 |
//!
//! `/upsert` and `/delete` are only live on servers started with
//! `--mutable`; read-only servers answer them with 400. Mutations have
//! their own admission class shed at **half** the query queue depth, so a
//! write burst backs off before it can starve reads. Successful mutation
//! responses carry the `(generation, seq)` stamp of the view the mutation
//! produced; `/knn` responses carry the stamp of the view they were
//! answered against.
//!
//! Every response is JSON. Errors map [`CoaneError`] kinds onto status
//! codes: config/parse/graph are the client's fault (400), busy is 429,
//! everything else is 500.
//!
//! The server never writes to stdout; connection-level problems go to
//! stderr so piped output stays clean.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use coane_error::{CoaneError, CoaneResult};
use coane_nn::Scorer;
use serde::{Deserialize, Serialize, Value};

use crate::batch::MicroBatcher;
use crate::engine::{
    KnnParams, KnnTarget, QueryClass, QueryEngine, UnseenNode, UpsertItem, UpsertSource,
};
use crate::generation::ViewStamp;

/// Maximum accepted request body (16 MiB) — larger bodies get 413.
const MAX_BODY: usize = 16 << 20;
/// Socket write timeout; a peer that stops reading cannot pin a handler.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port `0` picks a free port.
    pub addr: String,
    /// Handler threads (connections served concurrently); at least 1.
    pub threads: usize,
    /// When set, the bound address is written here after binding — the
    /// rendezvous for scripts that start the server with port 0.
    pub addr_file: Option<PathBuf>,
    /// How long an idle keep-alive connection may wait for its next
    /// request before the server closes it silently.
    pub keep_alive_timeout: Duration,
    /// Budget for reading one full request once its first byte arrived;
    /// exceeding it gets `408` and a close (slow-loris guard).
    pub read_deadline: Duration,
    /// How long the micro-batcher lingers after a request arrives so
    /// concurrent requests can join the same kernel pass. Zero — the
    /// default — disables the linger: jobs still coalesce naturally when
    /// they pile up while a pass executes, and every serial request skips
    /// the wait entirely (a fixed linger taxes *each* lone request the full
    /// window, which measured ~3× off keep-alive throughput on one core).
    /// Set a small window only for bursty open-loop loads where arrivals
    /// cluster tighter than a kernel pass.
    pub batch_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            addr_file: None,
            keep_alive_timeout: Duration::from_secs(5),
            read_deadline: Duration::from_secs(10),
            batch_window: Duration::ZERO,
        }
    }
}

/// A bound (but not yet running) server: binding is separated from serving
/// so callers learn the port (and the addr-file is on disk) before the
/// accept loop starts.
pub struct HttpServer {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    config: ServerConfig,
    local_addr: SocketAddr,
}

impl HttpServer {
    /// Binds the listener, writes the addr-file if requested.
    pub fn bind(engine: Arc<QueryEngine>, config: ServerConfig) -> CoaneResult<Self> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CoaneError::config(format!("cannot bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| CoaneError::config(format!("cannot read bound address: {e}")))?;
        if let Some(path) = &config.addr_file {
            std::fs::write(path, format!("{local_addr}\n")).map_err(|e| CoaneError::io(path, e))?;
        }
        Ok(Self { listener, engine, config, local_addr })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a `/shutdown` request lands. Blocks the
    /// calling thread; handler threads are joined before returning.
    pub fn run(self) -> CoaneResult<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let queue_cap = self.engine.limits().queue_cap.max(1);
        let batcher =
            Arc::new(MicroBatcher::start(Arc::clone(&self.engine), self.config.batch_window));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_cap);
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let n_threads = self.config.threads.max(1);
        let mut handlers = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let batcher = Arc::clone(&batcher);
            let stop = Arc::clone(&stop);
            let addr = self.local_addr;
            let config = self.config.clone();
            handlers.push(std::thread::spawn(move || loop {
                // Hold the lock only for the recv, not while handling.
                let next = rx.lock().unwrap().recv();
                let Ok(stream) = next else { break };
                let shutdown = handle_connection(stream, &engine, &batcher, &config);
                if shutdown {
                    stop.store(true, Ordering::SeqCst);
                    // Wake the acceptor out of its blocking accept().
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for incoming in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match incoming {
                Ok(stream) => {
                    // Blocking send is the backpressure point (see module
                    // docs). Send only fails if every handler panicked.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => eprintln!("serve: accept failed: {e}"),
            }
        }
        drop(tx);
        for h in handlers {
            let _ = h.join();
        }
        // Handlers are gone; dropping the batcher joins its worker.
        drop(batcher);
        Ok(())
    }
}

/// What reading the next request off a keep-alive connection produced.
enum NextRequest {
    /// A complete request: method, path, body, and whether the client
    /// asked to close after the response.
    Request { method: String, path: String, body: String, close: bool },
    /// The peer closed, or the idle timeout expired — end silently.
    Gone,
    /// The request started but violated the read deadline → 408.
    Deadline,
    /// Malformed request → answer this and close.
    Bad(Response),
}

/// Serves requests off one connection until it ends (see module docs for
/// the lifecycle). Returns `true` when a shutdown order was served.
fn handle_connection(
    stream: TcpStream,
    engine: &QueryEngine,
    batcher: &MicroBatcher,
    config: &ServerConfig,
) -> bool {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    // Keep-alive responses are small and latency-bound: Nagle + delayed
    // ACK would park every response on a reused connection for ~40 ms.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match read_next_request(&mut reader, config) {
            NextRequest::Gone => return false,
            NextRequest::Deadline => {
                let resp = Response::error(408, "config", "request read deadline exceeded");
                write_response(reader.get_mut(), &resp, true);
                return false;
            }
            NextRequest::Bad(resp) => {
                write_response(reader.get_mut(), &resp, true);
                return false;
            }
            NextRequest::Request { method, path, body, close } => {
                let started = Instant::now();
                let (resp, shutdown) = route(engine, batcher, &method, &path, &body);
                let close = close || shutdown;
                write_response(reader.get_mut(), &resp, close);
                if let Some(name) = route_histogram(&path) {
                    engine.obs().histogram(name, started.elapsed().as_micros() as f64);
                }
                if shutdown {
                    return true;
                }
                if close {
                    return false;
                }
            }
        }
    }
}

/// The `serve/http/<route>` latency histogram for a path, if it has one.
fn route_histogram(path: &str) -> Option<&'static str> {
    match path {
        "/knn" => Some("serve/http/knn"),
        "/score_links" => Some("serve/http/links"),
        "/encode" => Some("serve/http/encode"),
        "/upsert" => Some("serve/http/upsert"),
        "/delete" => Some("serve/http/delete"),
        "/healthz" => Some("serve/http/healthz"),
        "/stats" => Some("serve/http/stats"),
        _ => None,
    }
}

/// True for read errors that mean "the socket timed out" rather than "the
/// peer broke": both flavors appear depending on platform.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one request under the keep-alive discipline: idle-wait for the
/// first byte under `keep_alive_timeout`, then the whole request under
/// `read_deadline`.
fn read_next_request(reader: &mut BufReader<TcpStream>, config: &ServerConfig) -> NextRequest {
    // Idle phase: wait for the first byte of the next request.
    let _ = reader.get_ref().set_read_timeout(Some(config.keep_alive_timeout));
    match reader.fill_buf() {
        Ok([]) => return NextRequest::Gone, // clean EOF between requests
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return NextRequest::Gone, // idle timeout
        Err(_) => return NextRequest::Gone,
    }
    // Request phase: everything else must land within the read deadline.
    // Each raw read gets the *remaining* budget as its socket timeout, so
    // a peer dribbling one byte per read cannot stretch the total.
    let deadline = Instant::now() + config.read_deadline;
    let read_line =
        |reader: &mut BufReader<TcpStream>, line: &mut String| -> Result<usize, NextRequest> {
            let now = Instant::now();
            if now >= deadline {
                return Err(NextRequest::Deadline);
            }
            let _ = reader.get_ref().set_read_timeout(Some(deadline - now));
            reader.read_line(line).map_err(|e| {
                if is_timeout(&e) {
                    NextRequest::Deadline
                } else {
                    NextRequest::Bad(Response::error(400, "parse", &format!("request: {e}")))
                }
            })
        };

    let mut line = String::new();
    match read_line(reader, &mut line) {
        Ok(0) => return NextRequest::Gone,
        Ok(_) => {}
        Err(out) => return out,
    }
    let mut parts = line.split_whitespace();
    let Some(method) = parts.next().map(str::to_string) else {
        return NextRequest::Bad(Response::error(400, "parse", "empty request line"));
    };
    let Some(path) = parts.next().map(str::to_string) else {
        return NextRequest::Bad(Response::error(400, "parse", "request line has no path"));
    };
    // HTTP/1.0 defaults to close; 1.1 defaults to keep-alive.
    let http10 = parts.next().is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.0"));
    let mut close = http10;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = match read_line(reader, &mut header) {
            Ok(n) => n,
            Err(out) => return out,
        };
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                match value.parse() {
                    Ok(len) => content_length = len,
                    Err(_) => {
                        return NextRequest::Bad(Response::error(
                            400,
                            "parse",
                            "bad Content-Length",
                        ))
                    }
                }
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return NextRequest::Bad(Response::error(
            413,
            "config",
            &format!("body exceeds {MAX_BODY} bytes"),
        ));
    }
    let mut body = vec![0u8; content_length];
    {
        let now = Instant::now();
        if now >= deadline {
            return NextRequest::Deadline;
        }
        let _ = reader.get_ref().set_read_timeout(Some(deadline - now));
        if let Err(e) = reader.read_exact(&mut body) {
            return if is_timeout(&e) {
                NextRequest::Deadline
            } else {
                NextRequest::Bad(Response::error(400, "parse", &format!("body: {e}")))
            };
        }
    }
    let Ok(body) = String::from_utf8(body) else {
        return NextRequest::Bad(Response::error(400, "parse", "body is not valid UTF-8"));
    };
    NextRequest::Request { method, path, body, close }
}

/// An HTTP response about to be serialized.
struct Response {
    status: u16,
    body: String,
    /// `Retry-After` seconds, set on 429 shed responses.
    retry_after: Option<u32>,
}

impl Response {
    fn ok(body: String) -> Self {
        Self { status: 200, body, retry_after: None }
    }

    fn json<T: Serialize>(value: &T) -> Self {
        match serde_json::to_string(value) {
            Ok(body) => Self::ok(body),
            Err(e) => Self::error(500, "internal", &format!("response serialization: {e}")),
        }
    }

    fn error(status: u16, kind: &str, message: &str) -> Self {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("error".to_string(), Value::String(message.to_string()));
        obj.insert("kind".to_string(), Value::String(kind.to_string()));
        let body = serde_json::to_string(&Value::Object(obj)).unwrap_or_default();
        Self { status, body, retry_after: None }
    }

    fn from_err(e: &CoaneError) -> Self {
        if let CoaneError::Busy { retry_after_secs, .. } = e {
            let mut resp = Self::error(429, e.kind(), &e.to_string());
            resp.retry_after = Some(*retry_after_secs);
            return resp;
        }
        let status = match e.kind() {
            "config" | "parse" | "graph" => 400,
            _ => 500,
        };
        Self::error(status, e.kind(), &e.to_string())
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let retry = match resp.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    // One write per response: head + body in a single segment, so the
    // peer's delayed ACK never splits a response across round-trips.
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len()
    );
    wire.push_str(&resp.body);
    if let Err(e) = stream.write_all(wire.as_bytes()) {
        eprintln!("serve: write failed: {e}");
    }
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

#[derive(Deserialize)]
struct KnnRequest {
    ids: Option<Vec<u64>>,
    vectors: Option<Vec<Vec<f32>>>,
    k: Option<usize>,
    scorer: Option<String>,
    exact: Option<bool>,
}

/// One neighbor on the wire.
#[derive(Serialize, Deserialize)]
pub struct Neighbor {
    /// External node id.
    pub id: u64,
    /// Similarity under the requested scorer (greater = more similar).
    pub score: f32,
}

/// One query's neighbor list on the wire.
#[derive(Serialize, Deserialize)]
pub struct KnnResult {
    /// Most similar first.
    pub neighbors: Vec<Neighbor>,
}

/// Response of `/knn`.
#[derive(Serialize, Deserialize)]
pub struct KnnResponse {
    /// Neighbors returned per query.
    pub k: usize,
    /// Scorer that ranked the neighbors.
    pub scorer: String,
    /// Generation of the view the answers were computed against.
    pub generation: u64,
    /// Last applied mutation sequence in that view (0 = pristine store).
    pub seq: u64,
    /// One entry per query, in request order (ids first, then vectors).
    pub results: Vec<KnnResult>,
}

#[derive(Deserialize)]
struct LinkRequest {
    pairs: Vec<(u64, u64)>,
    scorer: Option<String>,
}

/// Response of `/score_links`.
#[derive(Serialize, Deserialize)]
pub struct LinkResponse {
    /// Scorer used.
    pub scorer: String,
    /// One score per pair, in request order.
    pub scores: Vec<f64>,
}

#[derive(Deserialize)]
struct EncodeNodeRequest {
    attr_indices: Option<Vec<u32>>,
    attr_values: Option<Vec<f32>>,
    edges: Vec<u64>,
}

#[derive(Deserialize)]
struct EncodeRequest {
    nodes: Vec<EncodeNodeRequest>,
    k: Option<usize>,
}

/// Response of `/encode`.
#[derive(Serialize, Deserialize)]
pub struct EncodeResponse {
    /// Embedding dimensionality.
    pub dim: usize,
    /// One embedding per request node, in request order.
    pub embeddings: Vec<Vec<f32>>,
    /// When the request set `k`: each encoded node's nearest stored
    /// neighbors, in request order.
    pub neighbors: Option<Vec<KnnResult>>,
}

/// Response of `/healthz`.
#[derive(Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Live (non-tombstoned) vectors in the current view.
    pub nodes: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Scorer the ANN index was built with.
    pub scorer: String,
    /// Whether `/encode` is available (model + graph loaded).
    pub encode: bool,
    /// Whether `/upsert` and `/delete` are live (`--mutable`).
    pub mutable: bool,
    /// Current generation number.
    pub generation: u64,
    /// Last applied mutation sequence (0 = pristine store).
    pub seq: u64,
    /// Precision of the scoring table (`f32`, `f16` or `int8`).
    pub precision: String,
    /// Bytes the ANN scoring path streams per full scan.
    pub store_bytes: usize,
}

#[derive(Deserialize)]
struct UpsertNodeRequest {
    id: Option<u64>,
    vector: Option<Vec<f32>>,
    attr_indices: Option<Vec<u32>>,
    attr_values: Option<Vec<f32>>,
    edges: Option<Vec<u64>>,
}

#[derive(Deserialize)]
struct UpsertRequest {
    nodes: Vec<UpsertNodeRequest>,
}

/// Response of `/upsert`.
#[derive(Serialize, Deserialize)]
pub struct UpsertResponse {
    /// Nodes applied (always the full batch — mutations are atomic).
    pub applied: usize,
    /// Generation of the view the batch produced.
    pub generation: u64,
    /// Sequence of the last mutation in the batch.
    pub seq: u64,
}

#[derive(Deserialize)]
struct DeleteRequest {
    ids: Vec<u64>,
}

/// Response of `/delete`.
#[derive(Serialize, Deserialize)]
pub struct DeleteResponse {
    /// Ids tombstoned (always the full batch — mutations are atomic).
    pub deleted: usize,
    /// Generation of the view the batch produced.
    pub generation: u64,
    /// Sequence of the last mutation in the batch.
    pub seq: u64,
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn parse_scorer(name: &Option<String>, default: Scorer) -> CoaneResult<Scorer> {
    match name {
        None => Ok(default),
        Some(s) => {
            Scorer::parse(s).ok_or_else(|| CoaneError::config(format!("unknown scorer {s:?}")))
        }
    }
}

fn parse_body<T: Deserialize>(body: &str) -> Result<T, Response> {
    serde_json::from_str(body)
        .map_err(|e| Response::error(400, "parse", &format!("request body: {e}")))
}

fn route(
    engine: &QueryEngine,
    batcher: &MicroBatcher,
    method: &str,
    path: &str,
    body: &str,
) -> (Response, bool) {
    let resp = match (method, path) {
        ("POST", "/knn") => handle_knn(engine, batcher, body),
        ("POST", "/score_links") => handle_links(engine, batcher, body),
        ("POST", "/encode") => handle_encode(engine, batcher, body),
        ("POST", "/upsert") => handle_upsert(engine, body),
        ("POST", "/delete") => handle_delete(engine, body),
        ("GET", "/healthz") => {
            let view = engine.view();
            let ViewStamp { generation, seq } = view.stamp();
            Response::json(&HealthResponse {
                status: "ok".into(),
                nodes: view.live_rows(),
                dim: view.store().dim(),
                scorer: engine.index().scorer().name().into(),
                encode: engine.can_encode(),
                mutable: engine.is_mutable(),
                generation,
                seq,
                precision: view.store().precision().name().into(),
                store_bytes: view.store().store_bytes(),
            })
        }
        ("GET", "/stats") => stats_response(engine),
        ("POST", "/shutdown") => {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("status".to_string(), Value::String("shutting down".to_string()));
            return (Response::json(&Value::Object(obj)), true);
        }
        (_, "/knn" | "/score_links" | "/encode" | "/upsert" | "/delete" | "/shutdown") => {
            Response::error(405, "config", "POST required")
        }
        (_, "/healthz" | "/stats") => Response::error(405, "config", "GET required"),
        _ => Response::error(404, "config", &format!("no route {path}")),
    };
    (resp, false)
}

fn handle_knn(engine: &QueryEngine, batcher: &MicroBatcher, body: &str) -> Response {
    let req: KnnRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut queries: Vec<KnnTarget> = Vec::new();
    queries.extend(req.ids.unwrap_or_default().into_iter().map(KnnTarget::Id));
    queries.extend(req.vectors.unwrap_or_default().into_iter().map(KnnTarget::Vector));
    if queries.is_empty() {
        return Response::error(400, "config", "knn request needs ids or vectors");
    }
    let scorer = match parse_scorer(&req.scorer, engine.index().scorer()) {
        Ok(s) => s,
        Err(e) => return Response::from_err(&e),
    };
    let params = KnnParams { k: req.k.unwrap_or(10), scorer, exact: req.exact.unwrap_or(false) };
    // Shed-or-admit, then hold the permit across the batcher round trip so
    // the request occupies its queue slot until its answer is built.
    let _permit = match engine.try_admit(queries.len(), QueryClass::Knn) {
        Ok(p) => p,
        Err(e) => return Response::from_err(&e),
    };
    match batcher.submit_knn(queries, params) {
        Ok((answers, stamp)) => Response::json(&KnnResponse {
            k: params.k,
            scorer: scorer.name().into(),
            generation: stamp.generation,
            seq: stamp.seq,
            results: answers.into_iter().map(to_knn_result).collect(),
        }),
        Err(e) => Response::from_err(&e),
    }
}

fn handle_upsert(engine: &QueryEngine, body: &str) -> Response {
    let req: UpsertRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if req.nodes.is_empty() {
        return Response::error(400, "config", "upsert request needs nodes");
    }
    let mut items = Vec::with_capacity(req.nodes.len());
    for (i, n) in req.nodes.into_iter().enumerate() {
        let Some(id) = n.id else {
            return Response::error(400, "config", &format!("upsert node {i} has no id"));
        };
        let attributed = n.attr_indices.is_some() || n.attr_values.is_some() || n.edges.is_some();
        let source = match (n.vector, attributed) {
            (Some(_), true) => {
                return Response::error(
                    400,
                    "config",
                    &format!("upsert node {i} (id {id}): give a vector or attributes, not both"),
                )
            }
            (Some(v), false) => UpsertSource::Vector(v),
            (None, true) => UpsertSource::Node(UnseenNode {
                attr_indices: n.attr_indices.unwrap_or_default(),
                attr_values: n.attr_values.unwrap_or_default(),
                edges: n.edges.unwrap_or_default(),
            }),
            (None, false) => {
                return Response::error(
                    400,
                    "config",
                    &format!("upsert node {i} (id {id}) needs a vector or attributes"),
                )
            }
        };
        items.push(UpsertItem { id, source });
    }
    // Mutations bypass the micro-batcher (a mutation is already a batch and
    // must not coalesce with a neighbor's), but still go through admission
    // under their own class so a write burst sheds before starving reads.
    let _permit = match engine.try_admit(items.len(), QueryClass::Mutate) {
        Ok(p) => p,
        Err(e) => return Response::from_err(&e),
    };
    match engine.upsert_admitted(&items) {
        Ok(ack) => Response::json(&UpsertResponse {
            applied: ack.applied,
            generation: ack.stamp.generation,
            seq: ack.stamp.seq,
        }),
        Err(e) => Response::from_err(&e),
    }
}

fn handle_delete(engine: &QueryEngine, body: &str) -> Response {
    let req: DeleteRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if req.ids.is_empty() {
        return Response::error(400, "config", "delete request needs ids");
    }
    let _permit = match engine.try_admit(req.ids.len(), QueryClass::Mutate) {
        Ok(p) => p,
        Err(e) => return Response::from_err(&e),
    };
    match engine.delete_admitted(&req.ids) {
        Ok(ack) => Response::json(&DeleteResponse {
            deleted: ack.applied,
            generation: ack.stamp.generation,
            seq: ack.stamp.seq,
        }),
        Err(e) => Response::from_err(&e),
    }
}

fn to_knn_result(answer: crate::engine::KnnAnswer) -> KnnResult {
    KnnResult {
        neighbors: answer.neighbors.into_iter().map(|(id, score)| Neighbor { id, score }).collect(),
    }
}

fn handle_links(engine: &QueryEngine, batcher: &MicroBatcher, body: &str) -> Response {
    let req: LinkRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let scorer = match parse_scorer(&req.scorer, engine.index().scorer()) {
        Ok(s) => s,
        Err(e) => return Response::from_err(&e),
    };
    let _permit = match engine.try_admit(req.pairs.len(), QueryClass::Links) {
        Ok(p) => p,
        Err(e) => return Response::from_err(&e),
    };
    match batcher.submit_links(req.pairs, scorer) {
        Ok(scores) => Response::json(&LinkResponse { scorer: scorer.name().into(), scores }),
        Err(e) => Response::from_err(&e),
    }
}

fn handle_encode(engine: &QueryEngine, batcher: &MicroBatcher, body: &str) -> Response {
    let req: EncodeRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut nodes = Vec::with_capacity(req.nodes.len());
    for n in req.nodes {
        nodes.push(UnseenNode {
            attr_indices: n.attr_indices.unwrap_or_default(),
            attr_values: n.attr_values.unwrap_or_default(),
            edges: n.edges,
        });
    }
    // One admission covers the whole request, including the optional kNN
    // composition below — a second blocking admission here could deadlock
    // a `queue_cap = 1` server.
    let _permit = match engine.try_admit(nodes.len(), QueryClass::Encode) {
        Ok(p) => p,
        Err(e) => return Response::from_err(&e),
    };
    let embeddings = match engine.encode_unseen_admitted(&nodes) {
        Ok(z) => z,
        Err(e) => return Response::from_err(&e),
    };
    let neighbors = match req.k {
        None => None,
        Some(k) => {
            let queries: Vec<KnnTarget> =
                embeddings.iter().cloned().map(KnnTarget::Vector).collect();
            let params = KnnParams { k, scorer: engine.index().scorer(), exact: false };
            match batcher.submit_knn(queries, params) {
                Ok((answers, _stamp)) => Some(answers.into_iter().map(to_knn_result).collect()),
                Err(e) => return Response::from_err(&e),
            }
        }
    };
    Response::json(&EncodeResponse { dim: engine.store().dim(), embeddings, neighbors })
}

fn stats_response(engine: &QueryEngine) -> Response {
    let obs = engine.obs();
    let mut counters = std::collections::BTreeMap::new();
    for (name, n) in obs.counters() {
        counters.insert(name.to_string(), Value::Number(n as f64));
    }
    let mut gauges = std::collections::BTreeMap::new();
    for (name, g) in obs.gauges() {
        let mut stat = std::collections::BTreeMap::new();
        stat.insert("count".to_string(), Value::Number(g.count as f64));
        stat.insert("last".to_string(), Value::Number(g.last));
        stat.insert("max".to_string(), Value::Number(g.max));
        gauges.insert(name.to_string(), Value::Object(stat));
    }
    let mut scopes = std::collections::BTreeMap::new();
    for (path, s) in obs.scopes() {
        let mut stat = std::collections::BTreeMap::new();
        stat.insert("calls".to_string(), Value::Number(s.calls as f64));
        stat.insert("total_secs".to_string(), Value::Number(s.total.as_secs_f64()));
        scopes.insert(path, Value::Object(stat));
    }
    let mut histograms = std::collections::BTreeMap::new();
    for (name, h) in obs.histograms() {
        let mut stat = std::collections::BTreeMap::new();
        stat.insert("count".to_string(), Value::Number(h.count as f64));
        stat.insert("min_us".to_string(), Value::Number(h.min));
        stat.insert("max_us".to_string(), Value::Number(h.max));
        stat.insert("p50_us".to_string(), Value::Number(h.p50));
        stat.insert("p90_us".to_string(), Value::Number(h.p90));
        stat.insert("p99_us".to_string(), Value::Number(h.p99));
        histograms.insert(name.to_string(), Value::Object(stat));
    }
    // Mutation-state snapshot: generation, tombstones, WAL size. Present on
    // read-only servers too (with `mutable: false` and zeroed log fields) so
    // dashboards can key off one shape.
    let ms = engine.mutation_stats();
    let mut store = std::collections::BTreeMap::new();
    store.insert("mutable".to_string(), Value::Bool(ms.mutable));
    store.insert("generation".to_string(), Value::Number(ms.generation as f64));
    store.insert("seq".to_string(), Value::Number(ms.seq as f64));
    store.insert("base_rows".to_string(), Value::Number(ms.base_rows as f64));
    store.insert("live_rows".to_string(), Value::Number(ms.live_rows as f64));
    store.insert("tombstones".to_string(), Value::Number(ms.tombstones as f64));
    store.insert("pending".to_string(), Value::Number(ms.pending as f64));
    store.insert("wal_bytes".to_string(), Value::Number(ms.wal_bytes as f64));
    store.insert("compact_every".to_string(), Value::Number(ms.compact_every as f64));
    store.insert("precision".to_string(), Value::String(ms.precision.name().to_string()));
    store.insert("store_bytes".to_string(), Value::Number(ms.store_bytes as f64));
    let mut root = std::collections::BTreeMap::new();
    root.insert("uptime_secs".to_string(), Value::Number(obs.elapsed_secs()));
    root.insert("store".to_string(), Value::Object(store));
    root.insert("counters".to_string(), Value::Object(counters));
    root.insert("gauges".to_string(), Value::Object(gauges));
    root.insert("scopes".to_string(), Value::Object(scopes));
    root.insert("histograms".to_string(), Value::Object(histograms));
    Response::json(&Value::Object(root))
}

// ---------------------------------------------------------------------------
// Blocking clients (shared by `coane query`, the bench, and the tests)
// ---------------------------------------------------------------------------

/// Reads one response off `reader`: `(status, body, server_closed)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> CoaneResult<(u16, String, bool)> {
    let mut status_line = String::new();
    let n = reader
        .read_line(&mut status_line)
        .map_err(|e| CoaneError::config(format!("no response: {e}")))?;
    if n == 0 {
        return Err(CoaneError::config("connection closed before a response arrived"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CoaneError::parse(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    let mut closed = false;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| CoaneError::parse(format!("response headers: {e}")))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                closed = true;
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| CoaneError::parse(format!("response body: {e}")))?;
            body = String::from_utf8(buf)
                .map_err(|_| CoaneError::parse("response body is not UTF-8"))?;
        }
        None => {
            reader
                .read_to_string(&mut body)
                .map_err(|e| CoaneError::parse(format!("response body: {e}")))?;
            closed = true;
        }
    }
    Ok((status, body, closed))
}

fn send_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    connection: &str,
) -> CoaneResult<()> {
    let mut wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    wire.push_str(body);
    stream
        .write_all(wire.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| CoaneError::config(format!("request to {addr} failed: {e}")))
}

/// A blocking keep-alive HTTP client: one persistent connection, reused
/// across [`HttpClient::request`] calls, transparently re-established when
/// the server closed it (idle timeout, `Connection: close`, restart).
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr` (`host:port`). No connection is made until the
    /// first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), conn: None }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn open(&self) -> CoaneResult<BufReader<TcpStream>> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| CoaneError::config(format!("cannot connect to {}: {e}", self.addr)))?;
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Request streams are ping-pong: never let Nagle hold a request
        // back waiting for the previous response's ACK.
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }

    /// Sends one JSON request on the persistent connection and returns
    /// `(status, body)`. A send or response failure on a *reused*
    /// connection (the server may have idle-closed it meanwhile) retries
    /// once on a fresh connection; errors on a fresh connection are real.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> CoaneResult<(u16, String)> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, body) {
            Ok(out) => Ok(out),
            Err(e) if reused => {
                self.conn = None;
                self.try_request(method, path, body).map_err(|_| e)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> CoaneResult<(u16, String)> {
        if self.conn.is_none() {
            self.conn = Some(self.open()?);
        }
        let reader = self.conn.as_mut().expect("connection just ensured");
        let result = send_request(reader.get_mut(), &self.addr, method, path, body, "keep-alive")
            .and_then(|()| read_response(reader));
        match result {
            Ok((status, resp_body, closed)) => {
                if closed {
                    self.conn = None;
                }
                Ok((status, resp_body))
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Sends one JSON request on a fresh `Connection: close` connection and
/// returns `(status, body)` — the one-shot client. For request streams use
/// [`HttpClient`], which keeps its connection alive.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> CoaneResult<(u16, String)> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CoaneError::config(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    send_request(&mut stream, addr, method, path, body, "close")?;
    let mut reader = BufReader::new(stream);
    let (status, body, _) = read_response(&mut reader)?;
    Ok((status, body))
}
