//! Minimal std-only HTTP/1.1 JSON front-end for the [`QueryEngine`].
//!
//! No async runtime and no networking dependencies: a `TcpListener` accept
//! loop feeds a bounded channel drained by a fixed pool of handler threads.
//! The channel bound is the engine's `queue_cap`; when every handler is busy
//! and the channel is full, the accept loop blocks on `send` — connections
//! queue in the kernel backlog and clients see latency, not dropped
//! requests. That is the whole backpressure story, and it composes with the
//! engine's own admission gate.
//!
//! ## Routes
//!
//! | Route          | Method | Body                                              |
//! |----------------|--------|---------------------------------------------------|
//! | `/knn`         | POST   | `{"ids":[..]?, "vectors":[[..]]?, "k"?, "scorer"?, "exact"?}` |
//! | `/score_links` | POST   | `{"pairs":[[u,v],..], "scorer"?}`                 |
//! | `/encode`      | POST   | `{"nodes":[{"attr_indices","attr_values","edges"}], "k"?}` |
//! | `/healthz`     | GET    | —                                                 |
//! | `/stats`       | GET    | —                                                 |
//! | `/shutdown`    | POST   | —                                                 |
//!
//! Every response is JSON with `Connection: close` (one request per
//! connection — boring, allocation-free to reason about, and plenty for the
//! batch-oriented API). Errors map [`CoaneError`] kinds onto status codes:
//! config/parse/graph are the client's fault (400), everything else is 500.
//!
//! The server never writes to stdout; connection-level problems go to
//! stderr so piped output stays clean.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use coane_error::{CoaneError, CoaneResult};
use coane_nn::Scorer;
use serde::{Deserialize, Serialize, Value};

use crate::engine::{KnnParams, KnnTarget, QueryEngine, UnseenNode};

/// Maximum accepted request body (16 MiB) — larger bodies get 413.
const MAX_BODY: usize = 16 << 20;
/// Per-connection socket timeout; a stalled peer cannot pin a handler.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port `0` picks a free port.
    pub addr: String,
    /// Handler threads (requests in flight); at least 1.
    pub threads: usize,
    /// When set, the bound address is written here after binding — the
    /// rendezvous for scripts that start the server with port 0.
    pub addr_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:7878".into(), threads: 4, addr_file: None }
    }
}

/// A bound (but not yet running) server: binding is separated from serving
/// so callers learn the port (and the addr-file is on disk) before the
/// accept loop starts.
pub struct HttpServer {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    config: ServerConfig,
    local_addr: SocketAddr,
}

impl HttpServer {
    /// Binds the listener, writes the addr-file if requested.
    pub fn bind(engine: Arc<QueryEngine>, config: ServerConfig) -> CoaneResult<Self> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CoaneError::config(format!("cannot bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| CoaneError::config(format!("cannot read bound address: {e}")))?;
        if let Some(path) = &config.addr_file {
            std::fs::write(path, format!("{local_addr}\n")).map_err(|e| CoaneError::io(path, e))?;
        }
        Ok(Self { listener, engine, config, local_addr })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a `/shutdown` request lands. Blocks the
    /// calling thread; handler threads are joined before returning.
    pub fn run(self) -> CoaneResult<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let queue_cap = self.engine.limits().queue_cap.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_cap);
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let n_threads = self.config.threads.max(1);
        let mut handlers = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&stop);
            let addr = self.local_addr;
            handlers.push(std::thread::spawn(move || loop {
                // Hold the lock only for the recv, not while handling.
                let next = rx.lock().unwrap().recv();
                let Ok(stream) = next else { break };
                let shutdown = handle_connection(stream, &engine);
                if shutdown {
                    stop.store(true, Ordering::SeqCst);
                    // Wake the acceptor out of its blocking accept().
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for incoming in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match incoming {
                Ok(stream) => {
                    // Blocking send is the backpressure point (see module
                    // docs). Send only fails if every handler panicked.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => eprintln!("serve: accept failed: {e}"),
            }
        }
        drop(tx);
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Handles one connection (one request). Returns `true` when the request
/// was a shutdown order.
fn handle_connection(stream: TcpStream, engine: &QueryEngine) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader) {
        Ok(parts) => parts,
        Err(resp) => {
            write_response(reader.into_inner(), &resp);
            return false;
        }
    };
    let (resp, shutdown) = route(engine, &method, &path, &body);
    write_response(reader.into_inner(), &resp);
    shutdown
}

/// An HTTP response about to be serialized.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn ok(body: String) -> Self {
        Self { status: 200, body }
    }

    fn json<T: Serialize>(value: &T) -> Self {
        match serde_json::to_string(value) {
            Ok(body) => Self::ok(body),
            Err(e) => Self::error(500, "internal", &format!("response serialization: {e}")),
        }
    }

    fn error(status: u16, kind: &str, message: &str) -> Self {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("error".to_string(), Value::String(message.to_string()));
        obj.insert("kind".to_string(), Value::String(kind.to_string()));
        let body = serde_json::to_string(&Value::Object(obj)).unwrap_or_default();
        Self { status, body }
    }

    fn from_err(e: &CoaneError) -> Self {
        let status = match e.kind() {
            "config" | "parse" | "graph" => 400,
            _ => 500,
        };
        Self::error(status, e.kind(), &e.to_string())
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn write_response(mut stream: TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len()
    );
    if let Err(e) =
        stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(resp.body.as_bytes()))
    {
        eprintln!("serve: write failed: {e}");
    }
    let _ = stream.flush();
}

/// Parses the request line, headers and (Content-Length-framed) body.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), Response> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| Response::error(400, "parse", &format!("request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| Response::error(400, "parse", "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| Response::error(400, "parse", "request line has no path"))?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| Response::error(400, "parse", &format!("headers: {e}")))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "parse", "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(Response::error(413, "config", &format!("body exceeds {MAX_BODY} bytes")));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| Response::error(400, "parse", &format!("body: {e}")))?;
    let body = String::from_utf8(body)
        .map_err(|_| Response::error(400, "parse", "body is not valid UTF-8"))?;
    Ok((method, path, body))
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

#[derive(Deserialize)]
struct KnnRequest {
    ids: Option<Vec<u64>>,
    vectors: Option<Vec<Vec<f32>>>,
    k: Option<usize>,
    scorer: Option<String>,
    exact: Option<bool>,
}

/// One neighbor on the wire.
#[derive(Serialize, Deserialize)]
pub struct Neighbor {
    /// External node id.
    pub id: u64,
    /// Similarity under the requested scorer (greater = more similar).
    pub score: f32,
}

/// One query's neighbor list on the wire.
#[derive(Serialize, Deserialize)]
pub struct KnnResult {
    /// Most similar first.
    pub neighbors: Vec<Neighbor>,
}

/// Response of `/knn`.
#[derive(Serialize, Deserialize)]
pub struct KnnResponse {
    /// Neighbors returned per query.
    pub k: usize,
    /// Scorer that ranked the neighbors.
    pub scorer: String,
    /// One entry per query, in request order (ids first, then vectors).
    pub results: Vec<KnnResult>,
}

#[derive(Deserialize)]
struct LinkRequest {
    pairs: Vec<(u64, u64)>,
    scorer: Option<String>,
}

/// Response of `/score_links`.
#[derive(Serialize, Deserialize)]
pub struct LinkResponse {
    /// Scorer used.
    pub scorer: String,
    /// One score per pair, in request order.
    pub scores: Vec<f64>,
}

#[derive(Deserialize)]
struct EncodeNodeRequest {
    attr_indices: Option<Vec<u32>>,
    attr_values: Option<Vec<f32>>,
    edges: Vec<u64>,
}

#[derive(Deserialize)]
struct EncodeRequest {
    nodes: Vec<EncodeNodeRequest>,
    k: Option<usize>,
}

/// Response of `/encode`.
#[derive(Serialize, Deserialize)]
pub struct EncodeResponse {
    /// Embedding dimensionality.
    pub dim: usize,
    /// One embedding per request node, in request order.
    pub embeddings: Vec<Vec<f32>>,
    /// When the request set `k`: each encoded node's nearest stored
    /// neighbors, in request order.
    pub neighbors: Option<Vec<KnnResult>>,
}

/// Response of `/healthz`.
#[derive(Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Stored vectors.
    pub nodes: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Scorer the ANN index was built with.
    pub scorer: String,
    /// Whether `/encode` is available (model + graph loaded).
    pub encode: bool,
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn parse_scorer(name: &Option<String>, default: Scorer) -> CoaneResult<Scorer> {
    match name {
        None => Ok(default),
        Some(s) => {
            Scorer::parse(s).ok_or_else(|| CoaneError::config(format!("unknown scorer {s:?}")))
        }
    }
}

fn parse_body<T: Deserialize>(body: &str) -> Result<T, Response> {
    serde_json::from_str(body)
        .map_err(|e| Response::error(400, "parse", &format!("request body: {e}")))
}

fn route(engine: &QueryEngine, method: &str, path: &str, body: &str) -> (Response, bool) {
    let resp = match (method, path) {
        ("POST", "/knn") => handle_knn(engine, body),
        ("POST", "/score_links") => handle_links(engine, body),
        ("POST", "/encode") => handle_encode(engine, body),
        ("GET", "/healthz") => Response::json(&HealthResponse {
            status: "ok".into(),
            nodes: engine.store().len(),
            dim: engine.store().dim(),
            scorer: engine.index().scorer().name().into(),
            encode: engine.can_encode(),
        }),
        ("GET", "/stats") => stats_response(engine),
        ("POST", "/shutdown") => {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("status".to_string(), Value::String("shutting down".to_string()));
            return (Response::json(&Value::Object(obj)), true);
        }
        (_, "/knn" | "/score_links" | "/encode" | "/shutdown") => {
            Response::error(405, "config", "POST required")
        }
        (_, "/healthz" | "/stats") => Response::error(405, "config", "GET required"),
        _ => Response::error(404, "config", &format!("no route {path}")),
    };
    (resp, false)
}

fn handle_knn(engine: &QueryEngine, body: &str) -> Response {
    let req: KnnRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut queries: Vec<KnnTarget> = Vec::new();
    queries.extend(req.ids.unwrap_or_default().into_iter().map(KnnTarget::Id));
    queries.extend(req.vectors.unwrap_or_default().into_iter().map(KnnTarget::Vector));
    if queries.is_empty() {
        return Response::error(400, "config", "knn request needs ids or vectors");
    }
    let scorer = match parse_scorer(&req.scorer, engine.index().scorer()) {
        Ok(s) => s,
        Err(e) => return Response::from_err(&e),
    };
    let params = KnnParams { k: req.k.unwrap_or(10), scorer, exact: req.exact.unwrap_or(false) };
    match engine.knn(&queries, params) {
        Ok(answers) => Response::json(&KnnResponse {
            k: params.k,
            scorer: scorer.name().into(),
            results: answers.into_iter().map(to_knn_result).collect(),
        }),
        Err(e) => Response::from_err(&e),
    }
}

fn to_knn_result(answer: crate::engine::KnnAnswer) -> KnnResult {
    KnnResult {
        neighbors: answer.neighbors.into_iter().map(|(id, score)| Neighbor { id, score }).collect(),
    }
}

fn handle_links(engine: &QueryEngine, body: &str) -> Response {
    let req: LinkRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let scorer = match parse_scorer(&req.scorer, engine.index().scorer()) {
        Ok(s) => s,
        Err(e) => return Response::from_err(&e),
    };
    match engine.score_links(&req.pairs, scorer) {
        Ok(scores) => Response::json(&LinkResponse { scorer: scorer.name().into(), scores }),
        Err(e) => Response::from_err(&e),
    }
}

fn handle_encode(engine: &QueryEngine, body: &str) -> Response {
    let req: EncodeRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut nodes = Vec::with_capacity(req.nodes.len());
    for n in req.nodes {
        nodes.push(UnseenNode {
            attr_indices: n.attr_indices.unwrap_or_default(),
            attr_values: n.attr_values.unwrap_or_default(),
            edges: n.edges,
        });
    }
    let embeddings = match engine.encode_unseen(&nodes) {
        Ok(z) => z,
        Err(e) => return Response::from_err(&e),
    };
    let neighbors = match req.k {
        None => None,
        Some(k) => {
            let queries: Vec<KnnTarget> =
                embeddings.iter().cloned().map(KnnTarget::Vector).collect();
            let params = KnnParams { k, scorer: engine.index().scorer(), exact: false };
            match engine.knn(&queries, params) {
                Ok(answers) => Some(answers.into_iter().map(to_knn_result).collect()),
                Err(e) => return Response::from_err(&e),
            }
        }
    };
    Response::json(&EncodeResponse { dim: engine.store().dim(), embeddings, neighbors })
}

fn stats_response(engine: &QueryEngine) -> Response {
    let obs = engine.obs();
    let mut counters = std::collections::BTreeMap::new();
    for (name, n) in obs.counters() {
        counters.insert(name.to_string(), Value::Number(n as f64));
    }
    let mut gauges = std::collections::BTreeMap::new();
    for (name, g) in obs.gauges() {
        let mut stat = std::collections::BTreeMap::new();
        stat.insert("count".to_string(), Value::Number(g.count as f64));
        stat.insert("last".to_string(), Value::Number(g.last));
        stat.insert("max".to_string(), Value::Number(g.max));
        gauges.insert(name.to_string(), Value::Object(stat));
    }
    let mut scopes = std::collections::BTreeMap::new();
    for (path, s) in obs.scopes() {
        let mut stat = std::collections::BTreeMap::new();
        stat.insert("calls".to_string(), Value::Number(s.calls as f64));
        stat.insert("total_secs".to_string(), Value::Number(s.total.as_secs_f64()));
        scopes.insert(path, Value::Object(stat));
    }
    let mut root = std::collections::BTreeMap::new();
    root.insert("uptime_secs".to_string(), Value::Number(obs.elapsed_secs()));
    root.insert("counters".to_string(), Value::Object(counters));
    root.insert("gauges".to_string(), Value::Object(gauges));
    root.insert("scopes".to_string(), Value::Object(scopes));
    Response::json(&Value::Object(root))
}

// ---------------------------------------------------------------------------
// A tiny blocking client (shared by `coane query` and the tests)
// ---------------------------------------------------------------------------

/// Sends one JSON request and returns `(status, body)`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> CoaneResult<(u16, String)> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CoaneError::config(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| CoaneError::config(format!("request to {addr} failed: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| CoaneError::config(format!("no response from {addr}: {e}")))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CoaneError::parse(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| CoaneError::parse(format!("response headers: {e}")))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| CoaneError::parse(format!("response body: {e}")))?;
            body = String::from_utf8(buf)
                .map_err(|_| CoaneError::parse("response body is not UTF-8"))?;
        }
        None => {
            reader
                .read_to_string(&mut body)
                .map_err(|e| CoaneError::parse(format!("response body: {e}")))?;
        }
    }
    Ok((status, body))
}
