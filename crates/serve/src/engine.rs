//! The query engine: typed request execution over generation-managed
//! [`EmbeddingStore`] + [`HnswIndex`] snapshots, with bounded batching on
//! the workspace pool and per-query-class telemetry.
//!
//! Four query classes (mirroring the HTTP routes):
//!
//! - **kNN** ([`QueryEngine::knn`]): approximate (HNSW) or exact
//!   (brute-force) retrieval for a batch of queries, each given by a stored
//!   node id or a raw vector.
//! - **Link scoring** ([`QueryEngine::score_links`]): batch edge scoring of
//!   `(u, v)` id pairs through the shared
//!   [`coane_eval::linkpred::edge_scores`] path — the same scorers the
//!   offline evaluation uses.
//! - **Inductive encoding** ([`QueryEngine::encode_unseen`]): embeds
//!   never-seen attributed nodes with the trained model
//!   ([`coane_core::inductive::embed_nodes_obs`] →
//!   `CoaneModel::encode_nograd`), given their attributes and their edges
//!   into the serving graph.
//! - **Mutation** ([`QueryEngine::upsert`] / [`QueryEngine::delete`]): live
//!   writes through the crash-safe generation layer
//!   ([`crate::generation`]). Upserts take a raw vector or an attributed
//!   node (encoded through the same inductive path, then logged as the
//!   resulting vector so replay needs no model); deletes tombstone ids
//!   until compaction reclaims them.
//!
//! ## Generations
//!
//! Every read path pins one [`GenerationView`] for its whole pass: the
//! store, index, exact index, and tombstone mask it works against cannot
//! change underneath it, and `/knn` never blocks on a mutation or a
//! compaction swap. kNN answers carry the pinned view's [`ViewStamp`] so a
//! client can tell which state produced them.
//!
//! ## Batching and backpressure
//!
//! Queries arrive in batches (one HTTP body = one batch) and are bounded by
//! [`EngineLimits::max_batch`]; oversized batches are rejected with a typed
//! config error rather than queued, so a client can never wedge the pool
//! with one request. Admission control for concurrent batches is a counting
//! [`Gate`] with two entry styles:
//!
//! - The public [`QueryEngine::knn`] / [`QueryEngine::score_links`] /
//!   [`QueryEngine::encode_unseen`] / [`QueryEngine::upsert`] /
//!   [`QueryEngine::delete`] convenience methods *block* while `queue_cap`
//!   batches are in flight (library callers lean on that backpressure).
//! - [`QueryEngine::try_admit`] is the load-shedding entry the HTTP layer
//!   uses: it never blocks, and each [`QueryClass`] saturates at its own
//!   fraction of `queue_cap` (kNN fills the whole queue, link scoring 3/4,
//!   inductive encoding and mutations 1/2) so cheap retrieval stays live
//!   while expensive work — and any write flood — is shed first. A
//!   saturated class gets a typed [`CoaneError::Busy`] (HTTP 429 +
//!   `Retry-After`) and bumps the `serve/shed` counter. Current depth is
//!   exported as the `serve/queue_depth` gauge either way.
//!
//! ## Cross-request coalescing
//!
//! [`QueryEngine::knn_multi`] and [`QueryEngine::score_links_multi`] execute
//! *several* request bodies in one kernel pass: every valid job's queries
//! are concatenated and scored together (exact kNN through the
//! pre-transposed [`ExactIndex`] matmul — one `m×dim · dim×n` product per
//! round — approximate through per-query HNSW searches on the pool), then
//! demultiplexed back per job. Per-job error
//! isolation holds — one job's unknown id fails *that* job only. The
//! determinism contract is that coalescing is invisible in the bytes:
//! every score is a pure function of its (query, store row) pair and result
//! order is per-job, so a job's answers are bit-identical whether it runs
//! alone or coalesced with any other jobs, at any thread count (locked by
//! `tests/keepalive.rs`). The whole round runs against one pinned view and
//! reports that view's stamp.
//!
//! Every query class times itself under a `serve/<class>` scope and counts
//! requests/batches, so `/stats` can report per-class QPS.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use coane_core::{embed_nodes_obs, CoaneConfig, CoaneModel};
use coane_error::{CoaneError, CoaneResult};
use coane_graph::{AttributedGraph, GraphBuilder, NodeAttributes};
use coane_nn::{pool, Precision, Scorer};
use coane_obs::Obs;

use crate::generation::{
    GenerationManager, GenerationView, MutationConfig, MutationStats, RecoveryReport, ViewStamp,
};
use crate::hnsw::{Hit, HnswIndex};
use crate::mutlog::MutOp;
use crate::store::EmbeddingStore;

/// Bounds on batch admission (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct EngineLimits {
    /// Max queries per batch; larger batches are rejected.
    pub max_batch: usize,
    /// Max concurrently admitted batches; further submitters block.
    pub queue_cap: usize,
    /// On a quantized store, each kNN query fetches `k · rerank_factor`
    /// candidates under quantized scores and re-ranks them with exact f32
    /// scores from the sidecar before taking the top `k`. Ignored (no
    /// rerank pass at all) on f32 stores. Clamped to ≥ 1.
    pub rerank_factor: usize,
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self { max_batch: 256, queue_cap: 64, rerank_factor: 4 }
    }
}

/// One kNN query: exactly one of `id` (a stored node) or `vector` (a raw
/// embedding-space point).
#[derive(Clone, Debug)]
pub enum KnnTarget {
    /// Look up the stored vector of this external node id.
    Id(u64),
    /// Query with this raw vector.
    Vector(Vec<f32>),
}

/// Parameters shared by every query in a kNN batch. `PartialEq` lets the
/// HTTP micro-batcher group only jobs with identical parameters into one
/// kernel pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnnParams {
    /// Number of neighbors to return.
    pub k: usize,
    /// Scorer to rank under. Approximate search requires the index's build
    /// scorer; any scorer works with `exact`.
    pub scorer: Scorer,
    /// Brute-force scan instead of the HNSW graph.
    pub exact: bool,
}

/// One kNN answer: neighbor external ids with similarity scores, most
/// similar first. When the query was a stored id, that node itself is
/// filtered out of its own neighbor list; tombstoned nodes never appear.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnAnswer {
    /// Neighbors as `(external id, score)`, score descending.
    pub neighbors: Vec<(u64, f32)>,
}

/// One job's queries resolved against the pinned view: `(vector, row to
/// exclude from its own neighbor list)` per query.
type ResolvedJob<'a> = Vec<(&'a [f32], Option<u32>)>;

/// An unseen node to encode: attributes (sparse) plus edges into the
/// serving graph, by external node id.
#[derive(Clone, Debug)]
pub struct UnseenNode {
    /// Sparse attribute indices (must be < the graph's attribute dim).
    pub attr_indices: Vec<u32>,
    /// Attribute values, parallel to `attr_indices`.
    pub attr_values: Vec<f32>,
    /// Existing nodes this node links to (external ids; at least one).
    pub edges: Vec<u64>,
}

/// Everything inductive encoding needs: the trained model, its
/// architecture config, and the graph the server walks for contexts.
pub struct InductiveContext {
    /// Trained CoANE model (filter bank + decoder).
    pub model: CoaneModel,
    /// The architecture configuration the model was trained with.
    pub config: CoaneConfig,
    /// The serving graph; unseen nodes attach to it by edges.
    pub graph: AttributedGraph,
}

/// How one upserted node's vector is produced.
#[derive(Clone, Debug)]
pub enum UpsertSource {
    /// A caller-supplied embedding-space vector (store dimension).
    Vector(Vec<f32>),
    /// An attributed node encoded through the inductive path; the
    /// *resulting* vector is what gets logged and stored.
    Node(UnseenNode),
}

/// One node of an upsert batch.
#[derive(Clone, Debug)]
pub struct UpsertItem {
    /// External node id to insert, overwrite, or revive.
    pub id: u64,
    /// Where its vector comes from.
    pub source: UpsertSource,
}

/// Acknowledgement of an applied (and durably logged) mutation batch.
#[derive(Clone, Copy, Debug)]
pub struct MutationAck {
    /// Operations applied (the whole batch, or none on error).
    pub applied: usize,
    /// Stamp of the resulting view.
    pub stamp: ViewStamp,
}

/// Priority class of a request for admission control: each class saturates
/// at its own fraction of `queue_cap` under [`QueryEngine::try_admit`], so
/// cheap high-priority retrieval keeps slots that expensive low-priority
/// work cannot occupy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// kNN retrieval — highest priority, may fill the whole queue.
    Knn,
    /// Link scoring — sheds once the queue is 3/4 full.
    Links,
    /// Inductive encoding (walk sampling + a model forward per request) —
    /// lowest priority, sheds once the queue is half full.
    Encode,
    /// Upserts and deletes — shed once the queue is half full, like
    /// encoding, so a write flood cannot starve kNN reads.
    Mutate,
}

impl QueryClass {
    /// Admission threshold for this class given the queue capacity.
    fn threshold(self, cap: usize) -> usize {
        match self {
            Self::Knn => cap,
            Self::Links => (cap * 3 / 4).max(1),
            Self::Encode | Self::Mutate => (cap / 2).max(1),
        }
    }

    /// The per-class batches counter bumped at admission.
    fn batches_counter(self) -> &'static str {
        match self {
            Self::Knn => "serve/knn/batches",
            Self::Links => "serve/links/batches",
            Self::Encode => "serve/encode/batches",
            Self::Mutate => "serve/mut/batches",
        }
    }

    /// Lowercase class name for error messages.
    fn name(self) -> &'static str {
        match self {
            Self::Knn => "knn",
            Self::Links => "links",
            Self::Encode => "encode",
            Self::Mutate => "mutate",
        }
    }
}

/// Counting admission gate with blocking and non-blocking entry (see
/// module docs).
struct Gate {
    state: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl Gate {
    fn new(cap: usize) -> Self {
        Self { state: Mutex::new(0), freed: Condvar::new(), cap: cap.max(1) }
    }

    /// Blocks until a slot frees, then returns the depth *after* admission.
    fn acquire(&self) -> usize {
        let mut depth = self.state.lock().unwrap();
        while *depth >= self.cap {
            depth = self.freed.wait(depth).unwrap();
        }
        *depth += 1;
        *depth
    }

    /// Admits iff the current depth is below `threshold` (clamped to the
    /// gate capacity): `Ok(depth after admission)` or `Err(depth now)`.
    fn try_acquire(&self, threshold: usize) -> Result<usize, usize> {
        let mut depth = self.state.lock().unwrap();
        if *depth >= threshold.min(self.cap) {
            return Err(*depth);
        }
        *depth += 1;
        Ok(*depth)
    }

    fn release(&self) {
        let mut depth = self.state.lock().unwrap();
        *depth -= 1;
        self.freed.notify_one();
    }
}

/// RAII admission permit: holds one queue slot until dropped. The HTTP
/// layer holds its permit across the micro-batcher round trip, so a
/// request occupies its slot from admission until its response is built.
pub struct Permit<'a>(&'a Gate);

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The serving query engine. Cheap to share behind an `Arc`; all methods
/// take `&self` and are safe to call from many threads at once.
pub struct QueryEngine {
    views: GenerationManager,
    inductive: Option<InductiveContext>,
    /// Boot-time map from external id to serving-graph row. The graph
    /// never mutates (upserted nodes join the *store*, not the walk
    /// graph), so inductive edge endpoints resolve against the seed ids
    /// regardless of how the store has changed since.
    graph_rows: HashMap<u64, u32>,
    limits: EngineLimits,
    gate: Gate,
    obs: Obs,
}

impl QueryEngine {
    /// Assembles a read-only engine (single frozen generation). `inductive`
    /// enables [`QueryEngine::encode_unseen`]; without it the engine serves
    /// kNN and link scoring only.
    pub fn new(
        store: EmbeddingStore,
        index: HnswIndex,
        inductive: Option<InductiveContext>,
        limits: EngineLimits,
        obs: Obs,
    ) -> CoaneResult<Self> {
        let graph_rows = Self::check_inductive(&inductive, &store)?;
        let views = GenerationManager::new_static(store, index, obs.clone());
        Ok(Self { views, inductive, graph_rows, limits, gate: Gate::new(limits.queue_cap), obs })
    }

    /// Assembles a mutable engine over a generation directory: on first
    /// boot the seed store/index become generation 0; otherwise the
    /// directory's current generation is recovered (replaying its mutation
    /// log, falling back one generation when the current is damaged) and
    /// the seed state is ignored. The returned report says what happened.
    pub fn new_mutable(
        store: EmbeddingStore,
        index: HnswIndex,
        inductive: Option<InductiveContext>,
        limits: EngineLimits,
        obs: Obs,
        mutation: MutationConfig,
    ) -> CoaneResult<(Self, RecoveryReport)> {
        let graph_rows = Self::check_inductive(&inductive, &store)?;
        let (views, report) = GenerationManager::open(store, index, mutation, obs.clone())?;
        let engine =
            Self { views, inductive, graph_rows, limits, gate: Gate::new(limits.queue_cap), obs };
        Ok((engine, report))
    }

    /// Validates the inductive context against the *seed* store and builds
    /// the boot-time id → graph-row map.
    fn check_inductive(
        inductive: &Option<InductiveContext>,
        store: &EmbeddingStore,
    ) -> CoaneResult<HashMap<u64, u32>> {
        let Some(ctx) = inductive else { return Ok(HashMap::new()) };
        if ctx.graph.num_nodes() != store.len() {
            return Err(CoaneError::config(format!(
                "serving graph has {} nodes but the store holds {} vectors",
                ctx.graph.num_nodes(),
                store.len()
            )));
        }
        Ok(store.ids().iter().enumerate().map(|(row, &id)| (id, row as u32)).collect())
    }

    /// The current generation view (pinned: later mutations don't affect
    /// it). Every multi-query entry point pins exactly one.
    pub fn view(&self) -> Arc<GenerationView> {
        self.views.current()
    }

    /// The embedding store of the current view.
    pub fn store(&self) -> Arc<EmbeddingStore> {
        Arc::clone(self.views.current().store())
    }

    /// The ANN index of the current view.
    pub fn index(&self) -> Arc<HnswIndex> {
        Arc::clone(self.views.current().index())
    }

    /// Whether inductive encoding is available.
    pub fn can_encode(&self) -> bool {
        self.inductive.is_some()
    }

    /// Whether this engine accepts upserts and deletes.
    pub fn is_mutable(&self) -> bool {
        self.views.is_mutable()
    }

    /// Generation / tombstone / log summary for `/stats` and `/healthz`.
    pub fn mutation_stats(&self) -> MutationStats {
        self.views.stats()
    }

    /// Blocks until the background compactor has nothing runnable — test
    /// and shutdown helper.
    pub fn wait_compactions(&self) {
        self.views.wait_idle();
    }

    /// The batch/queue bounds this engine admits under.
    pub fn limits(&self) -> EngineLimits {
        self.limits
    }

    /// The telemetry handle (shared with the HTTP layer for /stats).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Batch-size precheck shared by both admission styles.
    fn check_batch(&self, n_queries: usize) -> CoaneResult<()> {
        if n_queries > self.limits.max_batch {
            return Err(CoaneError::config(format!(
                "batch of {n_queries} exceeds max_batch {} — split the request",
                self.limits.max_batch
            )));
        }
        Ok(())
    }

    /// Blocking admission: waits while `queue_cap` batches are in flight,
    /// records the post-admission depth on the `serve/queue_depth` gauge.
    fn admit(&self, n_queries: usize, class: QueryClass) -> CoaneResult<Permit<'_>> {
        self.check_batch(n_queries)?;
        let depth = self.gate.acquire();
        self.obs.gauge("serve/queue_depth", depth as f64);
        self.obs.add(class.batches_counter(), 1);
        Ok(Permit(&self.gate))
    }

    /// Load-shedding admission: never blocks. Sheds with a typed
    /// [`CoaneError::Busy`] when the queue depth has reached the class's
    /// priority threshold (see [`QueryClass`]); a shed bumps the
    /// `serve/shed` counter. On success the returned [`Permit`] holds one
    /// queue slot until dropped — callers pairing this with
    /// [`QueryEngine::knn_multi`] / [`QueryEngine::score_links_multi`] keep
    /// the permit alive across the execution round trip.
    pub fn try_admit(&self, n_queries: usize, class: QueryClass) -> CoaneResult<Permit<'_>> {
        self.check_batch(n_queries)?;
        match self.gate.try_acquire(class.threshold(self.limits.queue_cap)) {
            Ok(depth) => {
                self.obs.gauge("serve/queue_depth", depth as f64);
                self.obs.add(class.batches_counter(), 1);
                Ok(Permit(&self.gate))
            }
            Err(depth) => {
                self.obs.add("serve/shed", 1);
                Err(CoaneError::busy(
                    format!(
                        "admission queue saturated for class {} (depth {depth} of {})",
                        class.name(),
                        self.limits.queue_cap
                    ),
                    1,
                ))
            }
        }
    }

    /// Batch kNN. Answers come back in query order; each is the `k` most
    /// similar stored nodes as `(external id, score)`, score descending,
    /// ties broken by row index. Id queries exclude themselves; tombstoned
    /// rows are filtered.
    pub fn knn(&self, queries: &[KnnTarget], params: KnnParams) -> CoaneResult<Vec<KnnAnswer>> {
        let _permit = self.admit(queries.len(), QueryClass::Knn)?;
        self.knn_multi(&[queries], params).0.pop().expect("one job in, one answer out")
    }

    /// Validates batch-wide kNN parameters; the message applies to every
    /// job in a coalesced group identically.
    fn knn_params_error(&self, params: KnnParams) -> Option<String> {
        if params.k == 0 {
            return Some("k must be positive".to_string());
        }
        if !params.exact && params.scorer != self.views.scorer() {
            return Some(format!(
                "index was built for scorer {:?}; request exact=true to rank by {:?}",
                self.views.scorer().name(),
                params.scorer.name()
            ));
        }
        None
    }

    /// Resolves one job's queries to (vector, excluded row) pairs against
    /// the pinned view; the first bad query fails the job. Tombstoned ids
    /// read as unknown.
    fn resolve_knn_job<'a>(
        view: &'a GenerationView,
        queries: &'a [KnnTarget],
    ) -> CoaneResult<ResolvedJob<'a>> {
        let store = view.store();
        let mut resolved = Vec::with_capacity(queries.len());
        for q in queries {
            match q {
                KnnTarget::Id(id) => {
                    let row = view.resolve_live(*id).ok_or_else(|| {
                        CoaneError::config(format!("unknown node id {id} in knn query"))
                    })?;
                    resolved.push((store.row(row as usize), Some(row)));
                }
                KnnTarget::Vector(v) => {
                    if v.len() != store.dim() {
                        return Err(CoaneError::config(format!(
                            "query vector has dim {} but the store holds dim {}",
                            v.len(),
                            store.dim()
                        )));
                    }
                    resolved.push((v.as_slice(), None));
                }
            }
        }
        Ok(resolved)
    }

    /// Coalesced kNN: executes several jobs (request bodies) sharing one
    /// [`KnnParams`] in a single kernel pass against one pinned view and
    /// demultiplexes per-job answers, returning that view's stamp alongside.
    /// Errors isolate per job — an unknown id or bad dimension fails only
    /// the job that sent it, and the remaining jobs' answers are
    /// bit-identical to running each alone (see module docs). Does **not**
    /// admit: callers hold a permit per job ([`QueryEngine::try_admit`]) or
    /// come through [`QueryEngine::knn`].
    pub fn knn_multi(
        &self,
        jobs: &[&[KnnTarget]],
        params: KnnParams,
    ) -> (Vec<CoaneResult<Vec<KnnAnswer>>>, ViewStamp) {
        let view = self.views.current();
        let stamp = view.stamp();
        (self.knn_multi_on(&view, jobs, params), stamp)
    }

    fn knn_multi_on(
        &self,
        view: &GenerationView,
        jobs: &[&[KnnTarget]],
        params: KnnParams,
    ) -> Vec<CoaneResult<Vec<KnnAnswer>>> {
        let _scope = self.obs.scope("serve/knn");
        let total: u64 = jobs.iter().map(|j| j.len() as u64).sum();
        self.obs.add("serve/knn/requests", total);
        if jobs.len() > 1 {
            self.obs.add("serve/knn/coalesced", jobs.len() as u64);
        }
        if let Some(msg) = self.knn_params_error(params) {
            return jobs.iter().map(|_| Err(CoaneError::config(msg.clone()))).collect();
        }
        let store = view.store();
        // Per-job resolution; invalid jobs drop out of the kernel pass.
        let resolved: Vec<CoaneResult<ResolvedJob>> =
            jobs.iter().map(|job| Self::resolve_knn_job(view, job)).collect();
        let flat: Vec<(&[f32], Option<u32>)> =
            resolved.iter().flatten().flatten().copied().collect();
        // One kernel pass over every valid job's queries, with a uniform
        // over-ask of `k + 1 + tombstones` (the extras cover self-exclusion
        // plus worst-case tombstone filtering; taking a prefix of the
        // strict total order is exclusion-count invariant). Exact goes
        // through the pre-transposed matmul; approximate keeps per-query
        // HNSW searches — each is a pure function of (graph, query), so
        // result bytes are batch-invariant either way.
        //
        // On a quantized store the candidate pass runs under quantized
        // scores, so it over-fetches by `rerank_factor` and the rerank
        // below restores exact f32 ordering before the top-`k` cut.
        let quantized = store.precision() != Precision::F32;
        let fetch = if quantized { params.k * self.limits.rerank_factor.max(1) } else { params.k };
        let want = fetch + 1 + view.tombstones();
        let mut hits: Vec<Vec<Hit>> = if params.exact {
            let refs: Vec<&[f32]> = flat.iter().map(|&(v, _)| v).collect();
            view.exact().knn(store, &refs, want, params.scorer)
        } else {
            pool::parallel_map(flat.len(), |i| {
                let (vec, _) = flat[i];
                view.index().knn(store, vec, want)
            })
        };
        if quantized {
            // Exact-f32 rerank: rescore every candidate against the f32
            // sidecar with the sequential `Scorer::score` (the recall
            // ground truth's arithmetic) and re-sort under the strict
            // (−score, row) total order. Each rescore is a pure function
            // of its (query, row) pair, so answers stay bit-identical at
            // any thread count and ISA level — and quantization error can
            // only cost candidate *membership*, never final score bytes.
            self.obs.add("serve/knn/reranked", hits.iter().map(|h| h.len() as u64).sum());
            for (i, list) in hits.iter_mut().enumerate() {
                let (q, _) = flat[i];
                for h in list.iter_mut() {
                    h.score = params.scorer.score(q, store.row(h.index as usize));
                }
                list.sort_unstable_by(|a, b| {
                    (-a.score).total_cmp(&(-b.score)).then(a.index.cmp(&b.index))
                });
            }
        }
        // Demultiplex in job order, filtering tombstones and self-hits.
        let mut cursor = hits.into_iter();
        resolved
            .into_iter()
            .map(|job| {
                job.map(|queries| {
                    queries
                        .into_iter()
                        .map(|(_, exclude)| {
                            let neighbors: Vec<(u64, f32)> = cursor
                                .next()
                                .expect("one hit list per resolved query")
                                .into_iter()
                                .filter(|h| {
                                    Some(h.index) != exclude && !view.is_dead(h.index as usize)
                                })
                                .take(params.k)
                                .map(|h| (store.id_of(h.index as usize), h.score))
                                .collect();
                            KnnAnswer { neighbors }
                        })
                        .collect()
                })
            })
            .collect()
    }

    /// Batch link scoring: the similarity of each `(u, v)` id pair under
    /// `scorer`, in pair order. Shares [`coane_eval::linkpred::edge_scores`]
    /// with the offline evaluation, so online and offline scores for the
    /// same embedding are bit-identical.
    pub fn score_links(&self, pairs: &[(u64, u64)], scorer: Scorer) -> CoaneResult<Vec<f64>> {
        let _permit = self.admit(pairs.len(), QueryClass::Links)?;
        self.score_links_multi(&[pairs], scorer).pop().expect("one job in, one answer out")
    }

    /// Coalesced link scoring: several jobs scored in one
    /// [`coane_eval::linkpred::edge_scores`] pass against one pinned view
    /// (per-pair scores are pure functions of the pair, so concatenation is
    /// score-invariant), with per-job error isolation. Does **not** admit —
    /// see [`QueryEngine::knn_multi`].
    pub fn score_links_multi(
        &self,
        jobs: &[&[(u64, u64)]],
        scorer: Scorer,
    ) -> Vec<CoaneResult<Vec<f64>>> {
        let _scope = self.obs.scope("serve/links");
        let total: u64 = jobs.iter().map(|j| j.len() as u64).sum();
        self.obs.add("serve/links/requests", total);
        if jobs.len() > 1 {
            self.obs.add("serve/links/coalesced", jobs.len() as u64);
        }
        let view = self.views.current();
        let resolved: Vec<CoaneResult<Vec<(u32, u32)>>> = jobs
            .iter()
            .map(|job| {
                job.iter()
                    .map(|&(u, v)| {
                        let ru = view
                            .resolve_live(u)
                            .ok_or_else(|| CoaneError::config(format!("unknown node id {u}")))?;
                        let rv = view
                            .resolve_live(v)
                            .ok_or_else(|| CoaneError::config(format!("unknown node id {v}")))?;
                        Ok((ru, rv))
                    })
                    .collect()
            })
            .collect();
        let flat: Vec<(u32, u32)> = resolved.iter().flatten().flatten().copied().collect();
        let store = view.store();
        let scores = coane_eval::edge_scores(store.vectors(), store.dim(), &flat, scorer);
        let mut cursor = scores.into_iter();
        resolved
            .into_iter()
            .map(|job| {
                job.map(|rows| (0..rows.len()).map(|_| cursor.next().expect("score")).collect())
            })
            .collect()
    }

    /// Encodes unseen attributed nodes: each request node is appended to
    /// the serving graph with its edges, fresh walks are sampled, and the
    /// trained encoder embeds it (no-grad forward, bit-identical at any
    /// thread count). Answers in request order.
    pub fn encode_unseen(&self, nodes: &[UnseenNode]) -> CoaneResult<Vec<Vec<f32>>> {
        let _permit = self.admit(nodes.len(), QueryClass::Encode)?;
        self.encode_unseen_admitted(nodes)
    }

    /// [`QueryEngine::encode_unseen`] minus admission, for callers already
    /// holding a [`Permit`] (the HTTP layer's try-admit path).
    pub fn encode_unseen_admitted(&self, nodes: &[UnseenNode]) -> CoaneResult<Vec<Vec<f32>>> {
        let _scope = self.obs.scope("serve/encode");
        self.obs.add("serve/encode/requests", nodes.len() as u64);
        self.encode_nodes(nodes)
    }

    /// The encode kernel, shared by the encode route and attributed
    /// upserts: no admission, no encode-route telemetry.
    fn encode_nodes(&self, nodes: &[UnseenNode]) -> CoaneResult<Vec<Vec<f32>>> {
        let ctx = self.inductive.as_ref().ok_or_else(|| {
            CoaneError::config(
                "this server has no model loaded; restart with --model/--graph to enable encoding",
            )
        })?;
        if nodes.is_empty() {
            return Ok(Vec::new());
        }
        let base = &ctx.graph;
        let n = base.num_nodes();
        let attr_dim = base.attr_dim();
        for (k, node) in nodes.iter().enumerate() {
            if node.edges.is_empty() {
                return Err(CoaneError::config(format!(
                    "unseen node {k} has no edges; contexts need at least one link"
                )));
            }
            if node.attr_indices.len() != node.attr_values.len() {
                return Err(CoaneError::config(format!(
                    "unseen node {k}: {} attribute indices vs {} values",
                    node.attr_indices.len(),
                    node.attr_values.len()
                )));
            }
            if let Some(&bad) = node.attr_indices.iter().find(|&&i| i as usize >= attr_dim) {
                return Err(CoaneError::config(format!(
                    "unseen node {k}: attribute index {bad} out of range (dim {attr_dim})"
                )));
            }
        }
        // Extend the serving graph with every request node at once: base
        // edges + request edges, base attribute rows + request rows. Edge
        // endpoints resolve against the boot-time graph ids — the walk
        // graph is fixed; upserted store rows are not walkable.
        let mut b = GraphBuilder::new(n + nodes.len(), attr_dim);
        for (u, v, w) in base.edges() {
            b.add_edge(u, v, w);
        }
        let mut rows: Vec<Vec<(u32, f32)>> = (0..n as u32)
            .map(|v| {
                let (idx, val) = base.attrs().row(v);
                idx.iter().copied().zip(val.iter().copied()).collect()
            })
            .collect();
        for (k, node) in nodes.iter().enumerate() {
            let new_id = (n + k) as u32;
            for &e in &node.edges {
                let row =
                    self.graph_rows.get(&e).copied().ok_or_else(|| {
                        CoaneError::config(format!("unknown edge endpoint id {e}"))
                    })?;
                b.add_edge(new_id, row, 1.0);
            }
            rows.push(
                node.attr_indices.iter().copied().zip(node.attr_values.iter().copied()).collect(),
            );
        }
        let extended = b.with_attrs(NodeAttributes::from_sparse_rows(attr_dim, &rows)).build();
        let new_ids: Vec<u32> = (0..nodes.len()).map(|k| (n + k) as u32).collect();
        let z = embed_nodes_obs(&ctx.model, &ctx.config, &extended, &new_ids, &self.obs);
        Ok((0..z.rows()).map(|r| z.row(r).to_vec()).collect())
    }

    /// Upserts a batch of nodes: raw vectors go straight to the log,
    /// attributed nodes are encoded through the inductive path first (the
    /// resulting vector is logged, so replay never needs the model). The
    /// batch is atomic and durable once this returns. New ids append store
    /// rows, known ids overwrite in place, tombstoned ids are revived.
    pub fn upsert(&self, items: &[UpsertItem]) -> CoaneResult<MutationAck> {
        let _permit = self.admit(items.len(), QueryClass::Mutate)?;
        self.upsert_admitted(items)
    }

    /// [`QueryEngine::upsert`] minus admission, for callers already holding
    /// a [`Permit`].
    pub fn upsert_admitted(&self, items: &[UpsertItem]) -> CoaneResult<MutationAck> {
        // Encode attributed items first, outside the writer lock — encoding
        // is the expensive part and must not serialize behind it.
        let attributed: Vec<UnseenNode> = items
            .iter()
            .filter_map(|it| match &it.source {
                UpsertSource::Node(node) => Some(node.clone()),
                UpsertSource::Vector(_) => None,
            })
            .collect();
        let encoded = if attributed.is_empty() {
            Vec::new() // vector-only batches work without a loaded model
        } else {
            self.encode_nodes(&attributed)?
        };
        let mut encoded = encoded.into_iter();
        let ops: Vec<MutOp> = items
            .iter()
            .map(|it| {
                let vector = match &it.source {
                    UpsertSource::Vector(v) => v.clone(),
                    UpsertSource::Node(_) => encoded.next().expect("one vector per encoded node"),
                };
                MutOp::Upsert { id: it.id, vector }
            })
            .collect();
        let stamp = self.views.mutate(ops)?;
        self.obs.add("serve/mut/upserts", items.len() as u64);
        Ok(MutationAck { applied: items.len(), stamp })
    }

    /// Tombstones a batch of live ids: they vanish from kNN and link
    /// scoring immediately and their rows are reclaimed at the next
    /// compaction. Atomic and durable once this returns. Deleting an
    /// unknown (or already-deleted) id fails the batch, as does emptying
    /// the store.
    pub fn delete(&self, ids: &[u64]) -> CoaneResult<MutationAck> {
        let _permit = self.admit(ids.len(), QueryClass::Mutate)?;
        self.delete_admitted(ids)
    }

    /// [`QueryEngine::delete`] minus admission, for callers already holding
    /// a [`Permit`].
    pub fn delete_admitted(&self, ids: &[u64]) -> CoaneResult<MutationAck> {
        let ops: Vec<MutOp> = ids.iter().map(|&id| MutOp::Delete { id }).collect();
        let stamp = self.views.mutate(ops)?;
        self.obs.add("serve/mut/deletes", ids.len() as u64);
        Ok(MutationAck { applied: ids.len(), stamp })
    }
}
