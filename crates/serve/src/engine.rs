//! The query engine: typed request execution over an [`EmbeddingStore`] +
//! [`HnswIndex`], with bounded batching on the workspace pool and
//! per-query-class telemetry.
//!
//! Three query classes (mirroring the HTTP routes):
//!
//! - **kNN** ([`QueryEngine::knn`]): approximate (HNSW) or exact
//!   (brute-force) retrieval for a batch of queries, each given by a stored
//!   node id or a raw vector.
//! - **Link scoring** ([`QueryEngine::score_links`]): batch edge scoring of
//!   `(u, v)` id pairs through the shared
//!   [`coane_eval::linkpred::edge_scores`] path — the same scorers the
//!   offline evaluation uses.
//! - **Inductive encoding** ([`QueryEngine::encode_unseen`]): embeds
//!   never-seen attributed nodes with the trained model
//!   ([`coane_core::inductive::embed_nodes_obs`] →
//!   `CoaneModel::encode_nograd`), given their attributes and their edges
//!   into the serving graph.
//!
//! ## Batching and backpressure
//!
//! Queries arrive in batches (one HTTP body = one batch) and are bounded by
//! [`EngineLimits::max_batch`]; oversized batches are rejected with a typed
//! config error rather than queued, so a client can never wedge the pool
//! with one request. Within a batch, per-query work fans out on
//! [`coane_nn::pool::parallel_map`] — deterministic result order, answers
//! bit-identical at any thread count. Admission control for concurrent
//! batches is a counting [`Gate`]: at most `queue_cap` batches may be
//! in flight, further submitters block (that blocked-accept backpressure is
//! what the HTTP layer leans on), and the current depth is exported as the
//! `serve/queue_depth` gauge.
//!
//! Every query class times itself under a `serve/<class>` scope and counts
//! requests/batches, so `/stats` can report per-class QPS.

use std::sync::{Condvar, Mutex};

use coane_core::{embed_nodes_obs, CoaneConfig, CoaneModel};
use coane_error::{CoaneError, CoaneResult};
use coane_graph::{AttributedGraph, GraphBuilder, NodeAttributes};
use coane_nn::{pool, Scorer};
use coane_obs::Obs;

use crate::hnsw::{knn_exact, Hit, HnswIndex};
use crate::store::EmbeddingStore;

/// Bounds on batch admission (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct EngineLimits {
    /// Max queries per batch; larger batches are rejected.
    pub max_batch: usize,
    /// Max concurrently admitted batches; further submitters block.
    pub queue_cap: usize,
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self { max_batch: 256, queue_cap: 64 }
    }
}

/// One kNN query: exactly one of `id` (a stored node) or `vector` (a raw
/// embedding-space point).
#[derive(Clone, Debug)]
pub enum KnnTarget {
    /// Look up the stored vector of this external node id.
    Id(u64),
    /// Query with this raw vector.
    Vector(Vec<f32>),
}

/// Parameters shared by every query in a kNN batch.
#[derive(Clone, Copy, Debug)]
pub struct KnnParams {
    /// Number of neighbors to return.
    pub k: usize,
    /// Scorer to rank under. Approximate search requires the index's build
    /// scorer; any scorer works with `exact`.
    pub scorer: Scorer,
    /// Brute-force scan instead of the HNSW graph.
    pub exact: bool,
}

/// One kNN answer: neighbor external ids with similarity scores, most
/// similar first. When the query was a stored id, that node itself is
/// filtered out of its own neighbor list.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnAnswer {
    /// Neighbors as `(external id, score)`, score descending.
    pub neighbors: Vec<(u64, f32)>,
}

/// An unseen node to encode: attributes (sparse) plus edges into the
/// serving graph, by external node id.
#[derive(Clone, Debug)]
pub struct UnseenNode {
    /// Sparse attribute indices (must be < the graph's attribute dim).
    pub attr_indices: Vec<u32>,
    /// Attribute values, parallel to `attr_indices`.
    pub attr_values: Vec<f32>,
    /// Existing nodes this node links to (external ids; at least one).
    pub edges: Vec<u64>,
}

/// Everything inductive encoding needs: the trained model, its
/// architecture config, and the graph the server walks for contexts.
pub struct InductiveContext {
    /// Trained CoANE model (filter bank + decoder).
    pub model: CoaneModel,
    /// The architecture configuration the model was trained with.
    pub config: CoaneConfig,
    /// The serving graph; unseen nodes attach to it by edges.
    pub graph: AttributedGraph,
}

/// Counting admission gate with a blocking `acquire` (see module docs).
struct Gate {
    state: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl Gate {
    fn new(cap: usize) -> Self {
        Self { state: Mutex::new(0), freed: Condvar::new(), cap: cap.max(1) }
    }

    /// Blocks until a slot frees, then returns the depth *after* admission.
    fn acquire(&self) -> usize {
        let mut depth = self.state.lock().unwrap();
        while *depth >= self.cap {
            depth = self.freed.wait(depth).unwrap();
        }
        *depth += 1;
        *depth
    }

    fn release(&self) {
        let mut depth = self.state.lock().unwrap();
        *depth -= 1;
        self.freed.notify_one();
    }
}

/// RAII admission permit.
struct Permit<'a>(&'a Gate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The serving query engine. Cheap to share behind an `Arc`; all methods
/// take `&self` and are safe to call from many threads at once.
pub struct QueryEngine {
    store: EmbeddingStore,
    index: HnswIndex,
    inductive: Option<InductiveContext>,
    limits: EngineLimits,
    gate: Gate,
    obs: Obs,
}

impl QueryEngine {
    /// Assembles an engine. `inductive` enables [`QueryEngine::encode_unseen`];
    /// without it the engine serves kNN and link scoring only.
    pub fn new(
        store: EmbeddingStore,
        index: HnswIndex,
        inductive: Option<InductiveContext>,
        limits: EngineLimits,
        obs: Obs,
    ) -> CoaneResult<Self> {
        if let Some(ctx) = &inductive {
            if ctx.graph.num_nodes() != store.len() {
                return Err(CoaneError::config(format!(
                    "serving graph has {} nodes but the store holds {} vectors",
                    ctx.graph.num_nodes(),
                    store.len()
                )));
            }
        }
        Ok(Self { store, index, inductive, limits, gate: Gate::new(limits.queue_cap), obs })
    }

    /// The embedding store this engine serves.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The ANN index this engine serves.
    pub fn index(&self) -> &HnswIndex {
        &self.index
    }

    /// Whether inductive encoding is available.
    pub fn can_encode(&self) -> bool {
        self.inductive.is_some()
    }

    /// The batch/queue bounds this engine admits under.
    pub fn limits(&self) -> EngineLimits {
        self.limits
    }

    /// The telemetry handle (shared with the HTTP layer for /stats).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Admission control: blocks while `queue_cap` batches are in flight,
    /// records the post-admission depth on the `serve/queue_depth` gauge.
    fn admit(&self, n_queries: usize, class: &'static str) -> CoaneResult<Permit<'_>> {
        if n_queries > self.limits.max_batch {
            return Err(CoaneError::config(format!(
                "batch of {n_queries} exceeds max_batch {} — split the request",
                self.limits.max_batch
            )));
        }
        let depth = self.gate.acquire();
        self.obs.gauge("serve/queue_depth", depth as f64);
        self.obs.add(class, 1);
        Ok(Permit(&self.gate))
    }

    /// Batch kNN. Answers come back in query order; each is the `k` most
    /// similar stored nodes as `(external id, score)`, score descending,
    /// ties broken by row index. Id queries exclude themselves.
    pub fn knn(&self, queries: &[KnnTarget], params: KnnParams) -> CoaneResult<Vec<KnnAnswer>> {
        let _permit = self.admit(queries.len(), "serve/knn/batches")?;
        let _scope = self.obs.scope("serve/knn");
        self.obs.add("serve/knn/requests", queries.len() as u64);
        if params.k == 0 {
            return Err(CoaneError::config("k must be positive"));
        }
        if !params.exact && params.scorer != self.index.scorer() {
            return Err(CoaneError::config(format!(
                "index was built for scorer {:?}; request exact=true to rank by {:?}",
                self.index.scorer().name(),
                params.scorer.name()
            )));
        }
        // Resolve every query to (vector, excluded row) up front so errors
        // surface before any parallel work starts.
        let mut resolved: Vec<(&[f32], Option<u32>)> = Vec::with_capacity(queries.len());
        for q in queries {
            match q {
                KnnTarget::Id(id) => {
                    let row = self.store.index_of(*id).ok_or_else(|| {
                        CoaneError::config(format!("unknown node id {id} in knn query"))
                    })?;
                    resolved.push((self.store.row(row as usize), Some(row)));
                }
                KnnTarget::Vector(v) => {
                    if v.len() != self.store.dim() {
                        return Err(CoaneError::config(format!(
                            "query vector has dim {} but the store holds dim {}",
                            v.len(),
                            self.store.dim()
                        )));
                    }
                    resolved.push((v.as_slice(), None));
                }
            }
        }
        // Fan the batch out on the pool: one job per query, results in
        // query order regardless of thread count.
        let answers = pool::parallel_map(resolved.len(), |i| {
            let (vec, exclude) = resolved[i];
            // Self-hits are filtered after search, so ask for one extra.
            let want = params.k + usize::from(exclude.is_some());
            let hits: Vec<Hit> = if params.exact {
                knn_exact(&self.store, vec, want, params.scorer)
            } else {
                self.index.knn(&self.store, vec, want)
            };
            let neighbors: Vec<(u64, f32)> = hits
                .into_iter()
                .filter(|h| Some(h.index) != exclude)
                .take(params.k)
                .map(|h| (self.store.id_of(h.index as usize), h.score))
                .collect();
            KnnAnswer { neighbors }
        });
        Ok(answers)
    }

    /// Batch link scoring: the similarity of each `(u, v)` id pair under
    /// `scorer`, in pair order. Shares [`coane_eval::linkpred::edge_scores`]
    /// with the offline evaluation, so online and offline scores for the
    /// same embedding are bit-identical.
    pub fn score_links(&self, pairs: &[(u64, u64)], scorer: Scorer) -> CoaneResult<Vec<f64>> {
        let _permit = self.admit(pairs.len(), "serve/links/batches")?;
        let _scope = self.obs.scope("serve/links");
        self.obs.add("serve/links/requests", pairs.len() as u64);
        let rows: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(u, v)| {
                let ru = self
                    .store
                    .index_of(u)
                    .ok_or_else(|| CoaneError::config(format!("unknown node id {u}")))?;
                let rv = self
                    .store
                    .index_of(v)
                    .ok_or_else(|| CoaneError::config(format!("unknown node id {v}")))?;
                Ok((ru, rv))
            })
            .collect::<CoaneResult<_>>()?;
        Ok(coane_eval::edge_scores(self.store.vectors(), self.store.dim(), &rows, scorer))
    }

    /// Encodes unseen attributed nodes: each request node is appended to
    /// the serving graph with its edges, fresh walks are sampled, and the
    /// trained encoder embeds it (no-grad forward, bit-identical at any
    /// thread count). Answers in request order.
    pub fn encode_unseen(&self, nodes: &[UnseenNode]) -> CoaneResult<Vec<Vec<f32>>> {
        let _permit = self.admit(nodes.len(), "serve/encode/batches")?;
        let _scope = self.obs.scope("serve/encode");
        self.obs.add("serve/encode/requests", nodes.len() as u64);
        let ctx = self.inductive.as_ref().ok_or_else(|| {
            CoaneError::config(
                "this server has no model loaded; restart with --model/--graph to enable encoding",
            )
        })?;
        if nodes.is_empty() {
            return Ok(Vec::new());
        }
        let base = &ctx.graph;
        let n = base.num_nodes();
        let attr_dim = base.attr_dim();
        for (k, node) in nodes.iter().enumerate() {
            if node.edges.is_empty() {
                return Err(CoaneError::config(format!(
                    "unseen node {k} has no edges; contexts need at least one link"
                )));
            }
            if node.attr_indices.len() != node.attr_values.len() {
                return Err(CoaneError::config(format!(
                    "unseen node {k}: {} attribute indices vs {} values",
                    node.attr_indices.len(),
                    node.attr_values.len()
                )));
            }
            if let Some(&bad) = node.attr_indices.iter().find(|&&i| i as usize >= attr_dim) {
                return Err(CoaneError::config(format!(
                    "unseen node {k}: attribute index {bad} out of range (dim {attr_dim})"
                )));
            }
        }
        // Extend the serving graph with every request node at once: base
        // edges + request edges, base attribute rows + request rows.
        let mut b = GraphBuilder::new(n + nodes.len(), attr_dim);
        for (u, v, w) in base.edges() {
            b.add_edge(u, v, w);
        }
        let mut rows: Vec<Vec<(u32, f32)>> = (0..n as u32)
            .map(|v| {
                let (idx, val) = base.attrs().row(v);
                idx.iter().copied().zip(val.iter().copied()).collect()
            })
            .collect();
        for (k, node) in nodes.iter().enumerate() {
            let new_id = (n + k) as u32;
            for &e in &node.edges {
                let row =
                    self.store.index_of(e).filter(|&r| (r as usize) < n).ok_or_else(|| {
                        CoaneError::config(format!("unknown edge endpoint id {e}"))
                    })?;
                b.add_edge(new_id, row, 1.0);
            }
            rows.push(
                node.attr_indices.iter().copied().zip(node.attr_values.iter().copied()).collect(),
            );
        }
        let extended = b.with_attrs(NodeAttributes::from_sparse_rows(attr_dim, &rows)).build();
        let new_ids: Vec<u32> = (0..nodes.len()).map(|k| (n + k) as u32).collect();
        let z = embed_nodes_obs(&ctx.model, &ctx.config, &extended, &new_ids, &self.obs);
        Ok((0..z.rows()).map(|r| z.row(r).to_vec()).collect())
    }
}
