//! Lockdown of the live-mutation layer: deterministic replay (any thread
//! count, any batch split, across kill+restart), crash-safe generation
//! recovery with fallback and byte-identical self-heal, tombstone
//! filtering, mutation admission, and the contract that `/knn` answers
//! during a compaction storm are bit-identical to serial answers at the
//! same sequence number.
//!
//! The fixture is a synthetic store (deterministic LCG vectors) — none of
//! these paths touch a trained model.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use coane_nn::{pool, Scorer};
use coane_serve::{
    http_request, EmbeddingStore, EngineLimits, GenerationManager, HnswConfig, HnswIndex,
    HttpServer, KnnParams, KnnTarget, MutOp, MutationConfig, QueryClass, QueryEngine, ServerConfig,
    UpsertItem, UpsertSource,
};

const NODES: usize = 48;
const DIM: usize = 8;

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("coane-mutations-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Deterministic pseudo-random vector; `tag` varies the stream.
fn lcg_vec(tag: u64) -> Vec<f32> {
    let mut state = tag.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..DIM)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// Seed store: ids 100..100+NODES, LCG vectors.
fn fixture_store() -> EmbeddingStore {
    let mut data = Vec::with_capacity(NODES * DIM);
    for row in 0..NODES {
        data.extend_from_slice(&lcg_vec(row as u64));
    }
    let ids: Vec<u64> = (0..NODES as u64).map(|i| 100 + i).collect();
    EmbeddingStore::new(data, DIM, Some(ids), "mutations fixture").expect("store")
}

fn fixture_index(store: &EmbeddingStore) -> HnswIndex {
    HnswIndex::build(store, Scorer::Cosine, HnswConfig::default())
}

fn open_manager(dir: &Path, compact_every: usize) -> (GenerationManager, bool) {
    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.to_path_buf(), compact_every };
    let (manager, report) =
        GenerationManager::open(store, index, config, coane_obs::Obs::disabled()).expect("open");
    (manager, report.fell_back)
}

/// 12 mixed batches of 5 records each: a fresh insert, an overwrite (which
/// sometimes revives a tombstone), a delete of a seed row, and an
/// insert+delete pair inside the same batch — exercising every mutation
/// shape across arbitrary compaction cuts.
fn mutation_stream() -> Vec<Vec<MutOp>> {
    (0..12u64)
        .map(|b| {
            vec![
                MutOp::Upsert { id: 1000 + b, vector: lcg_vec(7000 + b) },
                MutOp::Upsert { id: 100 + (b * 5) % NODES as u64, vector: lcg_vec(8000 + b) },
                MutOp::Delete { id: 100 + b },
                MutOp::Upsert { id: 2000 + b, vector: lcg_vec(9000 + b) },
                MutOp::Delete { id: 2000 + b },
            ]
        })
        .collect()
}

/// A complete fingerprint of a manager's live state: store bytes on disk,
/// the HNSW adjacency at every layer, and a kNN answer transcript.
fn snapshot(manager: &GenerationManager, name: &str) -> (Vec<u8>, String, String, u64, u64) {
    let view = manager.current();
    let path = tmp_dir(&format!("snap-{name}")).with_extension("store");
    view.store().save(&path).expect("save snapshot");
    let bytes = std::fs::read(&path).expect("read snapshot");
    let _ = std::fs::remove_file(&path);
    let index = view.index();
    let mut adj = String::new();
    for row in 0..index.len() as u32 {
        for layer in index.neighbors(row) {
            for &n in layer {
                adj.push_str(&format!("{n} "));
            }
            adj.push('|');
        }
        adj.push('\n');
    }
    let mut answers = String::new();
    for probe in 0..4u64 {
        for hit in index.knn(view.store(), &lcg_vec(40 + probe), 6) {
            if !view.is_dead(hit.index as usize) {
                answers.push_str(&format!(
                    "{}:{:08x} ",
                    view.store().id_of(hit.index as usize),
                    hit.score.to_bits()
                ));
            }
        }
        answers.push('\n');
    }
    let stamp = view.stamp();
    (bytes, adj, answers, stamp.generation, stamp.seq)
}

// ---------------------------------------------------------------------------
// Replay equality
// ---------------------------------------------------------------------------

/// The tentpole determinism contract: the same acknowledged mutation
/// stream converges on bit-identical store bytes, HNSW adjacency, and kNN
/// answers — at 1 or 4 pool threads, and when the run is killed and
/// restarted halfway through (recovery replays the log).
#[test]
fn replay_is_bit_identical_across_threads_and_restart() {
    let default_threads = pool::threads();
    let stream = mutation_stream();
    let mut reference = None;
    for (variant, threads, split) in
        [("t1", 1usize, None), ("t4", 4, None), ("restart", 4, Some(7usize))]
    {
        pool::set_threads(threads);
        let dir = tmp_dir(&format!("replay-{variant}"));
        let (manager, fell_back) = open_manager(&dir, 8);
        assert!(!fell_back);
        let cut = split.unwrap_or(stream.len());
        for batch in &stream[..cut] {
            manager.mutate(batch.clone()).expect("mutate");
        }
        let manager = if let Some(cut) = split {
            // Simulated restart: drop (joins the compactor), reopen — the
            // recovery path replays the log — and finish the stream.
            drop(manager);
            let (manager, fell_back) = open_manager(&dir, 8);
            assert!(!fell_back, "clean restart must not fall back");
            for batch in &stream[cut..] {
                manager.mutate(batch.clone()).expect("mutate after restart");
            }
            manager
        } else {
            manager
        };
        manager.wait_idle();
        let snap = snapshot(&manager, variant);
        assert_eq!(snap.3, 60 / 8, "{variant}: 60 records at compact-every 8 → generation 7");
        assert_eq!(snap.4, 60, "{variant}: last applied seq");
        match &reference {
            None => reference = Some(snap),
            Some(expected) => {
                assert_eq!(expected.0, snap.0, "{variant}: store bytes diverged");
                assert_eq!(expected.1, snap.1, "{variant}: HNSW adjacency diverged");
                assert_eq!(expected.2, snap.2, "{variant}: kNN answers diverged");
            }
        }
        drop(manager);
        let _ = std::fs::remove_dir_all(&dir);
    }
    pool::set_threads(default_threads);
}

/// The replay contract extends to quantized bases: with an int8 seed
/// store, the WAL stays f32 but every compacted generation re-quantizes to
/// the base precision, and the same stream converges on bit-identical v2
/// store bytes, adjacency, and kNN answers at 1 or 4 threads and across a
/// kill+restart (which recovers the int8 generation from disk, ignoring
/// the seed).
#[test]
fn int8_replay_is_bit_identical_across_threads_and_restart() {
    let default_threads = pool::threads();
    let open_int8 = |dir: &Path| {
        let store =
            fixture_store().with_precision(coane_serve::Precision::Int8).expect("quantize seed");
        let index = fixture_index(&store);
        let config = MutationConfig { dir: dir.to_path_buf(), compact_every: 8 };
        let (manager, report) =
            GenerationManager::open(store, index, config, coane_obs::Obs::disabled())
                .expect("open int8");
        (manager, report.fell_back)
    };
    let stream = mutation_stream();
    let mut reference: Option<(Vec<u8>, String, String, u64, u64)> = None;
    for (variant, threads, split) in
        [("i8-t1", 1usize, None), ("i8-t4", 4, None), ("i8-restart", 4, Some(7usize))]
    {
        pool::set_threads(threads);
        let dir = tmp_dir(&format!("replay-{variant}"));
        let (manager, fell_back) = open_int8(&dir);
        assert!(!fell_back);
        let cut = split.unwrap_or(stream.len());
        for batch in &stream[..cut] {
            manager.mutate(batch.clone()).expect("mutate");
        }
        let manager = if split.is_some() {
            drop(manager);
            let (manager, fell_back) = open_int8(&dir);
            assert!(!fell_back, "clean restart must not fall back");
            for batch in &stream[cut..] {
                manager.mutate(batch.clone()).expect("mutate after restart");
            }
            manager
        } else {
            manager
        };
        manager.wait_idle();
        let view = manager.current();
        assert_eq!(
            view.store().precision(),
            coane_serve::Precision::Int8,
            "{variant}: compaction must preserve the base precision"
        );
        let snap = snapshot(&manager, variant);
        assert_eq!(snap.4, 60, "{variant}: last applied seq");
        match &reference {
            None => reference = Some(snap),
            Some(expected) => {
                assert_eq!(expected.0, snap.0, "{variant}: int8 store bytes diverged");
                assert_eq!(expected.1, snap.1, "{variant}: HNSW adjacency diverged");
                assert_eq!(expected.2, snap.2, "{variant}: kNN answers diverged");
            }
        }
        drop(manager);
        let _ = std::fs::remove_dir_all(&dir);
    }
    pool::set_threads(default_threads);
}

/// Applying the stream one record per batch equals applying it as whole
/// batches: sequence numbers are dense and the index grows one row at a
/// time, so the batch split cannot leak into the result.
#[test]
fn batch_split_is_invariant() {
    let stream = mutation_stream();
    let dir_whole = tmp_dir("split-whole");
    let dir_single = tmp_dir("split-single");
    let (whole, _) = open_manager(&dir_whole, usize::MAX / 2);
    let (single, _) = open_manager(&dir_single, usize::MAX / 2);
    for batch in &stream {
        whole.mutate(batch.clone()).expect("whole batch");
        for op in batch {
            single.mutate(vec![op.clone()]).expect("single op");
        }
    }
    let a = snapshot(&whole, "split-a");
    let b = snapshot(&single, "split-b");
    assert_eq!(a, b, "batch split changed the replayed state");
    drop(whole);
    drop(single);
    let _ = std::fs::remove_dir_all(&dir_whole);
    let _ = std::fs::remove_dir_all(&dir_single);
}

// ---------------------------------------------------------------------------
// Crash-safety fault injection
// ---------------------------------------------------------------------------

/// Bit-flip the current generation's store: boot falls back to the
/// previous generation (whose log still carries the fold window), reports
/// it, and the triggered re-compaction regenerates the damaged
/// generation's store byte-identically.
#[test]
fn store_corruption_falls_back_and_self_heals_byte_identically() {
    let live_rows = |manager: &GenerationManager| {
        let view = manager.current();
        let mut rows: Vec<(u64, Vec<u32>)> = (0..view.store().len())
            .filter(|&row| !view.is_dead(row))
            .map(|row| {
                let bits = view.store().row(row).iter().map(|v| v.to_bits()).collect();
                (view.store().id_of(row), bits)
            })
            .collect();
        rows.sort();
        rows
    };
    let dir = tmp_dir("fallback");
    let (manager, _) = open_manager(&dir, 5);
    for batch in mutation_stream().into_iter().take(2) {
        manager.mutate(batch).expect("mutate");
    }
    manager.wait_idle(); // 10 records at compact-every 5 → generation 2
    let before = snapshot(&manager, "fallback-before");
    let before_rows = live_rows(&manager);
    assert_eq!(before.3, 2);
    drop(manager);
    let gen2 = dir.join("gen-2.store");
    let pristine = std::fs::read(&gen2).expect("gen-2 store bytes");
    let mut damaged = pristine.clone();
    damaged[50] ^= 0x04;
    std::fs::write(&gen2, &damaged).expect("corrupt gen-2 store");

    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.clone(), compact_every: 5 };
    let (manager, report) =
        GenerationManager::open(store, index, config, coane_obs::Obs::disabled())
            .expect("fallback boot");
    assert!(report.fell_back, "boot must fall back to generation 1");
    assert_eq!(report.generation, 1);
    assert_eq!(report.seq, 10, "the fallback log replays the full fold window");
    assert_eq!(report.replayed, 5);
    assert!(
        report.notes.iter().any(|n| n.contains("generation 2 unusable")),
        "notes must name the damaged generation: {:?}",
        report.notes
    );
    // Before the re-fold the fallback view still carries its tombstones
    // physically, so compare the *live* state: the set of live ids and
    // their vectors must equal the pre-crash generation's.
    assert_eq!(before_rows, live_rows(&manager), "fallback live state differs from pre-crash");
    // Self-heal: the recovered delta is over the threshold, so boot
    // re-triggers the fold and regenerates gen-2.store bit-for-bit.
    manager.wait_idle();
    assert_eq!(manager.stats().generation, 2, "self-heal must re-fold to generation 2");
    let regenerated = std::fs::read(&gen2).expect("regenerated gen-2 store");
    assert_eq!(pristine, regenerated, "re-compaction must regenerate identical bytes");
    let healed = snapshot(&manager, "fallback-healed");
    assert_eq!(before.0, healed.0, "healed store bytes differ from pre-crash");
    assert_eq!(before.2, healed.2, "healed answers differ from pre-crash");
    drop(manager);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn or bit-flipped log tail (crash mid-append) loses only the
/// unacknowledged suffix: boot truncates to the valid prefix and reports
/// it in the recovery notes.
#[test]
fn wal_tail_damage_truncates_to_the_valid_prefix() {
    let torn = |bytes: &mut Vec<u8>| {
        let n = bytes.len();
        bytes.truncate(n - 3);
    };
    let bitflip = |bytes: &mut Vec<u8>| {
        let n = bytes.len();
        bytes[n - 10] ^= 0x40;
    };
    type Damage<'a> = &'a dyn Fn(&mut Vec<u8>);
    let modes: [(&str, Damage); 2] = [("torn", &torn), ("bitflip", &bitflip)];
    for (mode, damage) in modes {
        let dir = tmp_dir(&format!("tail-{mode}"));
        let (manager, _) = open_manager(&dir, usize::MAX / 2);
        for b in 0..3u64 {
            manager
                .mutate(vec![
                    MutOp::Upsert { id: 5000 + 2 * b, vector: lcg_vec(b) },
                    MutOp::Upsert { id: 5000 + 2 * b + 1, vector: lcg_vec(100 + b) },
                ])
                .expect("mutate");
        }
        drop(manager);
        let wal = dir.join("gen-0.wal");
        let mut bytes = std::fs::read(&wal).expect("wal bytes");
        damage(&mut bytes);
        std::fs::write(&wal, &bytes).expect("damage wal tail");

        let store = fixture_store();
        let index = fixture_index(&store);
        let config = MutationConfig { dir: dir.clone(), compact_every: usize::MAX / 2 };
        let (manager, report) =
            GenerationManager::open(store, index, config, coane_obs::Obs::disabled())
                .expect("prefix recovery");
        assert_eq!(report.generation, 0, "{mode}: tail damage must not fail the generation");
        assert_eq!(report.seq, 5, "{mode}: the damaged sixth record is dropped");
        assert_eq!(report.replayed, 5, "{mode}");
        assert!(
            report.notes.iter().any(|n| n.contains("truncated to 5 records")),
            "{mode}: notes must report the truncation: {:?}",
            report.notes
        );
        let view = manager.current();
        assert!(view.resolve_live(5004).is_some(), "{mode}: acked prefix survives");
        assert!(view.resolve_live(5005).is_none(), "{mode}: torn record must not apply");
        drop(manager);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// When no generation is usable (store damaged with no fallback, or a
/// garbage `CURRENT` marker), boot fails with the typed mutation-log error
/// and exit code 10 — never a panic, never a silently-empty server.
#[test]
fn unrecoverable_state_is_a_typed_mutlog_error() {
    let dir = tmp_dir("dead");
    let (manager, _) = open_manager(&dir, usize::MAX / 2);
    manager.mutate(vec![MutOp::Upsert { id: 9000, vector: lcg_vec(1) }]).expect("mutate");
    drop(manager);
    let gen0 = dir.join("gen-0.store");
    let mut bytes = std::fs::read(&gen0).expect("gen-0 store");
    bytes[40] ^= 0x01;
    std::fs::write(&gen0, &bytes).expect("corrupt gen-0 store");
    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.clone(), compact_every: usize::MAX / 2 };
    let err = GenerationManager::open(store, index, config, coane_obs::Obs::disabled())
        .expect_err("generation 0 has no fallback");
    assert_eq!(err.kind(), "mutlog", "err: {err}");
    assert_eq!(err.exit_code(), 10);
    assert!(err.to_string().contains("no usable generation"), "err: {err}");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = tmp_dir("current");
    let (manager, _) = open_manager(&dir, usize::MAX / 2);
    drop(manager);
    std::fs::write(dir.join("CURRENT"), b"banana\n").expect("garbage CURRENT");
    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.clone(), compact_every: usize::MAX / 2 };
    let err = GenerationManager::open(store, index, config, coane_obs::Obs::disabled())
        .expect_err("garbage CURRENT must not boot");
    assert_eq!(err.kind(), "mutlog", "err: {err}");
    assert!(err.to_string().contains("CURRENT"), "err: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Engine-level semantics
// ---------------------------------------------------------------------------

fn mutable_engine(dir: &Path, compact_every: usize) -> QueryEngine {
    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.to_path_buf(), compact_every };
    let (engine, _) = QueryEngine::new_mutable(
        store,
        index,
        None,
        EngineLimits::default(),
        coane_obs::Obs::disabled(),
        config,
    )
    .expect("mutable engine");
    engine
}

/// Tombstoned rows vanish from kNN immediately (before any compaction),
/// re-upserting revives them, and the engine refuses to delete the last
/// live row or an unknown id.
#[test]
fn tombstones_filter_knn_and_upserts_revive() {
    let dir = tmp_dir("tombstones");
    let engine = mutable_engine(&dir, usize::MAX / 2);
    let probe = lcg_vec(0); // exactly row 0's vector, id 100
    let params = KnnParams { k: 5, scorer: Scorer::Cosine, exact: true };
    let top = |engine: &QueryEngine| {
        engine.knn(&[KnnTarget::Vector(probe.clone())], params).expect("knn")[0].neighbors[0].0
    };
    assert_eq!(top(&engine), 100, "the probe's own row must rank first");

    engine.delete(&[100]).expect("delete");
    assert_ne!(top(&engine), 100, "a tombstoned row must not be returned");
    let err = engine.delete(&[100]).expect_err("double delete");
    assert!(err.to_string().contains("unknown or already-deleted"), "err: {err}");

    engine
        .upsert(&[UpsertItem { id: 100, source: UpsertSource::Vector(probe.clone()) }])
        .expect("revive");
    assert_eq!(top(&engine), 100, "a revived row must be returned again");

    // Deleting every live row is refused with the whole batch rejected.
    let all: Vec<u64> = (0..NODES as u64).map(|i| 100 + i).collect();
    let err = engine.delete(&all).expect_err("emptying the store");
    assert!(err.to_string().contains("would empty the store"), "err: {err}");
    assert_eq!(engine.view().live_rows(), NODES, "a rejected batch must not apply partially");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A read-only engine reports mutations as a config error that tells the
/// operator how to enable them.
#[test]
fn read_only_engine_rejects_mutations() {
    let store = fixture_store();
    let index = fixture_index(&store);
    let engine =
        QueryEngine::new(store, index, None, EngineLimits::default(), coane_obs::Obs::disabled())
            .expect("static engine");
    assert!(!engine.is_mutable());
    let err = engine
        .upsert(&[UpsertItem { id: 7, source: UpsertSource::Vector(lcg_vec(7)) }])
        .expect_err("read-only upsert");
    assert!(err.to_string().contains("--mutable"), "err: {err}");
    assert_eq!(err.kind(), "config");
    let stats = engine.mutation_stats();
    assert!(!stats.mutable);
    assert_eq!(stats.compact_every, 0);
}

/// Mutations shed at half the queue depth while kNN still admits — a write
/// flood cannot occupy the slots retrieval needs.
#[test]
fn mutations_shed_at_half_queue_depth() {
    let dir = tmp_dir("admission");
    let store = fixture_store();
    let index = fixture_index(&store);
    let config = MutationConfig { dir: dir.clone(), compact_every: usize::MAX / 2 };
    let (engine, _) = QueryEngine::new_mutable(
        store,
        index,
        None,
        EngineLimits { queue_cap: 4, ..Default::default() },
        coane_obs::Obs::disabled(),
        config,
    )
    .expect("engine");
    let p1 = engine.try_admit(1, QueryClass::Mutate).expect("first mutate admitted");
    let p2 = engine.try_admit(1, QueryClass::Mutate).expect("second mutate admitted");
    let err = engine.try_admit(1, QueryClass::Mutate).expect_err("half-full queue sheds mutations");
    assert_eq!(err.kind(), "busy", "err: {err}");
    // Retrieval still has the remaining half of the queue.
    let p3 = engine.try_admit(1, QueryClass::Knn).expect("knn still admitted");
    drop((p1, p2, p3));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The HTTP surface of the mutation path: `/upsert` and `/delete`
/// round-trip with `(generation, seq)` stamps, `/healthz` and `/stats`
/// report the mutation state, wrong methods get 405, malformed upserts get
/// 400, and a read-only server rejects mutations with 400.
#[test]
fn http_mutation_routes_roundtrip() {
    let dir = tmp_dir("http");
    let engine = Arc::new(mutable_engine(&dir, usize::MAX / 2));
    let config = ServerConfig { addr: "127.0.0.1:0".into(), threads: 2, ..Default::default() };
    let server = HttpServer::bind(Arc::clone(&engine), config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let vec_json: Vec<String> = lcg_vec(3).iter().map(|v| format!("{v}")).collect();
    let body = format!("{{\"nodes\":[{{\"id\":9100,\"vector\":[{}]}}]}}", vec_json.join(","));
    let (status, resp) = http_request(&addr, "POST", "/upsert", &body).expect("upsert");
    assert_eq!(status, 200, "upsert response: {resp}");
    assert!(resp.contains("\"applied\":1"), "upsert response: {resp}");
    assert!(resp.contains("\"seq\":1"), "upsert response: {resp}");

    let (status, resp) = http_request(&addr, "POST", "/delete", "{\"ids\":[9100]}").expect("del");
    assert_eq!(status, 200, "delete response: {resp}");
    assert!(resp.contains("\"deleted\":1"), "delete response: {resp}");
    assert!(resp.contains("\"seq\":2"), "delete response: {resp}");

    let (status, resp) = http_request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(resp.contains("\"mutable\":true"), "healthz: {resp}");
    assert!(resp.contains(&format!("\"nodes\":{NODES}")), "healthz: {resp}");

    let (status, resp) = http_request(&addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    assert!(resp.contains("\"store\""), "stats: {resp}");
    assert!(resp.contains("\"tombstones\":1"), "deleted id shows as a tombstone: {resp}");
    assert!(resp.contains("\"wal_bytes\""), "stats: {resp}");

    let (status, _) = http_request(&addr, "GET", "/upsert", "").expect("405");
    assert_eq!(status, 405);
    let (status, resp) =
        http_request(&addr, "POST", "/upsert", "{\"nodes\":[{\"id\":5}]}").expect("bad upsert");
    assert_eq!(status, 400, "vectorless upsert: {resp}");
    assert!(resp.contains("needs a vector or attributes"), "bad upsert: {resp}");
    let (status, resp) =
        http_request(&addr, "POST", "/delete", "{\"ids\":[424242]}").expect("bad delete");
    assert_eq!(status, 400, "unknown delete: {resp}");

    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    // Read-only server: mutation routes answer 400 with the enable hint.
    let store = fixture_store();
    let index = fixture_index(&store);
    let engine = Arc::new(
        QueryEngine::new(store, index, None, EngineLimits::default(), coane_obs::Obs::disabled())
            .expect("static engine"),
    );
    let config = ServerConfig { addr: "127.0.0.1:0".into(), threads: 1, ..Default::default() };
    let server = HttpServer::bind(Arc::clone(&engine), config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let (status, resp) = http_request(&addr, "POST", "/upsert", &body).expect("ro upsert");
    assert_eq!(status, 400, "read-only upsert: {resp}");
    assert!(resp.contains("--mutable"), "read-only upsert: {resp}");
    let (status, resp) = http_request(&addr, "GET", "/healthz", "").expect("ro healthz");
    assert_eq!(status, 200);
    assert!(resp.contains("\"mutable\":false"), "read-only healthz: {resp}");
    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------------
// Queries during the swap
// ---------------------------------------------------------------------------

/// The zero-downtime contract: exact `/knn` answers observed concurrently
/// with an upsert/delete storm (compaction folding every 7 records) are
/// bit-identical to serial answers at the same sequence number — the
/// generation swap is invisible to readers except through the stamp.
#[test]
fn concurrent_queries_during_swap_match_serial_answers() {
    let probe = lcg_vec(55);
    let params = KnnParams { k: 5, scorer: Scorer::Cosine, exact: true };
    let upsert_batch = |r: u64| {
        vec![
            UpsertItem { id: 3000 + r, source: UpsertSource::Vector(lcg_vec(500 + r)) },
            UpsertItem { id: 100 + r, source: UpsertSource::Vector(lcg_vec(600 + r)) },
        ]
    };
    let transcript = |answer: &coane_serve::KnnAnswer| {
        answer
            .neighbors
            .iter()
            .map(|&(id, score)| format!("{id}:{:08x}", score.to_bits()))
            .collect::<Vec<_>>()
            .join(" ")
    };

    // Serial control: apply each batch and record the exact answer at the
    // resulting sequence number (no compaction — exact answers at a seq are
    // generation-invariant, which is exactly what the storm run verifies).
    let control_dir = tmp_dir("swap-control");
    let control = mutable_engine(&control_dir, usize::MAX / 2);
    let mut expected: HashMap<u64, String> = HashMap::new();
    let answer_now = |engine: &QueryEngine| {
        transcript(&engine.knn(&[KnnTarget::Vector(probe.clone())], params).expect("knn")[0])
    };
    expected.insert(0, answer_now(&control));
    for r in 0..12u64 {
        let ack = control.upsert(&upsert_batch(r)).expect("control upsert");
        expected.insert(ack.stamp.seq, answer_now(&control));
        let ack = control.delete(&[3000 + r]).expect("control delete");
        expected.insert(ack.stamp.seq, answer_now(&control));
    }
    drop(control);
    let _ = std::fs::remove_dir_all(&control_dir);

    // Storm: the same stream with compaction folding every 7 records while
    // three reader threads hammer the same query and collect stamped
    // answers.
    let storm_dir = tmp_dir("swap-storm");
    let engine = mutable_engine(&storm_dir, 7);
    let stop = AtomicBool::new(false);
    let observed: Vec<(u64, String)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let query = vec![KnnTarget::Vector(probe.clone())];
                        let (mut results, stamp) = engine.knn_multi(&[&query], params);
                        let answers = results.pop().unwrap().expect("storm knn");
                        seen.push((stamp.seq, transcript(&answers[0])));
                    }
                    seen
                })
            })
            .collect();
        for r in 0..12u64 {
            engine.upsert(&upsert_batch(r)).expect("storm upsert");
            engine.delete(&[3000 + r]).expect("storm delete");
        }
        engine.wait_compactions();
        stop.store(true, Ordering::Relaxed);
        readers.into_iter().flat_map(|h| h.join().expect("reader thread")).collect()
    });
    assert!(!observed.is_empty());
    for (seq, answer) in &observed {
        let expected = expected
            .get(seq)
            .unwrap_or_else(|| panic!("observed seq {seq} is not a post-batch state"));
        assert_eq!(expected, answer, "answer at seq {seq} differs from the serial control");
    }
    // The storm actually compacted: 36 records at compact-every 7.
    assert_eq!(engine.mutation_stats().generation, 5);
    assert_eq!(
        &expected[&36],
        &transcript(&engine.knn(&[KnnTarget::Vector(probe.clone())], params).expect("knn")[0]),
        "final storm answers differ from the serial control"
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(&storm_dir);
}
