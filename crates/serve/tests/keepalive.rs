//! Connection-lifecycle and coalescing-determinism lockdown for the
//! keep-alive HTTP server: pipelined requests on one socket, idle-timeout
//! and slow-loris deadlines, load shedding with `429` + `Retry-After`,
//! and the contract that micro-batching never changes response bytes —
//! batched answers are bit-identical to serial answers at any thread
//! count.
//!
//! The fixture uses a synthetic embedding store (deterministic LCG
//! vectors), not a trained model: none of these paths touch the encoder,
//! and the store shape is all the connection machinery sees.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use coane_nn::{pool, Scorer};
use coane_serve::{
    http_request, EmbeddingStore, EngineLimits, HnswConfig, HnswIndex, HttpClient, HttpServer,
    KnnParams, KnnTarget, QueryClass, QueryEngine, ServerConfig,
};

const NODES: usize = 300;
const DIM: usize = 16;

/// Deterministic pseudo-random store — no training, instant to build.
fn synthetic_engine(limits: EngineLimits) -> Arc<QueryEngine> {
    let mut state = 0x2545F491_u64;
    let mut data = Vec::with_capacity(NODES * DIM);
    for _ in 0..NODES * DIM {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        data.push(((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5);
    }
    let store = EmbeddingStore::new(data, DIM, None, "keepalive fixture").expect("store");
    let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
    Arc::new(
        QueryEngine::new(store, index, None, limits, coane_obs::Obs::enabled()).expect("engine"),
    )
}

/// Binds a server over a shared engine `Arc`, so a test can also drive the
/// engine directly (e.g. hold an admission permit while a request lands).
fn start_server(
    limits: EngineLimits,
    config: ServerConfig,
) -> (String, std::thread::JoinHandle<()>, Arc<QueryEngine>) {
    let engine = synthetic_engine(limits);
    let server = HttpServer::bind(Arc::clone(&engine), config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, engine)
}

fn config(threads: usize) -> ServerConfig {
    ServerConfig { addr: "127.0.0.1:0".into(), threads, ..Default::default() }
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http_request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

/// Reads one raw HTTP response (status line, headers, Content-Length body)
/// off a buffered socket; returns (status, headers joined, body).
fn read_raw_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status_line = String::new();
    let n = reader.read_line(&mut status_line).expect("status line");
    assert!(n > 0, "connection closed before a response");
    let status: u16 = status_line.split_whitespace().nth(1).expect("code").parse().expect("u16");
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("header line");
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
        headers.push_str(line.trim_end());
        headers.push('\n');
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

fn raw_post(path: &str, body: &str, connection: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
}

#[test]
fn keepalive_pipelining_and_reuse() {
    let (addr, handle, _engine) = start_server(EngineLimits::default(), config(2));

    // Serial baseline over one-shot connections.
    let (s1, baseline1) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[0,1],"k":5}"#).expect("serial 1");
    let (s2, baseline2) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[7],"k":3,"exact":true}"#).expect("serial 2");
    assert_eq!((s1, s2), (200, 200));

    // Two pipelined requests written in ONE write on ONE socket: the
    // keep-alive loop must answer both, in order, on the same connection.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let wire = format!(
        "{}{}",
        raw_post("/knn", r#"{"ids":[0,1],"k":5}"#, "keep-alive"),
        raw_post("/knn", r#"{"ids":[7],"k":3,"exact":true}"#, "keep-alive"),
    );
    stream.write_all(wire.as_bytes()).expect("pipelined write");
    let mut reader = BufReader::new(stream);
    let (st1, h1, b1) = read_raw_response(&mut reader);
    let (st2, h2, b2) = read_raw_response(&mut reader);
    assert_eq!((st1, st2), (200, 200));
    assert!(h1.contains("Connection: keep-alive"), "headers: {h1}");
    assert!(h2.contains("Connection: keep-alive"), "headers: {h2}");
    // Byte-identical to the serial one-shot answers.
    assert_eq!(b1, baseline1);
    assert_eq!(b2, baseline2);

    // The HttpClient reuses its connection across many requests and
    // transparently survives a server-side idle close.
    let mut client = HttpClient::new(&addr);
    for _ in 0..5 {
        let (status, body) = client.request("POST", "/knn", r#"{"ids":[0,1],"k":5}"#).expect("req");
        assert_eq!(status, 200);
        assert_eq!(body, baseline1);
    }

    shutdown(&addr, handle);
}

#[test]
fn http10_and_connection_close_are_honored() {
    let (addr, handle, _engine) = start_server(EngineLimits::default(), config(1));

    // Connection: close → the server answers, says close, and closes.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(raw_post("/knn", r#"{"ids":[0],"k":2}"#, "close").as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers, _) = read_raw_response(&mut reader);
    assert_eq!(status, 200);
    assert!(headers.contains("Connection: close"), "headers: {headers}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof after close");
    assert!(rest.is_empty(), "server kept the connection open after Connection: close");

    // HTTP/1.0 without keep-alive defaults to close.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(b"GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n").expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers, _) = read_raw_response(&mut reader);
    assert_eq!(status, 200);
    assert!(headers.contains("Connection: close"), "headers: {headers}");

    shutdown(&addr, handle);
}

#[test]
fn idle_keepalive_connection_is_closed_silently() {
    let cfg = ServerConfig { keep_alive_timeout: Duration::from_millis(150), ..config(1) };
    let (addr, handle, _engine) = start_server(EngineLimits::default(), cfg);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream
        .write_all(raw_post("/knn", r#"{"ids":[0],"k":2}"#, "keep-alive").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream);
    let (status, _, _) = read_raw_response(&mut reader);
    assert_eq!(status, 200);

    // Sit idle past the keep-alive timeout: the server hangs up without
    // writing anything (no 408 — idle expiry is a normal end).
    std::thread::sleep(Duration::from_millis(600));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "idle close must be silent, got {:?}", String::from_utf8_lossy(&rest));

    // The server itself is still healthy for new connections.
    let (status, _) = http_request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);

    shutdown(&addr, handle);
}

#[test]
fn slow_loris_partial_request_gets_408() {
    let cfg = ServerConfig { read_deadline: Duration::from_millis(300), ..config(1) };
    let (addr, handle, _engine) = start_server(EngineLimits::default(), cfg);

    // Dribble a partial request line and stall: once the first byte
    // arrived, the whole request must complete within the read deadline.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(b"POST /knn HT").expect("partial write");
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_raw_response(&mut reader);
    assert_eq!(status, 408, "body: {body}");
    assert!(body.contains("deadline"), "body: {body}");
    // And the connection is closed afterwards.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());

    // A handler survived the loris; normal traffic still flows.
    let (status, _) = http_request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);

    shutdown(&addr, handle);
}

#[test]
fn saturated_queue_sheds_with_429_not_hangs() {
    // queue_cap = 1 and a permit held by the test: the next request MUST
    // be shed deterministically — there is no free slot to race for.
    let (addr, handle, engine) =
        start_server(EngineLimits { max_batch: 64, queue_cap: 1, ..Default::default() }, config(2));

    let permit = engine.try_admit(1, QueryClass::Knn).expect("slot free");
    let (status, body) = http_request(&addr, "POST", "/knn", r#"{"ids":[0],"k":2}"#).expect("shed");
    assert_eq!(status, 429, "body: {body}");
    assert!(body.contains("saturated"), "body: {body}");
    assert!(body.contains("\"kind\":\"busy\""), "body: {body}");

    // The raw response carries Retry-After.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(raw_post("/knn", r#"{"ids":[0],"k":2}"#, "close").as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers, _) = read_raw_response(&mut reader);
    assert_eq!(status, 429);
    assert!(headers.contains("Retry-After: 1"), "headers: {headers}");

    // Lower-priority classes shed at the same depth too (their thresholds
    // are ≤ the kNN threshold).
    let (status, _) =
        http_request(&addr, "POST", "/score_links", r#"{"pairs":[[0,1]]}"#).expect("links shed");
    assert_eq!(status, 429);

    // Telemetry recorded every shed.
    let shed = engine.obs().counter("serve/shed");
    assert!(shed >= 3, "expected ≥3 sheds, saw {shed}");

    // Freeing the slot un-sheds immediately — 429 is load, not lockup.
    drop(permit);
    let (status, body) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[0],"k":2}"#).expect("recovered");
    assert_eq!(status, 200, "body: {body}");

    shutdown(&addr, handle);
}

#[test]
fn coalesced_answers_are_bit_identical_to_serial_at_any_thread_count() {
    let engine = synthetic_engine(EngineLimits::default());
    let default_threads = pool::threads();

    // Three jobs of different shapes, mixing id and vector targets.
    let jobs: Vec<Vec<KnnTarget>> = vec![
        vec![KnnTarget::Id(0), KnnTarget::Id(17), KnnTarget::Id(240)],
        vec![KnnTarget::Vector(engine.store().row(5).to_vec()), KnnTarget::Id(3)],
        (0..40).map(|i| KnnTarget::Id(i * 7)).collect(),
    ];
    let job_refs: Vec<&[KnnTarget]> = jobs.iter().map(Vec::as_slice).collect();
    let link_jobs: Vec<Vec<(u64, u64)>> = vec![
        vec![(0, 1), (2, 3), (17, 240)],
        (0..50).map(|i| (i, (i * 3 + 1) % NODES as u64)).collect(),
    ];
    let link_refs: Vec<&[(u64, u64)]> = link_jobs.iter().map(Vec::as_slice).collect();

    let mut reference: Option<String> = None;
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        let mut transcript = String::new();
        for exact in [false, true] {
            let params = KnnParams { k: 6, scorer: Scorer::Cosine, exact };
            // Coalesced: all jobs in one kernel pass.
            let batched: Vec<_> = engine
                .knn_multi(&job_refs, params)
                .0
                .into_iter()
                .map(|r| r.expect("valid job"))
                .collect();
            // Serial: each job alone.
            for (job, batched_answers) in job_refs.iter().zip(&batched) {
                let serial = engine.knn_multi(&[job], params).0.pop().unwrap().expect("valid job");
                assert_eq!(
                    &serial, batched_answers,
                    "coalescing changed answers (exact={exact}, threads={threads})"
                );
            }
            // Bit-exact transcript across thread counts.
            for answers in &batched {
                for a in answers {
                    for &(id, score) in &a.neighbors {
                        transcript.push_str(&format!("{id}:{:08x} ", score.to_bits()));
                    }
                    transcript.push('\n');
                }
            }
        }
        let batched_links: Vec<_> = engine
            .score_links_multi(&link_refs, Scorer::Dot)
            .into_iter()
            .map(|r| r.expect("valid pairs"))
            .collect();
        for (job, batched_scores) in link_refs.iter().zip(&batched_links) {
            let serial =
                engine.score_links_multi(&[job], Scorer::Dot).pop().unwrap().expect("valid pairs");
            assert_eq!(&serial, batched_scores, "link coalescing changed scores");
            for s in batched_scores {
                transcript.push_str(&format!("{:016x} ", s.to_bits()));
            }
        }
        match &reference {
            None => reference = Some(transcript),
            Some(expected) => {
                assert_eq!(expected, &transcript, "answers differ between 1 and {threads} threads")
            }
        }
    }
    pool::set_threads(default_threads);
}

#[test]
fn knn_multi_isolates_per_job_errors() {
    let engine = synthetic_engine(EngineLimits::default());
    let params = KnnParams { k: 4, scorer: Scorer::Cosine, exact: true };

    let good_a = vec![KnnTarget::Id(1), KnnTarget::Id(2)];
    let bad = vec![KnnTarget::Id(1), KnnTarget::Id(999_999)];
    let good_b = vec![KnnTarget::Id(250)];
    let results = engine.knn_multi(&[&good_a, &bad, &good_b], params).0;
    assert_eq!(results.len(), 3);
    let err = results[1].as_ref().expect_err("unknown id must fail its job");
    assert!(err.to_string().contains("unknown node id 999999"), "err: {err}");

    // The healthy jobs' answers are bit-identical to running them alone.
    let solo_a = engine.knn_multi(&[&good_a], params).0.pop().unwrap().expect("solo a");
    let solo_b = engine.knn_multi(&[&good_b], params).0.pop().unwrap().expect("solo b");
    assert_eq!(results[0].as_ref().expect("job a"), &solo_a);
    assert_eq!(results[2].as_ref().expect("job b"), &solo_b);

    // Same isolation for link scoring: a bad pair fails only its job.
    let link_results =
        engine.score_links_multi(&[&[(0, 1)][..], &[(0, 999_999)][..]], Scorer::Cosine);
    assert!(link_results[0].is_ok());
    assert!(link_results[1].is_err());
}
