//! End-to-end HTTP integration: train a tiny CoANE model, export the
//! embedding to a store, stand the server up on a loopback port, and drive
//! every route — happy paths, error paths, and the JSON schema — through
//! real sockets.

use std::sync::Arc;

use coane_core::{Coane, CoaneConfig};
use coane_datasets::Preset;
use coane_graph::AttributedGraph;
use coane_nn::Scorer;
use coane_serve::{
    http_request, EmbeddingStore, EngineLimits, HnswConfig, HnswIndex, HttpServer,
    InductiveContext, QueryEngine, ServerConfig,
};
use serde::{Deserialize, Value};
use serde_json::from_str;

/// Tiny-but-real training run shared by every test in this file.
fn trained_fixture() -> (AttributedGraph, EmbeddingStore) {
    let (graph, _) = Preset::Cora.generate_scaled(0.04, 11);
    let cfg = tiny_config();
    let trainer = Coane::try_new(cfg).expect("valid config");
    let (z, _model, _stats) = trainer.try_fit_full(&graph, None, |_, _| {}).expect("fit");
    let store = EmbeddingStore::new(z.as_slice().to_vec(), z.cols(), None, "http test fixture")
        .expect("store");
    (graph, store)
}

fn tiny_config() -> CoaneConfig {
    CoaneConfig {
        embed_dim: 16,
        epochs: 2,
        walk_length: 20,
        decoder_hidden: (32, 32),
        threads: 2,
        seed: 11,
        ..Default::default()
    }
}

fn start_server(with_model: bool) -> (String, std::thread::JoinHandle<()>) {
    let (graph, store) = trained_fixture();
    let inductive = if with_model {
        let cfg = tiny_config();
        let trainer = Coane::try_new(cfg.clone()).expect("valid config");
        let (_z, model, _stats) = trainer.try_fit_full(&graph, None, |_, _| {}).expect("fit");
        Some(InductiveContext { model, config: cfg, graph })
    } else {
        None
    };
    let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
    let engine = QueryEngine::new(
        store,
        index,
        inductive,
        EngineLimits { max_batch: 64, queue_cap: 8, ..Default::default() },
        coane_obs::Obs::enabled(),
    )
    .expect("engine");
    let server = HttpServer::bind(
        Arc::new(engine),
        ServerConfig { addr: "127.0.0.1:0".into(), threads: 2, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http_request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

#[derive(Deserialize)]
struct Health {
    status: String,
    nodes: usize,
    dim: usize,
    scorer: String,
    encode: bool,
}

#[derive(Deserialize)]
struct Neighbor {
    id: u64,
    score: f32,
}

#[derive(Deserialize)]
struct KnnResult {
    neighbors: Vec<Neighbor>,
}

#[derive(Deserialize)]
struct KnnResponse {
    k: usize,
    scorer: String,
    results: Vec<KnnResult>,
}

#[derive(Deserialize)]
struct LinkResponse {
    scorer: String,
    scores: Vec<f64>,
}

#[derive(Deserialize)]
struct EncodeResponse {
    dim: usize,
    embeddings: Vec<Vec<f32>>,
    neighbors: Option<Vec<KnnResult>>,
}

#[test]
fn all_routes_end_to_end() {
    let (addr, handle) = start_server(true);

    // /healthz reflects the engine.
    let (status, body) = http_request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    let health: Health = from_str(&body).expect("health json");
    assert_eq!(health.status, "ok");
    assert!(health.nodes > 50);
    assert_eq!(health.dim, 16);
    assert_eq!(health.scorer, "cosine");
    assert!(health.encode);

    // /knn by id: k neighbors, excluding the query node itself, scores
    // descending.
    let (status, body) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[0,1],"k":5}"#).expect("knn");
    assert_eq!(status, 200, "body: {body}");
    let knn: KnnResponse = from_str(&body).expect("knn json");
    assert_eq!(knn.k, 5);
    assert_eq!(knn.scorer, "cosine");
    assert_eq!(knn.results.len(), 2);
    for (qi, result) in knn.results.iter().enumerate() {
        assert_eq!(result.neighbors.len(), 5);
        assert!(result.neighbors.iter().all(|n| n.id != qi as u64), "self in neighbor list");
        for w in result.neighbors.windows(2) {
            assert!(w[0].score >= w[1].score, "scores not descending");
        }
    }

    // Exact and approximate agree on the top hit for an easy query.
    let (_, exact_body) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[0],"k":3,"exact":true}"#).expect("exact");
    let exact: KnnResponse = from_str(&exact_body).expect("exact json");
    assert_eq!(exact.results[0].neighbors.len(), 3);

    // /score_links matches the shared eval scorer path.
    let (status, body) =
        http_request(&addr, "POST", "/score_links", r#"{"pairs":[[0,1],[2,3]],"scorer":"dot"}"#)
            .expect("links");
    assert_eq!(status, 200, "body: {body}");
    let links: LinkResponse = from_str(&body).expect("links json");
    assert_eq!(links.scorer, "dot");
    assert_eq!(links.scores.len(), 2);
    assert!(links.scores.iter().all(|s| s.is_finite()));

    // /encode embeds an unseen node attached to nodes 0 and 1, and k
    // composes a kNN lookup over the fresh embedding.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/encode",
        r#"{"nodes":[{"attr_indices":[0,3],"attr_values":[1.0,0.5],"edges":[0,1]}],"k":4}"#,
    )
    .expect("encode");
    assert_eq!(status, 200, "body: {body}");
    let enc: EncodeResponse = from_str(&body).expect("encode json");
    assert_eq!(enc.dim, 16);
    assert_eq!(enc.embeddings.len(), 1);
    assert_eq!(enc.embeddings[0].len(), 16);
    assert!(enc.embeddings[0].iter().all(|x| x.is_finite()));
    let neighbors = enc.neighbors.expect("k was set");
    assert_eq!(neighbors.len(), 1);
    assert_eq!(neighbors[0].neighbors.len(), 4);

    // /stats exposes the per-class telemetry the requests above generated.
    let (status, body) = http_request(&addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    let stats: Value = from_str(&body).expect("stats json");
    let Value::Object(root) = &stats else { panic!("stats is not an object") };
    let Some(Value::Object(counters)) = root.get("counters") else {
        panic!("stats has no counters")
    };
    let count = |name: &str| match counters.get(name) {
        Some(Value::Number(x)) => *x as u64,
        _ => 0,
    };
    assert_eq!(count("serve/knn/requests"), 4, "2 + 1 exact + 1 via encode k");
    assert_eq!(count("serve/links/requests"), 2);
    assert_eq!(count("serve/encode/requests"), 1);

    shutdown(&addr, handle);
}

#[test]
fn error_paths_map_to_http_statuses() {
    let (addr, handle) = start_server(false);

    // Unknown route.
    let (status, _) = http_request(&addr, "POST", "/nope", "{}").expect("404");
    assert_eq!(status, 404);

    // Wrong method.
    let (status, _) = http_request(&addr, "GET", "/knn", "").expect("405");
    assert_eq!(status, 405);

    // Malformed JSON.
    let (status, body) = http_request(&addr, "POST", "/knn", "{not json").expect("parse");
    assert_eq!(status, 400, "body: {body}");

    // Unknown node id.
    let (status, body) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[999999],"k":3}"#).expect("bad id");
    assert_eq!(status, 400, "body: {body}");

    // Wrong vector dimensionality.
    let (status, body) =
        http_request(&addr, "POST", "/knn", r#"{"vectors":[[1.0,2.0]],"k":3}"#).expect("bad dim");
    assert_eq!(status, 400, "body: {body}");

    // Scorer mismatch without exact=true.
    let (status, body) =
        http_request(&addr, "POST", "/knn", r#"{"ids":[0],"k":3,"scorer":"euclidean"}"#)
            .expect("scorer mismatch");
    assert_eq!(status, 400, "body: {body}");
    // ... but exact=true serves any scorer.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/knn",
        r#"{"ids":[0],"k":3,"scorer":"euclidean","exact":true}"#,
    )
    .expect("exact euclidean");
    assert_eq!(status, 200, "body: {body}");

    // Oversized batch (max_batch = 64 in the fixture).
    let ids: Vec<String> = (0..65).map(|i| i.to_string()).collect();
    let body_json = format!("{{\"ids\":[{}],\"k\":3}}", ids.join(","));
    let (status, body) = http_request(&addr, "POST", "/knn", &body_json).expect("oversize");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("max_batch"), "body: {body}");

    // /encode without a loaded model.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/encode",
        r#"{"nodes":[{"attr_indices":[0],"attr_values":[1.0],"edges":[0]}]}"#,
    )
    .expect("encode unavailable");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("no model"), "body: {body}");

    // Every error body is structured JSON with kind + message.
    let (_, body) = http_request(&addr, "POST", "/knn", r#"{"ids":[999999],"k":3}"#).expect("err");
    let err: Value = from_str(&body).expect("error body is JSON");
    let Value::Object(obj) = &err else { panic!("error body is not an object") };
    assert!(obj.contains_key("error") && obj.contains_key("kind"), "body: {body}");

    shutdown(&addr, handle);
}

#[test]
fn addr_file_rendezvous_and_store_roundtrip_serving() {
    // The CI path: save the store, reopen it from disk, serve with
    // --addr-file-style discovery, and check answers match the in-memory
    // store's exact scorer path.
    let (_graph, store) = trained_fixture();
    let path = std::env::temp_dir().join(format!("coane-http-store-{}", std::process::id()));
    store.save(&path).expect("save");
    let reopened = EmbeddingStore::open(&path).expect("open");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reopened.vectors(), store.vectors());

    let addr_file = std::env::temp_dir().join(format!("coane-http-addr-{}", std::process::id()));
    let index = HnswIndex::build(&reopened, Scorer::Cosine, HnswConfig::default());
    let engine = QueryEngine::new(
        reopened,
        index,
        None,
        EngineLimits::default(),
        coane_obs::Obs::disabled(),
    )
    .expect("engine");
    let server = HttpServer::bind(
        Arc::new(engine),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            addr_file: Some(addr_file.clone()),
            ..Default::default()
        },
    )
    .expect("bind");
    let bound = server.local_addr().to_string();
    let from_file = std::fs::read_to_string(&addr_file).expect("addr file written");
    let _ = std::fs::remove_file(&addr_file);
    assert_eq!(from_file.trim(), bound, "addr file must hold the bound address");

    let handle = std::thread::spawn(move || server.run().expect("run"));
    let (status, body) = http_request(&bound, "POST", "/knn", r#"{"ids":[3],"k":2}"#).expect("knn");
    assert_eq!(status, 200, "body: {body}");
    shutdown(&bound, handle);
}
