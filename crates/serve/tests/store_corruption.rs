//! On-disk robustness of the embedding-store format: every way the file can
//! be damaged (flipped bits, truncation, foreign magic, future version,
//! length lies, bad precision bytes, corrupted quantization parameters)
//! must surface as a typed `CoaneError::Store` / `Io` — never a panic,
//! never a silently-wrong store. Covers both the version-1 f32 format and
//! the version-2 quantized (f16 / int8) format.

use coane_core::checkpoint::crc32;
use coane_error::CoaneError;
use coane_serve::{EmbeddingStore, Precision, STORE_FORMAT_VERSION_QUANT};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("coane-store-corruption-{name}-{}", std::process::id()));
    p
}

fn sample_store() -> EmbeddingStore {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data: Vec<f32> =
        (0..40 * 8).map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 - 0.5).collect();
    let ids: Vec<u64> = (0..40).map(|i| 1000 + i * 3).collect();
    EmbeddingStore::new(data, 8, Some(ids), "corruption fixture").expect("valid store")
}

fn saved_bytes(store: &EmbeddingStore, name: &str) -> Vec<u8> {
    let path = tmp_path(name);
    store.save(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Writes raw bytes and expects `open` to fail with a Store error whose
/// message contains `expect_msg`.
fn assert_rejected(name: &str, bytes: &[u8], expect_msg: &str) {
    let path = tmp_path(name);
    std::fs::write(&path, bytes).expect("write corrupt file");
    let err = EmbeddingStore::open(&path).expect_err("corrupt store must not load");
    let _ = std::fs::remove_file(&path);
    match &err {
        CoaneError::Store { message, .. } => assert!(
            message.contains(expect_msg),
            "{name}: expected message containing {expect_msg:?}, got {message:?}"
        ),
        other => panic!("{name}: expected Store error, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 8, "{name}: store errors map to exit code 8");
}

#[test]
fn roundtrip_preserves_everything() {
    let store = sample_store();
    let path = tmp_path("roundtrip");
    store.save(&path).expect("save");
    let loaded = EmbeddingStore::open(&path).expect("open");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.dim(), store.dim());
    assert_eq!(loaded.meta(), store.meta());
    assert_eq!(loaded.ids(), store.ids());
    assert_eq!(loaded.vectors(), store.vectors());
    assert_eq!(loaded.index_of(1003), Some(1));
}

#[test]
fn every_single_bit_flip_in_payload_is_detected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "bitflip");
    // Flip one bit in a spread of payload positions (every 97th byte keeps
    // the test fast while covering meta, ids and vectors).
    for pos in (24..bytes.len()).step_by(97) {
        let mut dam = bytes.clone();
        dam[pos] ^= 0x10;
        assert_rejected(&format!("bitflip-{pos}"), &dam, "CRC32 mismatch");
    }
}

#[test]
fn truncation_is_detected_at_any_cut() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "trunc");
    // Shorter than the header: structural error.
    assert_rejected("trunc-header", &bytes[..10], "too short");
    // Cut inside the payload: the header's length no longer matches.
    assert_rejected("trunc-payload", &bytes[..bytes.len() - 5], "length mismatch");
    // Padded file: also a length mismatch.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 3]);
    assert_rejected("padded", &padded, "length mismatch");
}

#[test]
fn foreign_magic_and_future_version_are_rejected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "magic");
    let mut wrong_magic = bytes.clone();
    wrong_magic[0..8].copy_from_slice(b"NOTASTOR");
    assert_rejected("magic", &wrong_magic, "bad magic");

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(STORE_FORMAT_VERSION_QUANT + 1).to_le_bytes());
    assert_rejected("version", &future, "unsupported store format version");
}

#[test]
fn header_length_lie_is_detected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "lenlie");
    let mut lied = bytes.clone();
    let fake_len = (bytes.len() as u64 - 24) + 100;
    lied[12..20].copy_from_slice(&fake_len.to_le_bytes());
    assert_rejected("lenlie", &lied, "length mismatch");
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let err = EmbeddingStore::open(Path::new("/nonexistent/coane.store"))
        .expect_err("missing file must not load");
    assert_eq!(err.kind(), "io");
}

// ------------------------------------------------------------------------
// version-2 quantized payloads
// ------------------------------------------------------------------------

fn quantized_store(precision: Precision) -> EmbeddingStore {
    sample_store().with_precision(precision).expect("quantize fixture")
}

/// Patches payload bytes at `edit` offsets and recomputes the header's CRC
/// and length, producing a file that passes the checksum gate — for
/// reaching the structural validations *behind* the CRC.
fn patch_payload(bytes: &[u8], edit: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = bytes[24..].to_vec();
    edit(&mut payload);
    let mut out = bytes[..12].to_vec();
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

#[test]
fn quantized_roundtrip_preserves_everything() {
    for precision in [Precision::F16, Precision::Int8] {
        let store = quantized_store(precision);
        let path = tmp_path(&format!("quant-roundtrip-{}", precision.name()));
        store.save(&path).expect("save");
        let loaded = EmbeddingStore::open(&path).expect("open");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.precision(), precision);
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.dim(), store.dim());
        assert_eq!(loaded.meta(), store.meta());
        assert_eq!(loaded.ids(), store.ids());
        // The exact f32 sidecar survives quantization bit-for-bit.
        assert_eq!(loaded.vectors(), store.vectors());
        assert_eq!(loaded.store_bytes(), store.store_bytes());
        assert!(loaded.store_bytes() < store.len() * store.dim() * 4);
    }
}

#[test]
fn old_version_f32_stores_still_load() {
    // An f32 store writes format version 1 — the exact pre-quantization
    // bytes — and loads with precision f32.
    let store = sample_store();
    let bytes = saved_bytes(&store, "v1-compat");
    assert_eq!(&bytes[8..12], &1u32.to_le_bytes(), "f32 stores must stay on version 1");
    let path = tmp_path("v1-compat-load");
    std::fs::write(&path, &bytes).expect("write");
    let loaded = EmbeddingStore::open(&path).expect("v1 store must load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.precision(), Precision::F32);
    assert_eq!(loaded.vectors(), store.vectors());
}

#[test]
fn quantized_bit_flips_are_detected_everywhere() {
    // One flipped bit anywhere in a quantized payload — precision byte,
    // qparams, codes or sidecar — fails the CRC gate.
    for precision in [Precision::F16, Precision::Int8] {
        let store = quantized_store(precision);
        let bytes = saved_bytes(&store, &format!("quant-bitflip-{}", precision.name()));
        for pos in (24..bytes.len()).step_by(97) {
            let mut dam = bytes.clone();
            dam[pos] ^= 0x10;
            assert_rejected(
                &format!("quant-bitflip-{}-{pos}", precision.name()),
                &dam,
                "CRC32 mismatch",
            );
        }
    }
}

#[test]
fn quantized_truncation_is_detected_at_any_cut() {
    for precision in [Precision::F16, Precision::Int8] {
        let store = quantized_store(precision);
        let bytes = saved_bytes(&store, &format!("quant-trunc-{}", precision.name()));
        let name = precision.name();
        assert_rejected(&format!("quant-trunc-header-{name}"), &bytes[..10], "too short");
        // Cuts landing mid-row in the code block and mid-sidecar.
        for cut in [bytes.len() - 3, bytes.len() - 8 * 4 - 1, 24 + 8 + 8 + 1 + 8 + 5] {
            assert_rejected(&format!("quant-trunc-{name}-{cut}"), &bytes[..cut], "length mismatch");
        }
    }
}

#[test]
fn unknown_precision_byte_is_rejected() {
    // The precision byte sits right after the two u64 shape fields.
    let store = quantized_store(Precision::Int8);
    let bytes = saved_bytes(&store, "precision-byte");
    let patched = patch_payload(&bytes, |p| p[16] = 9);
    assert_rejected("precision-byte", &patched, "unknown precision byte 9");
}

#[test]
fn nonzero_int8_zero_point_is_rejected() {
    // qparams start after shape (16) + precision (1) + meta_len (8) + meta;
    // each row is (scale f32, zero_point f32) and the zero point is
    // reserved: any non-zero value is a format violation, CRC-valid or not.
    let store = quantized_store(Precision::Int8);
    let bytes = saved_bytes(&store, "zero-point");
    let meta_len = store.meta().len();
    let qparams_off = 16 + 1 + 8 + meta_len + store.len() * 8;
    let patched = patch_payload(&bytes, |p| {
        p[qparams_off + 4..qparams_off + 8].copy_from_slice(&0.25f32.to_le_bytes());
    });
    assert_rejected("zero-point", &patched, "non-zero int8 zero point");
}

#[test]
fn invalid_int8_scale_is_rejected() {
    let store = quantized_store(Precision::Int8);
    let bytes = saved_bytes(&store, "bad-scale");
    let meta_len = store.meta().len();
    let qparams_off = 16 + 1 + 8 + meta_len + store.len() * 8;
    for (tag, bad) in [("zero", 0.0f32), ("negative", -1.0), ("nan", f32::NAN)] {
        let patched = patch_payload(&bytes, |p| {
            p[qparams_off..qparams_off + 4].copy_from_slice(&bad.to_le_bytes());
        });
        assert_rejected(&format!("bad-scale-{tag}"), &patched, "invalid int8 scale");
    }
}

#[test]
fn f32_payload_under_quant_version_is_rejected() {
    // A v1 (f32) payload relabeled as version 2: the byte where the
    // precision tag should sit is the low byte of meta_len — decoding must
    // fail structurally, never reinterpret silently.
    let store = sample_store();
    let bytes = saved_bytes(&store, "relabel");
    let mut relabeled = bytes.clone();
    relabeled[8..12].copy_from_slice(&STORE_FORMAT_VERSION_QUANT.to_le_bytes());
    let relabeled = patch_payload(&relabeled, |_| {});
    let path = tmp_path("relabel");
    std::fs::write(&path, &relabeled).expect("write");
    let err = EmbeddingStore::open(&path).expect_err("relabeled store must not load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(err.kind(), "store");
    assert_eq!(err.exit_code(), 8);
}
