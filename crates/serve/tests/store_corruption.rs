//! On-disk robustness of the embedding-store format: every way the file can
//! be damaged (flipped bits, truncation, foreign magic, future version,
//! length lies) must surface as a typed `CoaneError::Store` / `Io` — never a
//! panic, never a silently-wrong store.

use coane_error::CoaneError;
use coane_serve::{EmbeddingStore, STORE_FORMAT_VERSION};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("coane-store-corruption-{name}-{}", std::process::id()));
    p
}

fn sample_store() -> EmbeddingStore {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data: Vec<f32> =
        (0..40 * 8).map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 - 0.5).collect();
    let ids: Vec<u64> = (0..40).map(|i| 1000 + i * 3).collect();
    EmbeddingStore::new(data, 8, Some(ids), "corruption fixture").expect("valid store")
}

fn saved_bytes(store: &EmbeddingStore, name: &str) -> Vec<u8> {
    let path = tmp_path(name);
    store.save(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Writes raw bytes and expects `open` to fail with a Store error whose
/// message contains `expect_msg`.
fn assert_rejected(name: &str, bytes: &[u8], expect_msg: &str) {
    let path = tmp_path(name);
    std::fs::write(&path, bytes).expect("write corrupt file");
    let err = EmbeddingStore::open(&path).expect_err("corrupt store must not load");
    let _ = std::fs::remove_file(&path);
    match &err {
        CoaneError::Store { message, .. } => assert!(
            message.contains(expect_msg),
            "{name}: expected message containing {expect_msg:?}, got {message:?}"
        ),
        other => panic!("{name}: expected Store error, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 8, "{name}: store errors map to exit code 8");
}

#[test]
fn roundtrip_preserves_everything() {
    let store = sample_store();
    let path = tmp_path("roundtrip");
    store.save(&path).expect("save");
    let loaded = EmbeddingStore::open(&path).expect("open");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.dim(), store.dim());
    assert_eq!(loaded.meta(), store.meta());
    assert_eq!(loaded.ids(), store.ids());
    assert_eq!(loaded.vectors(), store.vectors());
    assert_eq!(loaded.index_of(1003), Some(1));
}

#[test]
fn every_single_bit_flip_in_payload_is_detected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "bitflip");
    // Flip one bit in a spread of payload positions (every 97th byte keeps
    // the test fast while covering meta, ids and vectors).
    for pos in (24..bytes.len()).step_by(97) {
        let mut dam = bytes.clone();
        dam[pos] ^= 0x10;
        assert_rejected(&format!("bitflip-{pos}"), &dam, "CRC32 mismatch");
    }
}

#[test]
fn truncation_is_detected_at_any_cut() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "trunc");
    // Shorter than the header: structural error.
    assert_rejected("trunc-header", &bytes[..10], "too short");
    // Cut inside the payload: the header's length no longer matches.
    assert_rejected("trunc-payload", &bytes[..bytes.len() - 5], "length mismatch");
    // Padded file: also a length mismatch.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 3]);
    assert_rejected("padded", &padded, "length mismatch");
}

#[test]
fn foreign_magic_and_future_version_are_rejected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "magic");
    let mut wrong_magic = bytes.clone();
    wrong_magic[0..8].copy_from_slice(b"NOTASTOR");
    assert_rejected("magic", &wrong_magic, "bad magic");

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
    assert_rejected("version", &future, "unsupported store format version");
}

#[test]
fn header_length_lie_is_detected() {
    let store = sample_store();
    let bytes = saved_bytes(&store, "lenlie");
    let mut lied = bytes.clone();
    let fake_len = (bytes.len() as u64 - 24) + 100;
    lied[12..20].copy_from_slice(&fake_len.to_le_bytes());
    assert_rejected("lenlie", &lied, "length mismatch");
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let err = EmbeddingStore::open(Path::new("/nonexistent/coane.store"))
        .expect_err("missing file must not load");
    assert_eq!(err.kind(), "io");
}
