//! Quality and determinism lockdown for the ANN index, per the workspace
//! contract: recall@10 against the exact scorer path on a seeded 2k-node
//! fixture, and bit-identical construction + queries at 1 vs 4 threads.

use coane_nn::{pool, Scorer};
use coane_serve::{
    knn_exact, EmbeddingStore, EngineLimits, ExactIndex, HnswConfig, HnswIndex, KnnParams,
    KnnTarget, QueryEngine,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const NODES: usize = 2000;
const DIM: usize = 24;
const K: usize = 10;
const N_QUERIES: usize = 100;

fn fixture_store(seed: u64) -> EmbeddingStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    let data: Vec<f32> = (0..NODES * DIM).map(|_| uniform()).collect();
    EmbeddingStore::new(data, DIM, None, "hnsw fixture").expect("valid store")
}

fn fixture_queries(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    (0..N_QUERIES).map(|_| (0..DIM).map(|_| uniform()).collect()).collect()
}

#[test]
fn recall_at_10_beats_095_on_2k_fixture() {
    let store = fixture_store(42);
    let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
    let queries = fixture_queries(42);
    let mut total = 0.0;
    for q in &queries {
        let exact: Vec<u32> =
            knn_exact(&store, q, K, Scorer::Cosine).iter().map(|h| h.index).collect();
        let approx: Vec<u32> = index.knn(&store, q, K).iter().map(|h| h.index).collect();
        assert_eq!(approx.len(), K, "index returned fewer than k results");
        let hit = exact.iter().filter(|i| approx.contains(i)).count();
        total += hit as f64 / K as f64;
    }
    let recall = total / queries.len() as f64;
    assert!(recall >= 0.95, "recall@{K} = {recall:.4} below the 0.95 floor");
}

#[test]
fn exact_search_is_its_own_ground_truth() {
    // knn_exact must return exactly the k best rows under a total order:
    // verify against a sequential argsort on a small slice of the fixture.
    let store = fixture_store(7);
    let q = fixture_queries(7).remove(0);
    let hits = knn_exact(&store, &q, 5, Scorer::Cosine);
    let mut scored: Vec<(f32, u32)> =
        (0..store.len()).map(|r| (Scorer::Cosine.score(store.row(r), &q), r as u32)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let expect: Vec<u32> = scored.iter().take(5).map(|&(_, r)| r).collect();
    let got: Vec<u32> = hits.iter().map(|h| h.index).collect();
    assert_eq!(got, expect);
}

/// The pre-transposed matmul path must rank exactly like the sequential
/// ground truth (scores are reassociated, so bytes may differ — rankings
/// may not), and its bytes must be invariant to batch composition and
/// thread count.
#[test]
fn exact_index_matches_ground_truth_and_is_batch_invariant() {
    let store = fixture_store(21);
    let queries = fixture_queries(21);
    let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
    let exact = ExactIndex::build(&store);
    for scorer in Scorer::ALL {
        let batched = exact.knn(&store, &refs, K, scorer);
        assert_eq!(batched.len(), refs.len());
        // Ranking agreement with knn_exact, query by query.
        for (q, hits) in queries.iter().zip(&batched) {
            let truth: Vec<u32> = knn_exact(&store, q, K, scorer).iter().map(|h| h.index).collect();
            let got: Vec<u32> = hits.iter().map(|h| h.index).collect();
            assert_eq!(got, truth, "{} ranking diverged from knn_exact", scorer.name());
        }
        // Bitwise batch invariance: each query alone, and an offset pair,
        // reproduce the full batch's bytes.
        for (i, q) in refs.iter().enumerate().take(8) {
            let solo = exact.knn(&store, &[q], K, scorer);
            assert_eq!(solo[0], batched[i], "{} solo run diverged", scorer.name());
        }
        let pair = exact.knn(&store, &refs[3..5], K, scorer);
        assert_eq!(pair, batched[3..5], "{} pair run diverged", scorer.name());
    }
}

/// The whole serving path — level assignment, generational build, search,
/// and the engine's batched answers — must be bit-identical at any thread
/// count. One test owns the global pool knob so parallel test execution
/// can't interleave conflicting settings.
#[test]
fn build_and_queries_bit_identical_at_1_vs_4_threads() {
    let store = fixture_store(99);
    let queries = fixture_queries(99);

    let run = |threads: usize| {
        pool::set_threads(threads);
        let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
        let graph: Vec<Vec<Vec<u32>>> = (0..store.len())
            .map(|r| index.neighbors(r as u32).into_iter().map(<[u32]>::to_vec).collect())
            .collect();
        let answers: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .map(|q| index.knn(&store, q, K).into_iter().map(|h| (h.index, h.score)).collect())
            .collect();
        let engine = QueryEngine::new(
            fixture_store(99),
            index,
            None,
            EngineLimits::default(),
            coane_obs::Obs::disabled(),
        )
        .expect("engine");
        (graph, answers, engine)
    };

    let (graph1, answers1, engine1) = run(1);
    let (graph4, answers4, engine4) = run(4);
    assert_eq!(graph1, graph4, "HNSW adjacency differs across thread counts");
    assert_eq!(answers1, answers4, "query answers differ across thread counts");

    // Engine-level batch answers too (parallel_map over the batch).
    let batch: Vec<KnnTarget> = queries.iter().take(16).cloned().map(KnnTarget::Vector).collect();
    let params = KnnParams { k: K, scorer: Scorer::Cosine, exact: false };
    pool::set_threads(1);
    let a1 = engine1.knn(&batch, params).expect("batch at 1 thread");
    pool::set_threads(4);
    let a4 = engine4.knn(&batch, params).expect("batch at 4 threads");
    assert_eq!(a1, a4, "engine batch answers differ across thread counts");
    pool::set_threads(1);
}
