//! Quality and determinism lockdown for the quantized serving path:
//! per-row round-trip error bounds for the int8/f16 encoders, bit-identical
//! answers across thread counts and ISA dispatch levels, and the recall@10
//! ≥ 0.95 gate on the seeded 2k fixture for both quantized precisions with
//! the default rerank factor.

use coane_nn::{pool, qkernels, Precision, Scorer};
use coane_serve::{
    knn_exact, EmbeddingStore, EngineLimits, HnswConfig, HnswIndex, KnnParams, KnnTarget,
    QueryEngine,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const NODES: usize = 2000;
const DIM: usize = 24;
const K: usize = 10;
const N_QUERIES: usize = 100;

fn fixture_rows(seed: u64) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    (0..NODES * DIM).map(|_| uniform()).collect()
}

fn fixture_store(seed: u64, precision: Precision) -> EmbeddingStore {
    EmbeddingStore::new(fixture_rows(seed), DIM, None, "quantization fixture")
        .expect("valid store")
        .with_precision(precision)
        .expect("quantize")
}

fn fixture_queries(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let mut uniform = || ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
    (0..N_QUERIES).map(|_| (0..DIM).map(|_| uniform()).collect()).collect()
}

#[test]
fn per_row_round_trip_error_is_bounded() {
    // The store quantizes through these exact pure functions; each row's
    // reconstruction error is bounded by half an int8 quantization step
    // (scale/2 per element) and by f16's 2⁻¹¹ relative precision.
    let rows = fixture_rows(42);
    for (r, row) in rows.chunks_exact(DIM).enumerate() {
        let (codes, scale) = qkernels::quantize_i8_row(row);
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!((scale - max_abs / 127.0).abs() <= 1e-12, "row {r}: scale off");
        for (c, &x) in codes.iter().zip(row) {
            let err = (*c as f32 * scale - x).abs();
            assert!(err <= scale * 0.5 + 1e-7, "row {r}: int8 error {err} > step/2 {scale}");
        }
        for &x in row {
            let back = qkernels::f16_bits_to_f32(qkernels::f32_to_f16_bits(x));
            assert!(
                (back - x).abs() <= x.abs() / 2048.0 + 1e-24,
                "row {r}: f16 error for {x} → {back}"
            );
        }
    }
}

#[test]
fn fused_scans_match_scalar_reference_across_dispatch() {
    // The scan entry points dispatch to the widest ISA the CPU offers
    // (AVX-512 → AVX2 → scalar); the `*_reference` twins are the same
    // algorithms compiled at the baseline ISA only. Bitwise agreement here
    // is the cross-ISA determinism gate: int8 accumulates exactly in i32,
    // f16 through fixed lanes, so whatever level actually ran must
    // reproduce the scalar bytes.
    let rows = fixture_rows(7);
    let q = &fixture_queries(7)[0];
    let n = NODES;

    let mut i8_codes = Vec::with_capacity(n * DIM);
    for row in rows.chunks_exact(DIM) {
        i8_codes.extend(qkernels::quantize_i8_row(row).0);
    }
    let (qc, _) = qkernels::quantize_i8_row(q);
    let mut idots = vec![0i32; n];
    qkernels::i8_dot_scan(&i8_codes, &qc, DIM, &mut idots);
    for r in 0..n {
        let expect = qkernels::i8_dot_reference(&qc, &i8_codes[r * DIM..(r + 1) * DIM]);
        assert_eq!(idots[r], expect, "int8 dot diverged from scalar reference at row {r}");
    }

    let f16_codes: Vec<u16> = rows.iter().map(|&x| qkernels::f32_to_f16_bits(x)).collect();
    let qvals: Vec<f32> =
        q.iter().map(|&x| qkernels::f16_bits_to_f32(qkernels::f32_to_f16_bits(x))).collect();
    let mut dots = vec![0.0f32; n];
    let mut l2s = vec![0.0f32; n];
    qkernels::f16_scan(&f16_codes, &qvals, DIM, false, &mut dots);
    qkernels::f16_scan(&f16_codes, &qvals, DIM, true, &mut l2s);
    for r in 0..n {
        let row = &f16_codes[r * DIM..(r + 1) * DIM];
        assert_eq!(
            dots[r].to_bits(),
            qkernels::f16_dot_reference(&qvals, row).to_bits(),
            "f16 dot diverged from scalar reference at row {r}"
        );
        assert_eq!(
            l2s[r].to_bits(),
            qkernels::f16_l2_reference(&qvals, row).to_bits(),
            "f16 l2 diverged from scalar reference at row {r}"
        );
    }
}

/// The whole quantized serving path — index build over quantized scores,
/// graph traversal, brute-force scans, and the engine's reranked
/// answers — must be bit-identical at 1 vs 4 threads for both precisions.
#[test]
fn quantized_build_and_answers_bit_identical_across_thread_counts() {
    for precision in [Precision::F16, Precision::Int8] {
        let queries = fixture_queries(99);
        let run = |threads: usize| {
            pool::set_threads(threads);
            let store = fixture_store(99, precision);
            let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
            let graph: Vec<Vec<Vec<u32>>> = (0..store.len())
                .map(|r| index.neighbors(r as u32).into_iter().map(<[u32]>::to_vec).collect())
                .collect();
            let engine = QueryEngine::new(
                store,
                index,
                None,
                EngineLimits::default(),
                coane_obs::Obs::disabled(),
            )
            .expect("engine");
            let batch: Vec<KnnTarget> =
                queries.iter().take(16).cloned().map(KnnTarget::Vector).collect();
            let approx = engine
                .knn(&batch, KnnParams { k: K, scorer: Scorer::Cosine, exact: false })
                .expect("approx batch");
            let exact = engine
                .knn(&batch, KnnParams { k: K, scorer: Scorer::Cosine, exact: true })
                .expect("exact batch");
            (graph, approx, exact)
        };
        let r1 = run(1);
        let r4 = run(4);
        pool::set_threads(1);
        assert_eq!(r1.0, r4.0, "{}: adjacency differs across thread counts", precision.name());
        assert_eq!(r1.1, r4.1, "{}: approx answers differ across threads", precision.name());
        assert_eq!(r1.2, r4.2, "{}: exact answers differ across threads", precision.name());
    }
}

/// Recall@10 against the exact-f32 ground truth stays above 0.95 on the
/// seeded 2k fixture for both quantized precisions with the default
/// rerank factor, on both the HNSW path and the quantized brute-force
/// path — and every returned score is the *exact* f32 score (the rerank
/// stage's contract: quantization may cost candidate membership, never
/// score precision).
#[test]
fn quantized_recall_at_10_beats_095_with_default_rerank() {
    let f32_store = EmbeddingStore::new(fixture_rows(42), DIM, None, "truth").expect("valid store");
    let queries = fixture_queries(42);
    for precision in [Precision::F16, Precision::Int8] {
        let store = fixture_store(42, precision);
        let index = HnswIndex::build(&store, Scorer::Cosine, HnswConfig::default());
        let engine = QueryEngine::new(
            store,
            index,
            None,
            EngineLimits::default(),
            coane_obs::Obs::disabled(),
        )
        .expect("engine");
        for exact in [false, true] {
            let mut total = 0.0;
            for q in &queries {
                let truth: Vec<u64> = knn_exact(&f32_store, q, K, Scorer::Cosine)
                    .iter()
                    .map(|h| h.index as u64)
                    .collect();
                let answers = engine
                    .knn(
                        &[KnnTarget::Vector(q.clone())],
                        KnnParams { k: K, scorer: Scorer::Cosine, exact },
                    )
                    .expect("query");
                let got = &answers[0].neighbors;
                assert_eq!(got.len(), K, "{}: fewer than k results", precision.name());
                for &(id, score) in got {
                    let expect = Scorer::Cosine.score(q, f32_store.row(id as usize));
                    assert_eq!(
                        score.to_bits(),
                        expect.to_bits(),
                        "{}: returned score is not the exact f32 score",
                        precision.name()
                    );
                }
                let hit = truth.iter().filter(|id| got.iter().any(|(g, _)| g == *id)).count();
                total += hit as f64 / K as f64;
            }
            let recall = total / queries.len() as f64;
            assert!(
                recall >= 0.95,
                "{} (exact={exact}): recall@{K} = {recall:.4} below the 0.95 floor",
                precision.name()
            );
        }
    }
}
