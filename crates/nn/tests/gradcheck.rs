//! Property-based gradient checks: for random shapes and random values,
//! analytic gradients of composed graphs must match central finite
//! differences. These run the ops in combinations the unit tests don't.

use std::rc::Rc;
use std::sync::Arc;

use coane_nn::{Matrix, SparseMatrix, Tape, Var};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded values (finite differences need
/// moderate magnitudes).
fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Central-difference check of d(out)/d(inputs[k]) for every k.
fn grad_check(inputs: &[Matrix], f: impl Fn(&mut Tape, &[Var]) -> Var) -> Result<(), String> {
    let eps = 1e-2f32;
    let tol = 5e-2f32;
    let mut t = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| t.leaf(m.clone(), true)).collect();
    let out = f(&mut t, &vars);
    t.backward(out);
    let eval = |ms: &[Matrix]| {
        let mut t = Tape::new();
        let vs: Vec<Var> = ms.iter().map(|m| t.leaf(m.clone(), true)).collect();
        let o = f(&mut t, &vs);
        t.value(o).item()
    };
    for (vi, input) in inputs.iter().enumerate() {
        let analytic =
            t.grad(vars[vi]).cloned().unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols()));
        for k in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[vi].as_mut_slice()[k] += eps;
            let mut minus = inputs.to_vec();
            minus[vi].as_mut_slice()[k] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic.as_slice()[k];
            if (a - numeric).abs() > tol * (1.0 + numeric.abs()) {
                return Err(format!("input {vi} elem {k}: analytic {a} vs numeric {numeric}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chained_matmul_activation(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        grad_check(&[a, b], |t, v| {
            let h = t.matmul(v[0], v[1]);
            let h = t.tanh(h);
            let s = t.sqr(h);
            t.mean(s)
        }).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn gather_segment_pipeline(x in arb_matrix(5, 3)) {
        grad_check(&[x], |t, v| {
            let idx = Rc::new(vec![0u32, 2, 2, 4, 1, 3]);
            let g = t.gather_rows(v[0], idx);
            let offs = Arc::new(vec![0usize, 2, 2, 6]);
            let m = t.segment_mean(g, offs);
            let m = t.sigmoid(m);
            t.sum(m)
        }).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn rows_dot_logsigmoid(a in arb_matrix(4, 3), b in arb_matrix(4, 3)) {
        grad_check(&[a, b], |t, v| {
            let d = t.rows_dot(v[0], v[1]);
            let l = t.log_sigmoid(d);
            let s = t.sum(l);
            t.scale(s, -1.0)
        }).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn concat_slice_roundtrip_grad(a in arb_matrix(3, 2), b in arb_matrix(3, 3)) {
        grad_check(&[a, b], |t, v| {
            let c = t.concat_cols(v[0], v[1]);
            let left = t.slice_cols(c, 0..2);
            let right = t.slice_cols(c, 2..5);
            let l2 = t.sqr(left);
            let r2 = t.sqr(right);
            let ls = t.sum(l2);
            let rs = t.sum(r2);
            t.add(ls, rs)
        }).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn spmm_deep_chain(x in arb_matrix(4, 3)) {
        let sp = SparseMatrix::from_triplets(
            4, 4,
            vec![(0, 1, 0.7), (1, 0, -0.4), (2, 2, 1.1), (3, 1, 0.3), (3, 3, -0.9)],
        );
        let sp = Arc::new(sp);
        grad_check(&[x], move |t, v| {
            let h = t.spmm(Arc::clone(&sp), v[0]);
            let h = t.relu(h);
            let h2 = t.spmm(Arc::clone(&sp), h);
            let s = t.sqr(h2);
            t.mean(s)
        }).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn value_identities_hold(a in arb_matrix(3, 3)) {
        // sum(A + A) == 2 sum(A); mean == sum / len
        let mut t = Tape::new();
        let x = t.leaf(a.clone(), false);
        let two = t.add(x, x);
        let s2 = t.sum(two);
        let s1 = t.sum(x);
        prop_assert!((t.value(s2).item() - 2.0 * t.value(s1).item()).abs() < 1e-4);
        let m = t.mean(x);
        prop_assert!(
            (t.value(m).item() - t.value(s1).item() / a.len() as f32).abs() < 1e-5
        );
    }

    #[test]
    fn sigmoid_bounds_and_symmetry(a in arb_matrix(2, 5)) {
        let mut t = Tape::new();
        let x = t.leaf(a.clone(), false);
        let s = t.sigmoid(x);
        for &v in t.value(s).as_slice() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // σ(x) + σ(−x) == 1
        let nx = t.scale(x, -1.0);
        let sn = t.sigmoid(nx);
        for (p, q) in t.value(s).as_slice().iter().zip(t.value(sn).as_slice()) {
            prop_assert!((p + q - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bce_nonnegative(logits in arb_matrix(2, 4)) {
        let mut t = Tape::new();
        let x = t.leaf(logits, false);
        let targets = Rc::new(Matrix::from_vec(2, 4, vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0]));
        let l = t.bce_with_logits(x, targets);
        for &v in t.value(l).as_slice() {
            prop_assert!(v >= 0.0, "bce value {v} negative");
        }
    }
}
