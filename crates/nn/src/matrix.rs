//! Dense row-major `f32` matrices with the handful of BLAS-like kernels the
//! autograd engine needs.
//!
//! The `matmul` family is cache-blocked, ISA-multiversioned (AVX-512/AVX2
//! picked at runtime) and parallelized over output-row chunks via
//! [`crate::pool`]. Chunk boundaries and per-element accumulation order are
//! independent of the thread count *and* of the selected instruction set, so
//! results are bit-identical for any `pool::set_threads` setting on any
//! x86-64 machine. `matmul` and `matmul_tn` additionally preserve the exact
//! k-ascending summation order of the reference kernels (`*_naive`), so they
//! compare `==` element-for-element with those (the only possible deviation
//! is the sign of an exactly-zero entry, because the references skip
//! `a == 0.0` terms); `matmul_nt` uses a fixed multi-lane dot product
//! (deterministic, but reassociated relative to `matmul_nt_naive`).

use crate::pool;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of the register tile in the blocked `matmul` kernel (output
/// columns held in accumulators across the whole k loop). 32 f32 = two
/// 512-bit (or four 256-bit) vectors per row, so each broadcast lhs load is
/// amortized over two FMAs; 6×2 accumulator vectors still leave registers
/// free for the rhs loads and lhs broadcasts on the AVX-512 path.
const TILE_COLS: usize = 32;

/// Height of the register tile (output rows sharing one rhs-row load).
const TILE_ROWS: usize = 6;

/// Independent accumulator lanes in the blocked dot product; keeps several
/// FMA chains in flight, which the strictly-ordered single chain of the
/// naive kernel cannot.
const DOT_LANES: usize = 16;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Builds from nested rows (test convenience).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a 1×1 matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "item() on non-scalar");
        self.data[0]
    }

    /// Matrix product `self · rhs`: register-tiled, cache-blocked, and
    /// parallel over output-row chunks. Equal (`==`) to [`Self::matmul_naive`]
    /// for any thread count (k-ascending accumulation order is preserved).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * m * k * n);
        let (a, b) = (&self.data, &rhs.data);
        pool::parallel_chunks_with(&mut out.data, pool::ROW_CHUNK * n, threads, |start, chunk| {
            mm_block(a, b, k, n, start / n, chunk);
        });
        out
    }

    /// Reference `self · rhs` (the seed implementation): single-thread ikj
    /// triple loop with a zero-skip. Kept for kernel unit tests and the
    /// `kernels` bench.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose: register-tiled and
    /// parallel over output-row chunks. Equal (`==`) to
    /// [`Self::matmul_tn_naive`] for any thread count.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * m * k * n);
        let (a, b) = (&self.data, &rhs.data);
        pool::parallel_chunks_with(&mut out.data, pool::ROW_CHUNK * n, threads, |start, chunk| {
            tn_block(a, b, k, m, n, start / n, chunk);
        });
        out
    }

    /// Reference `selfᵀ · rhs` (the seed implementation): scatters every
    /// shared-dimension row into the whole output, re-streaming the output
    /// matrix `k` times.
    pub fn matmul_tn_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let arow = self.row(p);
            let brow = rhs.row(p);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose: each output element
    /// is a multi-lane dot product (independent FMA chains the compiler can
    /// vectorize, unlike the naive kernel's strictly-ordered single chain),
    /// parallel over output-row chunks. Deterministic for any thread count;
    /// reassociated relative to [`Self::matmul_nt_naive`], so compare with a
    /// tolerance, not bitwise.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * m * k * n);
        let (a, b) = (&self.data, &rhs.data);
        pool::parallel_chunks_with(&mut out.data, pool::ROW_CHUNK * n, threads, |start, chunk| {
            nt_block(a, b, k, n, start / n, chunk);
        });
        out
    }

    /// Reference `self · rhsᵀ` (the seed implementation): one sequential
    /// dot-product chain per output element.
    pub fn matmul_nt_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let (m, n) = (self.rows, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            for j in 0..n {
                let brow = rhs.row(j);
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out.data[i * n + j] = s;
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// In-place `self += scale * rhs`.
    pub fn axpy(&mut self, scale: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Asserts every element is finite (useful guard in training loops).
    pub fn assert_finite(&self, what: &str) {
        for (i, &x) in self.data.iter().enumerate() {
            assert!(x.is_finite(), "{what}: non-finite value {x} at index {i}");
        }
    }
}

/// ISA multiversioning: compiles the same safe kernel body a second and third
/// time with AVX2 / AVX-512F code generation enabled, picking the widest
/// variant the CPU supports at runtime (the baseline build only assumes
/// SSE2). Wider registers change throughput only — every lane still performs
/// the same IEEE-754 mul-then-add in the same order, and Rust never contracts
/// `a * b + c` into a fused multiply-add — so all variants are bit-identical.
macro_rules! multiversioned {
    ($(#[$doc:meta])* fn $name:ident / $inner:ident ($($arg:ident: $ty:ty),* $(,)?) $body:block) => {
        $(#[$doc])*
        // Kernel signatures spell out every slice and scalar operand; a
        // params struct would only obscure the hot call sites.
        #[allow(clippy::too_many_arguments)]
        fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[allow(clippy::too_many_arguments)]
                #[target_feature(enable = "avx512f")]
                unsafe fn avx512($($arg: $ty),*) {
                    $inner($($arg),*)
                }
                #[allow(clippy::too_many_arguments)]
                #[target_feature(enable = "avx2")]
                unsafe fn avx2($($arg: $ty),*) {
                    $inner($($arg),*)
                }
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: feature checked at runtime on this line.
                    return unsafe { avx512($($arg),*) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: feature checked at runtime on this line.
                    return unsafe { avx2($($arg),*) };
                }
            }
            $inner($($arg),*)
        }

        #[allow(clippy::too_many_arguments)]
        #[inline(always)]
        fn $inner($($arg: $ty),*) $body
    };
}

pub(crate) use multiversioned;

multiversioned! {
/// Blocked `matmul` over one chunk of output rows: iterate register tiles of
/// up to [`TILE_ROWS`]×[`TILE_COLS`] output elements, each accumulated across
/// the whole shared dimension in registers and written back once. The
/// k-ascending per-element order matches the naive kernel exactly.
fn mm_block / mm_block_inner(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, out: &mut [f32]) {
    let rows = out.len() / n;
    let mut j0 = 0;
    while j0 < n {
        let jw = TILE_COLS.min(n - j0);
        let mut i0 = 0;
        while i0 < rows {
            let ih = TILE_ROWS.min(rows - i0);
            if jw == TILE_COLS && ih == TILE_ROWS {
                mm_tile_full(a, b, k, n, row0 + i0, j0, out, i0);
            } else {
                mm_tile_edge(a, b, k, n, row0 + i0, j0, jw, out, i0, ih);
            }
            i0 += ih;
        }
        j0 += jw;
    }
}
}

multiversioned! {
/// Blocked `matmul_tn` over one chunk of output rows (`aᵀ·b`, with `a` of
/// shape `k×m`): sweeps the shared dimension once while the output chunk
/// stays cache-hot. (Register tiling is a loss here: the lhs element for
/// output row `i` sits at `a[p*m + i]`, so a tile's k-sweep strides by `m`
/// floats — typically past a page — and thrashes the TLB.) The k-ascending
/// per-element order matches the naive kernel exactly.
fn tn_block / tn_block_inner(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, i0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / n;
    // 4-way k-unroll: each output row is read and written once per four
    // k-steps instead of once per step, quartering the dominant chunk
    // traffic. Within the fused update every element still receives its
    // four terms in ascending-k order, so the sum order is unchanged.
    let mut p = 0;
    while p + 4 <= k {
        let (a0, a1, a2, a3) = (
            &a[p * m + i0..p * m + i0 + rows],
            &a[(p + 1) * m + i0..(p + 1) * m + i0 + rows],
            &a[(p + 2) * m + i0..(p + 2) * m + i0 + rows],
            &a[(p + 3) * m + i0..(p + 3) * m + i0 + rows],
        );
        let (b0, b1, b2, b3) = (
            &b[p * n..(p + 1) * n],
            &b[(p + 1) * n..(p + 2) * n],
            &b[(p + 2) * n..(p + 3) * n],
            &b[(p + 3) * n..(p + 4) * n],
        );
        for ii in 0..rows {
            let (v0, v1, v2, v3) = (a0[ii], a1[ii], a2[ii], a3[ii]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let orow = &mut chunk[ii * n..(ii + 1) * n];
            let bs = b0.iter().zip(b1).zip(b2).zip(b3);
            for (o, (((&w0, &w1), &w2), &w3)) in orow.iter_mut().zip(bs) {
                let mut s = *o;
                s += v0 * w0;
                s += v1 * w1;
                s += v2 * w2;
                s += v3 * w3;
                *o = s;
            }
        }
        p += 4;
    }
    for p in p..k {
        let acols = &a[p * m + i0..p * m + i0 + rows];
        let brow = &b[p * n..(p + 1) * n];
        for (ii, &av) in acols.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut chunk[ii * n..(ii + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}
}

/// Output-row band height for [`nt_block`]: `NT_BAND` lhs rows (a few KB at
/// typical widths) stay cache-resident while each rhs row is streamed past
/// them, cutting the dominant rhs re-read traffic by the band height.
const NT_BAND: usize = 8;

multiversioned! {
/// Blocked `matmul_nt` over one chunk of output rows (`a·bᵀ`, operands of
/// width `k`): every output element is a [`dot_lanes`] product. Output rows
/// are processed in bands of [`NT_BAND`] so each streamed `b` row is reused
/// across the whole band before eviction; per-element results are the exact
/// same `dot_lanes` sum, so the banding is invisible in the bits.
fn nt_block / nt_block_inner(a: &[f32], b: &[f32], k: usize, n: usize, i0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / n;
    let mut band0 = 0;
    while band0 < rows {
        let band = NT_BAND.min(rows - band0);
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            for ii in band0..band0 + band {
                let arow = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                chunk[ii * n + j] = dot_lanes(arow, brow);
            }
        }
        band0 += band;
    }
}
}

/// Slice-based `a · bᵀ` for callers that hold raw row-major buffers (the
/// serving layer's batched scoring path): `a` is `m×k`, `b` is `n×k`, the
/// result is the `m×n` score block in row-major order. Runs the same
/// [`nt_block`] kernel as [`Matrix::matmul_nt`] — every output element is a
/// [`dot_lanes`] product of one `a` row and one `b` row, a pure function of
/// those two rows — so results are bit-identical for any `m` (batch
/// composition changes nothing) and any thread count.
pub fn matmul_nt_slices(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_nt_slices lhs shape mismatch");
    assert_eq!(b.len(), n * k, "matmul_nt_slices rhs shape mismatch");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let threads = pool::threads_for(2 * m * k * n);
    pool::parallel_chunks_with(&mut out, pool::ROW_CHUNK * n, threads, |start, chunk| {
        nt_block(a, b, k, n, start / n, chunk);
    });
    out
}

/// Full-size register tile: fixed bounds so the inner loops unroll and
/// vectorize, accumulators live in registers. No zero-skip branch: the
/// naive kernels skip `av == 0.0` terms, but adding the skipped `±0.0·bv`
/// products can only affect the sign of an exactly-zero result, so the
/// outputs still compare `==` element-for-element (and the branch would
/// otherwise break the unrolled SIMD schedule).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mm_tile_full(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    arow: usize,
    j0: usize,
    out: &mut [f32],
    orow: usize,
) {
    let mut acc = [[0.0f32; TILE_COLS]; TILE_ROWS];
    for p in 0..k {
        let brow: &[f32; TILE_COLS] =
            b[p * n + j0..p * n + j0 + TILE_COLS].try_into().expect("tile width");
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[(arow + r) * k + p];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(orow + r) * n + j0..(orow + r) * n + j0 + TILE_COLS].copy_from_slice(accr);
    }
}

/// Ragged-edge tile (fewer than TILE_ROWS rows and/or TILE_COLS columns
/// remain); same accumulation order, dynamic bounds.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mm_tile_edge(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    arow: usize,
    j0: usize,
    jw: usize,
    out: &mut [f32],
    orow: usize,
    ih: usize,
) {
    let mut acc = [[0.0f32; TILE_COLS]; TILE_ROWS];
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + jw];
        for (r, accr) in acc.iter_mut().enumerate().take(ih) {
            let av = a[(arow + r) * k + p];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(ih) {
        out[(orow + r) * n + j0..(orow + r) * n + j0 + jw].copy_from_slice(&accr[..jw]);
    }
}

/// Dot product with [`DOT_LANES`] independent accumulator chains and a fixed
/// reduction order: deterministic, vectorizable, and exactly equal to the
/// sequential dot for inputs shorter than one lane block.
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    for c in 0..blocks {
        let ac = &a[c * DOT_LANES..(c + 1) * DOT_LANES];
        let bc = &b[c * DOT_LANES..(c + 1) * DOT_LANES];
        for (o, (&x, &y)) in acc.iter_mut().zip(ac.iter().zip(bc)) {
            *o += x * y;
        }
    }
    let mut s = 0.0f32;
    for &lane in &acc {
        s += lane;
    }
    for t in blocks * DOT_LANES..a.len() {
        s += a[t] * b[t];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let c1 = a.matmul_tn(&b);
        let c2 = a.transpose().matmul(&b);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_nt_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.5]]);
        let c1 = a.matmul_nt(&b);
        let c2 = a.matmul(&b.transpose());
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_nt_slices_matches_matmul_nt_bitwise() {
        // Ragged shapes so chunking and banding edges are exercised; the
        // slice entry point must be the *same* kernel, not merely close.
        let (m, k, n) = (37, 19, 41);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 + 11) % 97) as f32 * 0.17 - 8.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| ((i * 53 + 5) % 89) as f32 * 0.13 - 5.0).collect();
        let am =
            Matrix::from_rows(&(0..m).map(|i| a[i * k..(i + 1) * k].to_vec()).collect::<Vec<_>>());
        let bm =
            Matrix::from_rows(&(0..n).map(|j| b[j * k..(j + 1) * k].to_vec()).collect::<Vec<_>>());
        let via_matrix = am.matmul_nt(&bm);
        let via_slices = matmul_nt_slices(&a, &b, m, k, n);
        assert_eq!(via_matrix.as_slice(), via_slices.as_slice());
        // Single-row call reproduces the batch row exactly.
        let row2 = matmul_nt_slices(&a[2 * k..3 * k], &b, 1, k, n);
        assert_eq!(row2.as_slice(), &via_slices[2 * n..3 * n]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_panics_on_matrix() {
        Matrix::zeros(2, 2).item();
    }

    #[test]
    fn map_and_reductions() {
        let a = Matrix::from_rows(&[vec![-3.0, 4.0]]);
        assert_eq!(a.map(f32::abs).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.sum(), 1.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    /// Deterministic pseudo-random fill (no RNG dependency in unit tests).
    fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for x in m.as_mut_slice() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mix in some exact zeros so the zero-skip path is exercised.
            *x = if s.is_multiple_of(5) {
                0.0
            } else {
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            };
        }
        m
    }

    /// Ragged shapes: tile remainders in every dimension, degenerate 1×k /
    /// k×1 strips, and empty matrices. The blocked kernels must reproduce
    /// the naive references exactly (identical accumulation order).
    const RAGGED: &[(usize, usize, usize)] = &[
        (0, 0, 0),
        (0, 3, 2),
        (1, 1, 1),
        (1, 7, 1),
        (1, 40, 33),
        (33, 40, 1),
        (3, 1, 5),
        (4, 16, 16),
        (5, 2, 19),
        (17, 9, 33),
        (31, 15, 47),
        (64, 64, 64),
        (70, 13, 50),
    ];

    #[test]
    fn blocked_matmul_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in RAGGED {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            assert_eq!(a.matmul(&b), a.matmul_naive(&b), "matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_tn_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in RAGGED {
            // a is (k × m) here: matmul_tn computes aᵀ·b.
            let a = filled(k, m, 3);
            let b = filled(k, n, 4);
            assert_eq!(a.matmul_tn(&b), a.matmul_tn_naive(&b), "matmul_tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_nt_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in RAGGED {
            let a = filled(m, k, 5);
            let b = filled(n, k, 6);
            let fast = a.matmul_nt(&b);
            let naive = a.matmul_nt_naive(&b);
            if k < DOT_LANES {
                // Short rows take the sequential tail path: bit-exact.
                assert_eq!(fast, naive, "matmul_nt {m}x{k}x{n}");
            } else {
                // Multi-lane accumulation reassociates the sum; results are
                // deterministic but only approximately equal to naive.
                assert_eq!(fast.shape(), naive.shape());
                for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
                    assert!(
                        (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                        "matmul_nt {m}x{k}x{n}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn large_matmul_crosses_parallel_threshold() {
        // 2·m·k·n ≥ MIN_PARALLEL_WORK so the parallel path runs; must still
        // match naive exactly for whatever thread count is configured.
        let (m, k, n) = (96, 80, 96);
        assert!(2 * m * k * n >= crate::pool::MIN_PARALLEL_WORK);
        let a = filled(m, k, 7);
        let b = filled(k, n, 8);
        assert_eq!(a.matmul(&b), a.matmul_naive(&b));
        let at = filled(k, m, 9);
        assert_eq!(at.matmul_tn(&b), at.matmul_tn_naive(&b));
    }
}
