//! Dense row-major `f32` matrices with the handful of BLAS-like kernels the
//! autograd engine needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Builds from nested rows (test convenience).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a 1×1 matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "item() on non-scalar");
        self.data[0]
    }

    /// Matrix product `self · rhs` with ikj loop ordering (cache friendly for
    /// row-major operands).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let arow = self.row(p);
            let brow = rhs.row(p);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let (m, n) = (self.rows, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            for j in 0..n {
                let brow = rhs.row(j);
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out.data[i * n + j] = s;
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// In-place `self += scale * rhs`.
    pub fn axpy(&mut self, scale: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Asserts every element is finite (useful guard in training loops).
    pub fn assert_finite(&self, what: &str) {
        for (i, &x) in self.data.iter().enumerate() {
            assert!(x.is_finite(), "{what}: non-finite value {x} at index {i}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let c1 = a.matmul_tn(&b);
        let c2 = a.transpose().matmul(&b);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_nt_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.5]]);
        let c1 = a.matmul_nt(&b);
        let c2 = a.matmul(&b.transpose());
        assert_eq!(c1, c2);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_panics_on_matrix() {
        Matrix::zeros(2, 2).item();
    }

    #[test]
    fn map_and_reductions() {
        let a = Matrix::from_rows(&[vec![-3.0, 4.0]]);
        assert_eq!(a.map(f32::abs).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.sum(), 1.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }
}
