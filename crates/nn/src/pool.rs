//! Deterministic scoped-thread parallelism for the compute kernels.
//!
//! The design mirrors the per-walk-seed trick in `coane-walks`: work is split
//! into **fixed-size chunks whose boundaries do not depend on the thread
//! count**, each chunk is computed entirely by one worker in a fixed internal
//! order, and chunks write disjoint output slices. Consequently the result is
//! bit-identical for *any* thread count (including 1), and parallelism is a
//! pure throughput knob — never a numerics knob.
//!
//! Threads are distributed round-robin over chunks (chunk `c` runs on worker
//! `c % threads`) and joined with [`std::thread::scope`], so borrowed inputs
//! can be shared without `Arc`. (The original plan called for crossbeam's
//! scoped threads; `std::thread::scope` has been stable since 1.63 and avoids
//! the dependency entirely.)
//!
//! The worker count is a process-wide knob ([`set_threads`]) so one
//! `CoaneConfig::threads` setting governs walks, preprocessing, and training
//! without threading a parameter through every call site.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread count; 0 means "unset, use the hardware default".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Below this many scalar operations a kernel runs sequentially: spawning
/// scoped threads costs tens of microseconds, which only pays off for
/// matrices with ≥ ~1M multiply-adds.
pub const MIN_PARALLEL_WORK: usize = 1 << 20;

/// Output rows per parallel chunk in the matrix kernels. Fixed (never derived
/// from the thread count) so the chunk decomposition — and therefore the
/// result — is identical however many workers run.
pub const ROW_CHUNK: usize = 32;

/// Sets the process-wide worker-thread count used by the parallel kernels
/// (clamped to ≥ 1). Results are bit-identical for every setting; this only
/// controls throughput.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

thread_local! {
    /// Set while the current thread executes inside a pool worker (including
    /// the calling thread running its own share, and prefetch producers).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is executing inside a pool worker. Kernels
/// called from worker context see [`threads`] `== 1` and run sequentially:
/// nesting scoped spawns would oversubscribe the pool without changing any
/// bits (chunk decompositions are thread-count independent).
pub fn in_worker() -> bool {
    IN_WORKER.with(|c| c.get())
}

/// RAII marker for worker context; restores the previous state on drop so
/// the calling thread's own share doesn't leave the flag stuck.
struct WorkerGuard(bool);

impl WorkerGuard {
    fn enter() -> Self {
        IN_WORKER.with(|c| {
            let prev = c.get();
            c.set(true);
            WorkerGuard(prev)
        })
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_WORKER.with(|c| c.set(prev));
    }
}

/// The current worker-thread count: the last [`set_threads`] value, or the
/// hardware parallelism if never set. Always 1 inside pool workers (see
/// [`in_worker`]).
pub fn threads() -> usize {
    if in_worker() {
        return 1;
    }
    match THREADS.load(Ordering::Relaxed) {
        0 => *default_threads(),
        n => n,
    }
}

fn default_threads() -> &'static usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    DEFAULT.get_or_init(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1))
}

/// Thread count a kernel should use for a job of `work` scalar operations:
/// 1 below [`MIN_PARALLEL_WORK`] (threading overhead dominates), otherwise
/// the configured [`threads`].
pub fn threads_for(work: usize) -> usize {
    if work < MIN_PARALLEL_WORK {
        1
    } else {
        threads()
    }
}

/// Runs `f(start_index, chunk)` over fixed-size chunks of `data` using the
/// configured [`threads`] count.
///
/// Chunk boundaries depend only on `chunk_size`, each chunk is processed by
/// exactly one worker, and chunks are disjoint `&mut` slices — so the output
/// is bit-identical for any thread count.
pub fn parallel_chunks<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    parallel_chunks_with(data, chunk_size, threads(), f);
}

/// [`parallel_chunks`] with an explicit thread count (used where a caller
/// carries its own knob, e.g. `Walker::generate_all`).
pub fn parallel_chunks_with<T, F>(data: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = data.len().div_ceil(chunk_size);
    let threads = threads.clamp(1, n_chunks.max(1));
    if threads == 1 {
        for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(c * chunk_size, chunk);
        }
        return;
    }

    // Static round-robin assignment: chunk c → worker c % threads. The
    // schedule is deterministic, but determinism of the *result* only needs
    // the chunk decomposition to be thread-count independent (it is).
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
        (0..threads).map(|_| Vec::with_capacity(n_chunks.div_ceil(threads))).collect();
    for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
        per_worker[c % threads].push((c * chunk_size, chunk));
    }

    std::thread::scope(|scope| {
        let f = &f;
        let mut assignments = per_worker.into_iter();
        // The first worker's share runs on the current thread; only the rest
        // spawn.
        let own = assignments.next().expect("at least one worker");
        for work in assignments {
            scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                for (start, chunk) in work {
                    f(start, chunk);
                }
            });
        }
        let _guard = WorkerGuard::enter();
        for (start, chunk) in own {
            f(start, chunk);
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` on the pool and returns the results in
/// index order — the job-batch API used by the serving layer (per-query
/// work) and the ANN index build (per-node candidate searches).
///
/// Jobs are grouped into fixed-size chunks of [`JOB_CHUNK`] and distributed
/// exactly like [`parallel_chunks`], so as long as `f` is a pure function of
/// its index the result vector is bit-identical for any thread count.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, threads(), f)
}

/// Jobs per chunk in [`parallel_map`]. Fixed (never derived from the thread
/// count) for the same reason as [`ROW_CHUNK`].
pub const JOB_CHUNK: usize = 8;

/// [`parallel_map`] with an explicit thread count.
pub fn parallel_map_with<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    parallel_chunks_with(&mut out, JOB_CHUNK, threads, |start, slab| {
        for (off, slot) in slab.iter_mut().enumerate() {
            *slot = Some(f(start + off));
        }
    });
    out.into_iter().map(|slot| slot.expect("every job slot filled")).collect()
}

/// Ordered producer/consumer pipeline: items `0..n` are built by `make` on
/// one background thread — in index order, running at most `depth` items
/// ahead of consumption — while `consume(i, item)` runs on the calling
/// thread. With `depth == 0`, `n <= 1`, fewer than two configured threads,
/// or when already inside a pool worker, everything runs inline.
///
/// Either way the consumer observes exactly the sequence
/// `consume(0, make(0)), consume(1, make(1)), …` — so as long as `make` is a
/// pure function of its index, results cannot depend on whether (or how far)
/// the pipeline ran ahead.
pub fn prefetch<T, F, C>(n: usize, depth: usize, make: F, consume: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T),
{
    prefetch_probed(n, depth, make, consume, |_| {});
}

/// [`prefetch`] with a queue-occupancy probe for observability.
///
/// Before each `consume(i, …)` the probe receives the number of items the
/// producer has finished building *beyond* the one about to be consumed
/// (0 ..= depth). On the inline fallback path the probe always sees 0. The
/// probe runs on the consumer thread and must not affect the computation —
/// it exists so telemetry can report how full the pipeline actually is.
pub fn prefetch_probed<T, F, C, P>(n: usize, depth: usize, make: F, mut consume: C, mut probe: P)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T),
    P: FnMut(usize),
{
    if depth == 0 || n <= 1 || threads() < 2 || in_worker() {
        for i in 0..n {
            probe(0);
            consume(i, make(i));
        }
        return;
    }
    let produced = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::sync_channel::<T>(depth);
    std::thread::scope(|scope| {
        let make = &make;
        let produced = &produced;
        scope.spawn(move || {
            let _guard = WorkerGuard::enter();
            for i in 0..n {
                let item = make(i);
                produced.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // The consumer hanging up (panic unwind) is the only way a
                // send fails; stop producing and let scope join.
                if tx.send(item).is_err() {
                    break;
                }
            }
        });
        for i in 0..n {
            let item = rx.recv().expect("prefetch producer exited early");
            probe(produced.load(std::sync::atomic::Ordering::Relaxed).saturating_sub(i + 1));
            consume(i, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for len in [0usize, 1, 7, 64, 65, 1000] {
            for chunk in [1usize, 3, 64, 2048] {
                let mut data = vec![0u32; len];
                parallel_chunks_with(&mut data, chunk, 4, |_, slab| {
                    for x in slab {
                        *x += 1;
                    }
                });
                assert!(data.iter().all(|&x| x == 1), "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn start_indices_match_positions() {
        let mut data: Vec<usize> = vec![0; 300];
        parallel_chunks_with(&mut data, 7, 3, |start, slab| {
            for (off, x) in slab.iter_mut().enumerate() {
                *x = start + off;
            }
        });
        let expect: Vec<usize> = (0..300).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn identical_for_any_thread_count() {
        // A float reduction whose per-chunk order matters: if chunking ever
        // depended on the thread count, the bits would differ.
        let run = |threads: usize| {
            let mut sums = vec![0.0f32; 512];
            parallel_chunks_with(&mut sums, 19, threads, |start, slab| {
                for (off, s) in slab.iter_mut().enumerate() {
                    let i = start + off;
                    let mut acc = 0.0f32;
                    for t in 0..200 {
                        acc += ((i * 31 + t) as f32).sin() * 0.01;
                    }
                    *s = acc;
                }
            });
            sums
        };
        let base = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_ordered_and_thread_count_invariant() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let base = parallel_map_with(n, 1, |i| i * 3 + 1);
            let expect: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
            assert_eq!(base, expect, "n={n}");
            for threads in [2, 4] {
                assert_eq!(parallel_map_with(n, threads, |i| i * 3 + 1), base, "n={n}");
            }
        }
    }

    #[test]
    fn prefetch_is_ordered_and_complete_at_any_depth() {
        // Runs under whatever global thread count other tests set; ordering
        // and completeness must hold on both the inline and pipelined paths.
        for depth in [0usize, 1, 2, 8] {
            let mut seen = Vec::new();
            prefetch(
                17,
                depth,
                |i| i * i,
                |i, item| {
                    assert_eq!(item, i * i, "depth={depth}");
                    seen.push(i);
                },
            );
            let expect: Vec<usize> = (0..17).collect();
            assert_eq!(seen, expect, "depth={depth}");
        }
    }

    // One test for the global knob (not several) so concurrent test threads
    // don't race on the process-wide setting.
    #[test]
    fn global_knob_and_work_gate() {
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(threads_for(10), 1, "small work runs sequentially");
        assert_eq!(threads_for(MIN_PARALLEL_WORK), 3);
        set_threads(0); // clamped to 1
        assert_eq!(threads(), 1);
        set_threads(4);
        assert_eq!(threads(), 4);

        // Worker context forces sequential nested kernels: threads() reads 1
        // inside both spawned workers and the caller's own share.
        let mut data = vec![0u8; 64];
        parallel_chunks_with(&mut data, 8, 4, |_, _| {
            assert!(in_worker());
            assert_eq!(threads(), 1);
        });
        assert!(!in_worker(), "guard must restore the caller's state");
        assert_eq!(threads(), 4);

        // Prefetch producers are worker context too.
        prefetch(3, 2, |_| in_worker(), |_, produced_in_worker| assert!(produced_in_worker));
    }
}
