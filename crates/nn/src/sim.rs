//! Shared vector-similarity scorers.
//!
//! One canonical implementation of the dot / cosine / Euclidean family used
//! across the workspace — embedding evaluation (`coane-eval::linkpred`),
//! baseline community-separation checks, and the ANN index + query engine in
//! `coane-serve` — instead of a per-crate reimplementation in each place.
//!
//! All pairwise functions reduce strictly left-to-right over the slices, so
//! a scorer call is bit-identical wherever it runs (sequential code, pool
//! workers, any thread count) — the same determinism contract as the kernels
//! in [`crate::matrix`].
//!
//! [`score_block`] is the batched entry point: many queries against one
//! store in a single blocked kernel call. Its dot products go through the
//! multi-lane [`crate::matrix::matmul_nt_slices`] kernel — *reassociated*
//! relative to the sequential [`dot`], so a block score is not bitwise equal
//! to the pairwise [`Scorer::score`] — but every output element is a pure
//! function of its (query row, store row) pair, so block results are
//! bit-identical for any batch composition and any thread count.

use serde::{Deserialize, Serialize, Value};

use crate::matrix::matmul_nt_slices;

/// Dot product `⟨a, b⟩`, reduced left-to-right in `f32`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm `‖a‖`, reduced left-to-right in `f32`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity `⟨a, b⟩ / (‖a‖‖b‖ + 1e-12)`.
///
/// The `1e-12` stabilizer means all-zero vectors score 0 instead of NaN —
/// the convention every former inline copy in the workspace used.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    dot(a, b) / (norm(a) * norm(b) + 1e-12)
}

/// Squared Euclidean distance `‖a − b‖²`, reduced left-to-right in `f32`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// A named similarity scorer, convertible from/to its CLI and JSON spelling.
///
/// [`Scorer::score`] is oriented so that **greater is always more similar**
/// (Euclidean scores are negated squared distances); consumers can rank by
/// score descending regardless of the metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scorer {
    /// Raw dot product — the bilinear score CoANE's objective optimizes.
    Dot,
    /// Cosine similarity — scale-invariant, the default for kNN retrieval.
    #[default]
    Cosine,
    /// Negated squared Euclidean distance.
    Euclidean,
}

impl Scorer {
    /// Every scorer, in a fixed order (useful for sweeps and tests).
    pub const ALL: [Scorer; 3] = [Scorer::Dot, Scorer::Cosine, Scorer::Euclidean];

    /// Parses the lowercase name used by the CLI and the HTTP API.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dot" => Some(Self::Dot),
            "cosine" => Some(Self::Cosine),
            "euclidean" | "l2" => Some(Self::Euclidean),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dot => "dot",
            Self::Cosine => "cosine",
            Self::Euclidean => "euclidean",
        }
    }

    /// Similarity of `a` and `b`; greater is always more similar.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Self::Dot => dot(a, b),
            Self::Cosine => cosine(a, b),
            Self::Euclidean => -euclidean_sq(a, b),
        }
    }
}

/// Scores `m` queries against `n` store rows in one blocked kernel call,
/// returning the `m×n` score block in row-major order (greater is always
/// more similar, matching [`Scorer::score`] orientation).
///
/// `queries` is `m×dim` row-major, `store` is `n×dim` row-major. Dot and
/// cosine route through [`matmul_nt_slices`] (one matmul instead of `m·n`
/// sequential dot chains); Euclidean stays per-pair because the expansion
/// `‖a‖² − 2⟨a,b⟩ + ‖b‖²` would reassociate differently per batch. Every
/// element depends only on its own (query, store) row pair, so the block is
/// bit-identical however requests are batched and at any thread count.
///
/// # Panics
/// Panics if a slice length disagrees with its stated shape.
pub fn score_block(
    scorer: Scorer,
    queries: &[f32],
    m: usize,
    store: &[f32],
    n: usize,
    dim: usize,
) -> Vec<f32> {
    assert_eq!(queries.len(), m * dim, "score_block queries shape mismatch");
    assert_eq!(store.len(), n * dim, "score_block store shape mismatch");
    match scorer {
        Scorer::Dot => matmul_nt_slices(queries, store, m, dim, n),
        Scorer::Cosine => {
            let mut out = matmul_nt_slices(queries, store, m, dim, n);
            // Per-row norms are strict left-to-right [`norm`] sums — pure
            // per row, so the normalization is batch-invariant too.
            let store_norms: Vec<f32> =
                (0..n).map(|j| norm(&store[j * dim..(j + 1) * dim])).collect();
            for i in 0..m {
                let qn = norm(&queries[i * dim..(i + 1) * dim]);
                for (o, &sn) in out[i * n..(i + 1) * n].iter_mut().zip(&store_norms) {
                    *o /= qn * sn + 1e-12;
                }
            }
            out
        }
        Scorer::Euclidean => {
            let mut out = vec![0.0f32; m * n];
            for i in 0..m {
                let q = &queries[i * dim..(i + 1) * dim];
                for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
                    *o = -euclidean_sq(q, &store[j * dim..(j + 1) * dim]);
                }
            }
            out
        }
    }
}

impl Serialize for Scorer {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for Scorer {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(s) => Scorer::parse(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown scorer {s:?}"))),
            other => {
                Err(serde::Error::custom(format!("expected scorer name string, got {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_match_hand_values() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn cosine_range_and_zero_vectors() {
        let a = [1.0f32, 0.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!((cosine(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0, "zero vector scores 0, not NaN");
    }

    #[test]
    fn scorer_orientation_greater_is_more_similar() {
        let q = [1.0f32, 1.0];
        let near = [1.1f32, 0.9];
        let far = [-1.0f32, -1.0];
        for s in Scorer::ALL {
            assert!(s.score(&q, &near) > s.score(&q, &far), "{}: near must outscore far", s.name());
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for s in Scorer::ALL {
            assert_eq!(Scorer::parse(s.name()), Some(s));
        }
        assert_eq!(Scorer::parse("l2"), Some(Scorer::Euclidean));
        assert_eq!(Scorer::parse("manhattan"), None);
        assert_eq!(Scorer::default(), Scorer::Cosine);
    }

    #[test]
    fn serde_roundtrip() {
        for s in Scorer::ALL {
            let v = s.to_value();
            assert_eq!(Scorer::from_value(&v).unwrap(), s);
        }
        assert!(Scorer::from_value(&Value::String("nope".into())).is_err());
        assert!(Scorer::from_value(&Value::Number(1.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    /// Deterministic pseudo-random fill (LCG) — no RNG dep in this crate.
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn score_block_matches_pairwise_scores_within_tolerance() {
        let (m, n, dim) = (5, 17, 24);
        let queries = fill(3, m * dim);
        let store = fill(7, n * dim);
        for scorer in Scorer::ALL {
            let block = score_block(scorer, &queries, m, &store, n, dim);
            assert_eq!(block.len(), m * n);
            for i in 0..m {
                for j in 0..n {
                    let pairwise = scorer
                        .score(&queries[i * dim..(i + 1) * dim], &store[j * dim..(j + 1) * dim]);
                    let got = block[i * n + j];
                    assert!(
                        (got - pairwise).abs() <= 1e-5 * (1.0 + pairwise.abs()),
                        "{} [{i},{j}]: block {got} vs pairwise {pairwise}",
                        scorer.name()
                    );
                }
            }
        }
    }

    #[test]
    fn score_block_rows_are_batch_invariant_bits() {
        let (n, dim) = (13, 16);
        let store = fill(11, n * dim);
        let queries = fill(5, 4 * dim);
        for scorer in Scorer::ALL {
            let all = score_block(scorer, &queries, 4, &store, n, dim);
            for i in 0..4 {
                let one = score_block(scorer, &queries[i * dim..(i + 1) * dim], 1, &store, n, dim);
                assert_eq!(
                    one,
                    all[i * n..(i + 1) * n].to_vec(),
                    "{}: query {i} scored alone must be bit-identical to the batch row",
                    scorer.name()
                );
            }
            // Any sub-batch, not just singletons.
            let pair = score_block(scorer, &queries[dim..3 * dim], 2, &store, n, dim);
            assert_eq!(pair, all[n..3 * n].to_vec(), "{}", scorer.name());
        }
    }

    #[test]
    fn score_block_empty_batch_is_empty() {
        let store = fill(1, 8 * 4);
        assert!(score_block(Scorer::Cosine, &[], 0, &store, 8, 4).is_empty());
    }
}
