//! Shared vector-similarity scorers.
//!
//! One canonical implementation of the dot / cosine / Euclidean family used
//! across the workspace — embedding evaluation (`coane-eval::linkpred`),
//! baseline community-separation checks, and the ANN index + query engine in
//! `coane-serve` — instead of a per-crate reimplementation in each place.
//!
//! All functions reduce strictly left-to-right over the slices, so a scorer
//! call is bit-identical wherever it runs (sequential code, pool workers,
//! any thread count) — the same determinism contract as the kernels in
//! [`crate::matrix`].

use serde::{Deserialize, Serialize, Value};

/// Dot product `⟨a, b⟩`, reduced left-to-right in `f32`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm `‖a‖`, reduced left-to-right in `f32`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity `⟨a, b⟩ / (‖a‖‖b‖ + 1e-12)`.
///
/// The `1e-12` stabilizer means all-zero vectors score 0 instead of NaN —
/// the convention every former inline copy in the workspace used.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    dot(a, b) / (norm(a) * norm(b) + 1e-12)
}

/// Squared Euclidean distance `‖a − b‖²`, reduced left-to-right in `f32`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// A named similarity scorer, convertible from/to its CLI and JSON spelling.
///
/// [`Scorer::score`] is oriented so that **greater is always more similar**
/// (Euclidean scores are negated squared distances); consumers can rank by
/// score descending regardless of the metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scorer {
    /// Raw dot product — the bilinear score CoANE's objective optimizes.
    Dot,
    /// Cosine similarity — scale-invariant, the default for kNN retrieval.
    #[default]
    Cosine,
    /// Negated squared Euclidean distance.
    Euclidean,
}

impl Scorer {
    /// Every scorer, in a fixed order (useful for sweeps and tests).
    pub const ALL: [Scorer; 3] = [Scorer::Dot, Scorer::Cosine, Scorer::Euclidean];

    /// Parses the lowercase name used by the CLI and the HTTP API.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dot" => Some(Self::Dot),
            "cosine" => Some(Self::Cosine),
            "euclidean" | "l2" => Some(Self::Euclidean),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dot => "dot",
            Self::Cosine => "cosine",
            Self::Euclidean => "euclidean",
        }
    }

    /// Similarity of `a` and `b`; greater is always more similar.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Self::Dot => dot(a, b),
            Self::Cosine => cosine(a, b),
            Self::Euclidean => -euclidean_sq(a, b),
        }
    }
}

impl Serialize for Scorer {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for Scorer {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(s) => Scorer::parse(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown scorer {s:?}"))),
            other => {
                Err(serde::Error::custom(format!("expected scorer name string, got {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_match_hand_values() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn cosine_range_and_zero_vectors() {
        let a = [1.0f32, 0.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!((cosine(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0, "zero vector scores 0, not NaN");
    }

    #[test]
    fn scorer_orientation_greater_is_more_similar() {
        let q = [1.0f32, 1.0];
        let near = [1.1f32, 0.9];
        let far = [-1.0f32, -1.0];
        for s in Scorer::ALL {
            assert!(s.score(&q, &near) > s.score(&q, &far), "{}: near must outscore far", s.name());
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for s in Scorer::ALL {
            assert_eq!(Scorer::parse(s.name()), Some(s));
        }
        assert_eq!(Scorer::parse("l2"), Some(Scorer::Euclidean));
        assert_eq!(Scorer::parse("manhattan"), None);
        assert_eq!(Scorer::default(), Scorer::Cosine);
    }

    #[test]
    fn serde_roundtrip() {
        for s in Scorer::ALL {
            let v = s.to_value();
            assert_eq!(Scorer::from_value(&v).unwrap(), s);
        }
        assert!(Scorer::from_value(&Value::String("nope".into())).is_err());
        assert!(Scorer::from_value(&Value::Number(1.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
