//! Parameter storage and optimizers.
//!
//! Parameters live *outside* the tape in a [`Params`] store; each training
//! step registers them on a fresh [`crate::Tape`], reads back the gradients
//! and applies an optimizer step. [`Adam`] follows Kingma & Ba (2015) with
//! the paper's default learning rate 1e-3.

use crate::matrix::{multiversioned, Matrix};
use crate::tape::{Tape, Var};

multiversioned! {
/// Fused Adam element update over one parameter slice. Every operation here
/// (mul, add, sub, div, sqrt) is exactly rounded under IEEE-754, so the AVX2
/// and AVX-512 instantiations produce the same bits per element as the
/// baseline build — vectorization changes throughput only.
fn adam_update / adam_update_inner(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    b1: f32,
    b2: f32,
    lr: f32,
    eps: f32,
    b1t: f32,
    b2t: f32,
) {
    for ((pk, (mk, vk)), &gk) in p.iter_mut().zip(m.iter_mut().zip(v.iter_mut())).zip(g) {
        let m_new = b1 * *mk + (1.0 - b1) * gk;
        let v_new = b2 * *vk + (1.0 - b2) * gk * gk;
        *mk = m_new;
        *vk = v_new;
        let mhat = m_new / b1t;
        let vhat = v_new / b2t;
        *pk -= lr * mhat / (vhat.sqrt() + eps);
    }
}
}

/// Handle to a parameter in a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(usize);

impl ParamId {
    /// The parameter's insertion index. [`Params::attach`] registers tape
    /// leaves in insertion order, so this index addresses the corresponding
    /// `Var` in the attached slice.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
#[derive(Default)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl Params {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Registers every parameter on `tape` as a grad-tracked leaf, returning
    /// the tape vars in parameter order.
    pub fn attach(&self, tape: &mut Tape) -> Vec<Var> {
        self.values.iter().map(|v| tape.leaf(v.clone(), true)).collect()
    }

    /// Collects the gradient of each parameter from `tape` after a backward
    /// pass (`None` entries become zero matrices).
    pub fn collect_grads(&self, tape: &Tape, vars: &[Var]) -> Vec<Matrix> {
        assert_eq!(vars.len(), self.values.len());
        vars.iter()
            .zip(&self.values)
            .map(|(&v, p)| {
                tape.grad(v).cloned().unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
            })
            .collect()
    }

    /// Like [`Params::collect_grads`] but *moves* the gradients out of the
    /// tape, sparing a parameter-sized clone per step. The tape is consumed
    /// at the end of each step anyway, so nothing observes the removal.
    pub fn take_grads(&self, tape: &mut Tape, vars: &[Var]) -> Vec<Matrix> {
        assert_eq!(vars.len(), self.values.len());
        vars.iter()
            .zip(&self.values)
            .map(|(&v, p)| tape.take_grad(v).unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols())))
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Clones every parameter value in insertion order (for snapshots and
    /// checkpoints).
    pub fn export_values(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Overwrites every parameter value from `values` (insertion order).
    /// Returns a description of the first count/shape mismatch instead of
    /// panicking, so persistence layers can surface typed errors.
    pub fn import_values(&mut self, values: Vec<Matrix>) -> Result<(), String> {
        if values.len() != self.values.len() {
            return Err(format!(
                "parameter count mismatch: store has {}, import has {}",
                self.values.len(),
                values.len()
            ));
        }
        for (i, v) in values.iter().enumerate() {
            if v.shape() != self.values[i].shape() {
                return Err(format!(
                    "parameter '{}' shape mismatch: store has {:?}, import has {:?}",
                    self.names[i],
                    self.values[i].shape(),
                    v.shape()
                ));
            }
        }
        self.values = values;
        Ok(())
    }

    /// Whether every scalar in every parameter is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|m| m.as_slice().iter().all(|x| x.is_finite()))
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies `p -= lr * g` to every parameter.
    pub fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len());
        for (i, g) in grads.iter().enumerate() {
            params.values[i].axpy(-self.lr, g);
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015). `Clone` snapshots the full optimizer
/// state (moments + step counter), which the trainer's non-finite-loss
/// recovery uses to roll back to the last healthy epoch.
#[derive(Clone)]
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// One update step. Lazily initializes moment buffers to match `params`.
    pub fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len());
        if self.m.len() != params.len() {
            self.m = params.values.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            assert_eq!(m.shape(), g.shape(), "gradient shape changed between steps");
            let p = &mut params.values[i];
            adam_update(
                p.as_mut_slice(),
                m.as_mut_slice(),
                v.as_mut_slice(),
                g.as_slice(),
                self.beta1,
                self.beta2,
                self.lr,
                self.eps,
                b1t,
                b2t,
            );
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Exports `(lr, step count, first moments, second moments)` for
    /// checkpointing. Moment vectors are empty before the first step.
    pub fn export_state(&self) -> (f32, u64, &[Matrix], &[Matrix]) {
        (self.lr, self.t, &self.m, &self.v)
    }

    /// Rebuilds an optimizer mid-stream from exported state. `m` and `v`
    /// must have equal lengths (both empty is the pre-first-step state).
    pub fn import_state(lr: f32, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) -> Result<Self, String> {
        if m.len() != v.len() {
            return Err(format!("moment buffer count mismatch: {} vs {}", m.len(), v.len()));
        }
        for (a, b) in m.iter().zip(&v) {
            if a.shape() != b.shape() {
                return Err(format!(
                    "moment shape mismatch: m is {:?}, v is {:?}",
                    a.shape(),
                    b.shape()
                ));
            }
        }
        Ok(Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t, m, v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing f(x) = (x - 3)² should drive x → 3.
    fn quadratic_descent(make: impl Fn() -> Box<dyn FnMut(&mut Params, &[Matrix])>) -> f32 {
        let mut params = Params::new();
        let x = params.add("x", Matrix::scalar(0.0));
        let mut stepper = make();
        for _ in 0..800 {
            let mut t = Tape::new();
            let vars = params.attach(&mut t);
            let target = t.constant(Matrix::scalar(3.0));
            let d = t.sub(vars[0], target);
            let loss = t.sqr(d);
            let loss = t.sum(loss);
            t.backward(loss);
            let grads = params.collect_grads(&t, &vars);
            stepper(&mut params, &grads);
        }
        params.get(x).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = quadratic_descent(|| {
            let mut opt = Sgd::new(0.1);
            Box::new(move |p, g| opt.step(p, g))
        });
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = quadratic_descent(|| {
            let mut opt = Adam::new(0.05);
            Box::new(move |p, g| opt.step(p, g))
        });
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, Adam moves by exactly lr * sign(g)
        // (bias-corrected), regardless of |g|.
        let mut params = Params::new();
        params.add("x", Matrix::scalar(1.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut params, &[Matrix::scalar(1e-3)]);
        let moved = 1.0 - params.values[0].item();
        assert!((moved - 0.01).abs() < 1e-4, "moved {moved}");
    }

    #[test]
    fn adam_update_kernel_matches_scalar_reference_bitwise() {
        // The multiversioned dispatcher picks the widest ISA the CPU offers;
        // whatever it picks must reproduce a plain scalar loop bit for bit
        // (all the kernel's ops are exactly rounded under IEEE-754).
        let n = 1031; // odd length exercises vector remainders
        let mk = |salt: u64| -> Vec<f32> {
            let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect()
        };
        let (b1, b2, lr, eps) = (0.9f32, 0.999f32, 1e-3f32, 1e-8f32);
        let (b1t, b2t) = (1.0 - b1.powi(3), 1.0 - b2.powi(3));
        let g = mk(4);
        let (mut p, mut m) = (mk(1), mk(2));
        // Second moments are non-negative by construction in real training.
        let mut v: Vec<f32> = mk(3).iter().map(|x| x.abs()).collect();
        let (mut p_ref, mut m_ref, mut v_ref) = (p.clone(), m.clone(), v.clone());
        for k in 0..n {
            let m_new = b1 * m_ref[k] + (1.0 - b1) * g[k];
            let v_new = b2 * v_ref[k] + (1.0 - b2) * g[k] * g[k];
            m_ref[k] = m_new;
            v_ref[k] = v_new;
            p_ref[k] -= lr * (m_new / b1t) / ((v_new / b2t).sqrt() + eps);
        }
        adam_update(&mut p, &mut m, &mut v, &g, b1, b2, lr, eps, b1t, b2t);
        assert_eq!(p, p_ref);
        assert_eq!(m, m_ref);
        assert_eq!(v, v_ref);
    }

    #[test]
    fn params_store_roundtrip() {
        let mut p = Params::new();
        let a = p.add("a", Matrix::zeros(2, 3));
        let b = p.add("b", Matrix::scalar(1.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.num_scalars(), 7);
        p.get_mut(b).as_mut_slice()[0] = 5.0;
        assert_eq!(p.get(b).item(), 5.0);
        let names: Vec<&str> = p.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn adam_state_roundtrip_continues_identically() {
        // Two optimizers, one cloned via export/import mid-run, must produce
        // bit-identical parameter trajectories afterwards.
        let mut p1 = Params::new();
        p1.add("x", Matrix::from_vec(1, 2, vec![1.0, -2.0]));
        let mut p2 = Params::new();
        p2.add("x", Matrix::from_vec(1, 2, vec![1.0, -2.0]));
        let mut a1 = Adam::new(0.05);
        let g = Matrix::from_vec(1, 2, vec![0.3, -0.7]);
        for _ in 0..5 {
            a1.step(&mut p1, std::slice::from_ref(&g));
        }
        let (lr, t, m, v) = a1.export_state();
        let mut a2 = Adam::import_state(lr, t, m.to_vec(), v.to_vec()).unwrap();
        // Bring p2 to the same point, then continue both.
        p2.import_values(p1.export_values()).unwrap();
        for _ in 0..5 {
            a1.step(&mut p1, std::slice::from_ref(&g));
            a2.step(&mut p2, std::slice::from_ref(&g));
        }
        assert_eq!(p1.export_values(), p2.export_values());
    }

    #[test]
    fn params_import_rejects_mismatches() {
        let mut p = Params::new();
        p.add("a", Matrix::zeros(2, 3));
        assert!(p.import_values(vec![]).is_err());
        assert!(p.import_values(vec![Matrix::zeros(3, 2)]).unwrap_err().contains("shape"));
        assert!(p.import_values(vec![Matrix::zeros(2, 3)]).is_ok());
        assert!(p.all_finite());
        p.get_mut(ParamId(0)).as_mut_slice()[0] = f32::NAN;
        assert!(!p.all_finite());
    }

    #[test]
    fn adam_import_rejects_mismatched_moments() {
        assert!(Adam::import_state(0.1, 3, vec![Matrix::zeros(1, 1)], vec![]).is_err());
        assert!(Adam::import_state(0.1, 3, vec![Matrix::zeros(1, 1)], vec![Matrix::zeros(2, 1)])
            .is_err());
    }

    #[test]
    fn collect_grads_zero_for_unused() {
        let params = {
            let mut p = Params::new();
            p.add("used", Matrix::scalar(2.0));
            p.add("unused", Matrix::zeros(2, 2));
            p
        };
        let mut t = Tape::new();
        let vars = params.attach(&mut t);
        let loss = t.sqr(vars[0]);
        let loss = t.sum(loss);
        t.backward(loss);
        let grads = params.collect_grads(&t, &vars);
        assert_eq!(grads[0].item(), 4.0);
        assert_eq!(grads[1], Matrix::zeros(2, 2));

        // take_grads returns the same gradients, moving them out of the tape.
        let taken = params.take_grads(&mut t, &vars);
        assert_eq!(taken, grads);
        assert!(t.grad(vars[0]).is_none(), "gradient moved out");
    }
}
