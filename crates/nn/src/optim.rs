//! Parameter storage and optimizers.
//!
//! Parameters live *outside* the tape in a [`Params`] store; each training
//! step registers them on a fresh [`crate::Tape`], reads back the gradients
//! and applies an optimizer step. [`Adam`] follows Kingma & Ba (2015) with
//! the paper's default learning rate 1e-3.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Handle to a parameter in a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(usize);

impl ParamId {
    /// The parameter's insertion index. [`Params::attach`] registers tape
    /// leaves in insertion order, so this index addresses the corresponding
    /// `Var` in the attached slice.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
#[derive(Default)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl Params {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Registers every parameter on `tape` as a grad-tracked leaf, returning
    /// the tape vars in parameter order.
    pub fn attach(&self, tape: &mut Tape) -> Vec<Var> {
        self.values.iter().map(|v| tape.leaf(v.clone(), true)).collect()
    }

    /// Collects the gradient of each parameter from `tape` after a backward
    /// pass (`None` entries become zero matrices).
    pub fn collect_grads(&self, tape: &Tape, vars: &[Var]) -> Vec<Matrix> {
        assert_eq!(vars.len(), self.values.len());
        vars.iter()
            .zip(&self.values)
            .map(|(&v, p)| {
                tape.grad(v).cloned().unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
            })
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies `p -= lr * g` to every parameter.
    pub fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len());
        for (i, g) in grads.iter().enumerate() {
            params.values[i].axpy(-self.lr, g);
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// One update step. Lazily initializes moment buffers to match `params`.
    pub fn step(&mut self, params: &mut Params, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len());
        if self.m.len() != params.len() {
            self.m = params.values.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            assert_eq!(m.shape(), g.shape(), "gradient shape changed between steps");
            let p = &mut params.values[i];
            for k in 0..g.len() {
                let gk = g.as_slice()[k];
                let mk = self.beta1 * m.as_slice()[k] + (1.0 - self.beta1) * gk;
                let vk = self.beta2 * v.as_slice()[k] + (1.0 - self.beta2) * gk * gk;
                m.as_mut_slice()[k] = mk;
                v.as_mut_slice()[k] = vk;
                let mhat = mk / b1t;
                let vhat = vk / b2t;
                p.as_mut_slice()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing f(x) = (x - 3)² should drive x → 3.
    fn quadratic_descent(make: impl Fn() -> Box<dyn FnMut(&mut Params, &[Matrix])>) -> f32 {
        let mut params = Params::new();
        let x = params.add("x", Matrix::scalar(0.0));
        let mut stepper = make();
        for _ in 0..800 {
            let mut t = Tape::new();
            let vars = params.attach(&mut t);
            let target = t.constant(Matrix::scalar(3.0));
            let d = t.sub(vars[0], target);
            let loss = t.sqr(d);
            let loss = t.sum(loss);
            t.backward(loss);
            let grads = params.collect_grads(&t, &vars);
            stepper(&mut params, &grads);
        }
        params.get(x).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = quadratic_descent(|| {
            let mut opt = Sgd::new(0.1);
            Box::new(move |p, g| opt.step(p, g))
        });
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = quadratic_descent(|| {
            let mut opt = Adam::new(0.05);
            Box::new(move |p, g| opt.step(p, g))
        });
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, Adam moves by exactly lr * sign(g)
        // (bias-corrected), regardless of |g|.
        let mut params = Params::new();
        params.add("x", Matrix::scalar(1.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut params, &[Matrix::scalar(1e-3)]);
        let moved = 1.0 - params.values[0].item();
        assert!((moved - 0.01).abs() < 1e-4, "moved {moved}");
    }

    #[test]
    fn params_store_roundtrip() {
        let mut p = Params::new();
        let a = p.add("a", Matrix::zeros(2, 3));
        let b = p.add("b", Matrix::scalar(1.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.num_scalars(), 7);
        p.get_mut(b).as_mut_slice()[0] = 5.0;
        assert_eq!(p.get(b).item(), 5.0);
        let names: Vec<&str> = p.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn collect_grads_zero_for_unused() {
        let params = {
            let mut p = Params::new();
            p.add("used", Matrix::scalar(2.0));
            p.add("unused", Matrix::zeros(2, 2));
            p
        };
        let mut t = Tape::new();
        let vars = params.attach(&mut t);
        let loss = t.sqr(vars[0]);
        let loss = t.sum(loss);
        t.backward(loss);
        let grads = params.collect_grads(&t, &vars);
        assert_eq!(grads[0].item(), 4.0);
        assert_eq!(grads[1], Matrix::zeros(2, 2));
    }
}
