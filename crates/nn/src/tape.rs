//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records an eagerly-evaluated computation graph. Operations are
//! a closed enum — every backward rule is written out explicitly and covered
//! by finite-difference tests — rather than closures, which keeps the engine
//! small and auditable.
//!
//! Typical usage (one training step):
//!
//! ```
//! use coane_nn::{Matrix, Tape};
//! let mut t = Tape::new();
//! let w = t.leaf(Matrix::from_rows(&[vec![0.5, -0.5]]), true);
//! let x = t.leaf(Matrix::from_rows(&[vec![1.0], vec![2.0]]), false);
//! let y = t.matmul(w, x);      // 1x1
//! let loss = t.sqr(y);
//! let loss = t.sum(loss);
//! t.backward(loss);
//! let g = t.grad(w).unwrap();  // d(loss)/dw
//! assert_eq!(g.shape(), (1, 2));
//! ```

use std::ops::Range;
use std::rc::Rc;
use std::sync::Arc;

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

/// Handle to a node in a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    Leaf { requires_grad: bool },
    MatMul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    // The constant is recorded for debuggability only: d(x+c)/dx = 1.
    AddConst(Var, #[allow(dead_code)] f32),
    Sigmoid(Var),
    LogSigmoid(Var),
    Relu(Var),
    Tanh(Var),
    Exp(Var),
    Ln(Var),
    Sqr(Var),
    Sum(Var),
    Mean(Var),
    RowsDot(Var, Var),
    GatherRows(Var, Rc<Vec<u32>>),
    SegmentMean(Var, Arc<Vec<usize>>),
    SpMM(Arc<SparseMatrix>, Var),
    ConcatCols(Var, Var),
    SliceCols(Var, Range<usize>),
    BceWithLogits(Var, Rc<Matrix>),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// An autograd tape: build the graph with the op methods, call
/// [`Tape::backward`] on a scalar node, then read gradients of leaves with
/// [`Tape::grad`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient accumulated at a node after [`Tape::backward`]; `None` if the
    /// node received no gradient.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Moves the gradient out of a node (leaving `None`), avoiding the clone
    /// that [`Tape::grad`] callers would otherwise pay per optimizer step.
    pub fn take_grad(&mut self, v: Var) -> Option<Matrix> {
        self.nodes[v.0].grad.take()
    }

    /// Inserts a leaf holding `value`. Gradients are only tracked through it
    /// when `requires_grad` is true (constants should pass `false`; the
    /// backward pass still flows *through* constants' consumers either way).
    pub fn leaf(&mut self, value: Matrix, requires_grad: bool) -> Var {
        self.push(Op::Leaf { requires_grad }, value)
    }

    /// Constant leaf (no gradient tracking).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum of same-shape operands.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "add shape mismatch");
        let mut v = x.clone();
        v.axpy(1.0, y);
        self.push(Op::Add(a, b), v)
    }

    /// Row-broadcast add: `(m,n) + (1,n)` (bias addition).
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let (x, b) = (self.value(a), self.value(bias));
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(x.cols(), b.cols(), "bias width mismatch");
        let mut v = x.clone();
        for r in 0..v.rows() {
            for (o, &bb) in v.row_mut(r).iter_mut().zip(b.row(0)) {
                *o += bb;
            }
        }
        self.push(Op::AddRow(a, bias), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "sub shape mismatch");
        let mut v = x.clone();
        v.axpy(-1.0, y);
        self.push(Op::Sub(a, b), v)
    }

    /// Hadamard (elementwise) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "mul shape mismatch");
        let data = x.as_slice().iter().zip(y.as_slice()).map(|(&p, &q)| p * q).collect();
        let v = Matrix::from_vec(x.rows(), x.cols(), data);
        self.push(Op::Mul(a, b), v)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| c * x);
        self.push(Op::Scale(a, c), v)
    }

    /// Elementwise `x + c`.
    pub fn add_const(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddConst(a, c), v)
    }

    /// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(stable_sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    /// Numerically stable `log σ(x) = -softplus(-x)`.
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| -softplus(-x));
        self.push(Op::LogSigmoid(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise natural log. Inputs are clamped to `1e-12` from below to
    /// avoid `-inf`; prefer [`Tape::log_sigmoid`] for likelihoods.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(1e-12).ln());
        self.push(Op::Ln(a), v)
    }

    /// Elementwise square.
    pub fn sqr(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(Op::Sqr(a), v)
    }

    /// Sum of all elements → 1×1.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.value(a).sum());
        self.push(Op::Sum(a), v)
    }

    /// Mean of all elements → 1×1. The mean of an empty matrix is 0.
    pub fn mean(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let n = x.len();
        let v = Matrix::scalar(if n == 0 { 0.0 } else { x.sum() / n as f32 });
        self.push(Op::Mean(a), v)
    }

    /// Pairwise row dot products: `(m,n) × (m,n) → (m,1)`,
    /// `out_i = Σ_j a_ij b_ij`. This is the workhorse of every edge / pair
    /// likelihood (`σ(L_i · R_j)`, `(z_i · z_j)²`, …).
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "rows_dot shape mismatch");
        let mut v = Matrix::zeros(x.rows(), 1);
        for i in 0..x.rows() {
            let s: f32 = x.row(i).iter().zip(y.row(i)).map(|(&p, &q)| p * q).sum();
            v.set(i, 0, s);
        }
        self.push(Op::RowsDot(a, b), v)
    }

    /// Row gather (embedding lookup): output row `k` is input row
    /// `indices[k]`. The backward pass scatter-adds, so repeated indices
    /// accumulate gradient — exactly the embedding-table semantics.
    pub fn gather_rows(&mut self, a: Var, indices: Rc<Vec<u32>>) -> Var {
        let x = self.value(a);
        let mut v = Matrix::zeros(indices.len(), x.cols());
        for (k, &i) in indices.iter().enumerate() {
            v.row_mut(k).copy_from_slice(x.row(i as usize));
        }
        self.push(Op::GatherRows(a, indices), v)
    }

    /// Segment mean over consecutive row ranges. `offsets` has length
    /// `S + 1`; output row `s` is the mean of input rows
    /// `offsets[s]..offsets[s+1]` (zero for empty segments). This implements
    /// the paper's 1-D average pooling over each node's variable-size
    /// context set.
    /// The operand is `Arc` (not `Rc` like the other constant attachments)
    /// so batch operands assembled on prefetch threads can be attached
    /// without a deep copy.
    pub fn segment_mean(&mut self, a: Var, offsets: Arc<Vec<usize>>) -> Var {
        let v = segment_mean_forward(self.value(a), &offsets);
        self.push(Op::SegmentMean(a, offsets), v)
    }

    /// Sparse-constant × dense-variable product (`Â · H` in GCN layers).
    /// `Arc` for the same prefetch reason as [`Tape::segment_mean`].
    pub fn spmm(&mut self, a: Arc<SparseMatrix>, b: Var) -> Var {
        let v = a.matmul_dense(self.value(b));
        self.push(Op::SpMM(a, b), v)
    }

    /// Horizontal concatenation of same-height operands.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.rows(), y.rows(), "concat_cols height mismatch");
        let mut v = Matrix::zeros(x.rows(), x.cols() + y.cols());
        for r in 0..x.rows() {
            v.row_mut(r)[..x.cols()].copy_from_slice(x.row(r));
            v.row_mut(r)[x.cols()..].copy_from_slice(y.row(r));
        }
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Column slice `a[:, range]` (used to split `Z = [L | R]`).
    pub fn slice_cols(&mut self, a: Var, range: Range<usize>) -> Var {
        let x = self.value(a);
        assert!(range.end <= x.cols(), "slice out of range");
        let mut v = Matrix::zeros(x.rows(), range.len());
        for r in 0..x.rows() {
            v.row_mut(r).copy_from_slice(&x.row(r)[range.clone()]);
        }
        self.push(Op::SliceCols(a, range), v)
    }

    /// Elementwise, numerically stable binary cross-entropy with logits:
    /// `max(x,0) − x·t + ln(1 + e^{−|x|})`. Targets are constants.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Rc<Matrix>) -> Var {
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce shape mismatch");
        let data = x
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&l, &t)| l.max(0.0) - l * t + softplus(-l.abs()))
            .collect();
        let v = Matrix::from_vec(x.rows(), x.cols(), data);
        self.push(Op::BceWithLogits(logits, targets), v)
    }

    // ---- composite helpers -------------------------------------------------

    /// Mean squared error between a variable and a constant target → 1×1.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let s = self.sqr(d);
        self.mean(s)
    }

    /// Runs the backward pass from a scalar (1×1) node.
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward from non-scalar");
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            self.propagate(i, &g);
            self.nodes[i].grad = Some(g);
        }
    }

    fn accumulate(&mut self, target: Var, delta: Matrix) {
        if let Op::Leaf { requires_grad: false } = self.nodes[target.0].op {
            return; // constants don't need storage for their gradient
        }
        let node = &mut self.nodes[target.0];
        debug_assert_eq!(node.value.shape(), delta.shape(), "gradient shape mismatch");
        match &mut node.grad {
            Some(g) => g.axpy(1.0, &delta),
            None => node.grad = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        // Borrow dance: clone lightweight op metadata before mutating.
        match &self.nodes[i].op {
            Op::Leaf { .. } => {}
            &Op::MatMul(a, b) => {
                let ga = g.matmul_nt(self.value(b));
                let gb = self.value(a).matmul_tn(g);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            &Op::Add(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            &Op::AddRow(a, bias) => {
                let mut gb = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &gg) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += gg;
                    }
                }
                self.accumulate(a, g.clone());
                self.accumulate(bias, gb);
            }
            &Op::Sub(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.map(|x| -x));
            }
            &Op::Mul(a, b) => {
                let ga = elementwise(g, self.value(b), |p, q| p * q);
                let gb = elementwise(g, self.value(a), |p, q| p * q);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            &Op::Scale(a, c) => self.accumulate(a, g.map(|x| c * x)),
            &Op::AddConst(a, _) => self.accumulate(a, g.clone()),
            &Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let ga = elementwise(g, y, |gg, yy| gg * yy * (1.0 - yy));
                self.accumulate(a, ga);
            }
            &Op::LogSigmoid(a) => {
                // d/dx log σ(x) = σ(−x)
                let ga = elementwise(g, self.value(a), |gg, x| gg * stable_sigmoid(-x));
                self.accumulate(a, ga);
            }
            &Op::Relu(a) => {
                let ga = elementwise(g, self.value(a), |gg, x| if x > 0.0 { gg } else { 0.0 });
                self.accumulate(a, ga);
            }
            &Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let ga = elementwise(g, y, |gg, yy| gg * (1.0 - yy * yy));
                self.accumulate(a, ga);
            }
            &Op::Exp(a) => {
                let y = &self.nodes[i].value;
                let ga = elementwise(g, y, |gg, yy| gg * yy);
                self.accumulate(a, ga);
            }
            &Op::Ln(a) => {
                let ga = elementwise(g, self.value(a), |gg, x| gg / x.max(1e-12));
                self.accumulate(a, ga);
            }
            &Op::Sqr(a) => {
                let ga = elementwise(g, self.value(a), |gg, x| gg * 2.0 * x);
                self.accumulate(a, ga);
            }
            &Op::Sum(a) => {
                let x = self.value(a);
                let ga = Matrix::full(x.rows(), x.cols(), g.item());
                self.accumulate(a, ga);
            }
            &Op::Mean(a) => {
                let x = self.value(a);
                let n = x.len().max(1);
                let ga = Matrix::full(x.rows(), x.cols(), g.item() / n as f32);
                self.accumulate(a, ga);
            }
            &Op::RowsDot(a, b) => {
                let (x, y) = (self.value(a), self.value(b));
                let mut ga = Matrix::zeros(x.rows(), x.cols());
                let mut gb = Matrix::zeros(y.rows(), y.cols());
                for r in 0..x.rows() {
                    let gr = g.get(r, 0);
                    for ((oa, ob), (&xv, &yv)) in ga
                        .row_mut(r)
                        .iter_mut()
                        .zip(gb.row_mut(r).iter_mut())
                        .zip(x.row(r).iter().zip(y.row(r)))
                    {
                        *oa = gr * yv;
                        *ob = gr * xv;
                    }
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::GatherRows(a, indices) => {
                let (a, indices) = (*a, Rc::clone(indices));
                let x = self.value(a);
                let mut ga = Matrix::zeros(x.rows(), x.cols());
                for (k, &idx) in indices.iter().enumerate() {
                    let grow = g.row(k);
                    for (o, &gg) in ga.row_mut(idx as usize).iter_mut().zip(grow) {
                        *o += gg;
                    }
                }
                self.accumulate(a, ga);
            }
            Op::SegmentMean(a, offsets) => {
                let (a, offsets) = (*a, Arc::clone(offsets));
                let x = self.value(a);
                let mut ga = Matrix::zeros(x.rows(), x.cols());
                for s in 0..offsets.len() - 1 {
                    let (lo, hi) = (offsets[s], offsets[s + 1]);
                    if lo == hi {
                        continue;
                    }
                    let inv = 1.0 / (hi - lo) as f32;
                    let grow = g.row(s);
                    for r in lo..hi {
                        for (o, &gg) in ga.row_mut(r).iter_mut().zip(grow) {
                            *o += gg * inv;
                        }
                    }
                }
                self.accumulate(a, ga);
            }
            Op::SpMM(mat, b) => {
                let (mat, b) = (Arc::clone(mat), *b);
                let gb = mat.transpose_matmul_dense(g);
                self.accumulate(b, gb);
            }
            Op::ConcatCols(a, b) => {
                let (a, b) = (*a, *b);
                let wa = self.value(a).cols();
                let mut ga = Matrix::zeros(g.rows(), wa);
                let mut gb = Matrix::zeros(g.rows(), g.cols() - wa);
                for r in 0..g.rows() {
                    ga.row_mut(r).copy_from_slice(&g.row(r)[..wa]);
                    gb.row_mut(r).copy_from_slice(&g.row(r)[wa..]);
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::SliceCols(a, range) => {
                let (a, range) = (*a, range.clone());
                let x = self.value(a);
                let mut ga = Matrix::zeros(x.rows(), x.cols());
                for r in 0..g.rows() {
                    ga.row_mut(r)[range.clone()].copy_from_slice(g.row(r));
                }
                self.accumulate(a, ga);
            }
            Op::BceWithLogits(logits, targets) => {
                let (logits, targets) = (*logits, Rc::clone(targets));
                let x = self.value(logits);
                let mut ga = Matrix::zeros(x.rows(), x.cols());
                for (k, o) in ga.as_mut_slice().iter_mut().enumerate() {
                    let (gg, l, t) = (g.as_slice()[k], x.as_slice()[k], targets.as_slice()[k]);
                    *o = gg * (stable_sigmoid(l) - t);
                }
                self.accumulate(logits, ga);
            }
        }
    }
}

/// Segment-mean forward pass, shared by [`Tape::segment_mean`] and no-grad
/// inference paths so both produce bit-identical results. `offsets` has
/// length `S + 1`; output row `s` is the mean of input rows
/// `offsets[s]..offsets[s+1]` (zero for empty segments).
pub fn segment_mean_forward(x: &Matrix, offsets: &[usize]) -> Matrix {
    assert!(offsets.len() >= 2, "need at least one segment");
    assert_eq!(*offsets.last().unwrap(), x.rows(), "offsets must cover all rows");
    let segs = offsets.len() - 1;
    let mut v = Matrix::zeros(segs, x.cols());
    for s in 0..segs {
        let (lo, hi) = (offsets[s], offsets[s + 1]);
        assert!(lo <= hi, "offsets must be nondecreasing");
        if lo == hi {
            continue;
        }
        let inv = 1.0 / (hi - lo) as f32;
        for r in lo..hi {
            let row = x.row(r);
            for (o, &xx) in v.row_mut(s).iter_mut().zip(row) {
                *o += xx * inv;
            }
        }
    }
    v
}

fn elementwise(a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
    debug_assert_eq!(a.shape(), b.shape());
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&p, &q)| f(p, q)).collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Overflow-safe sigmoid.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Overflow-safe softplus `ln(1 + e^x)`.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of d(scalar)/d(inputs[0]) for a graph
    /// builder `f`. All matrices in `inputs` become grad-tracked leaves.
    fn grad_check(inputs: &[Matrix], f: impl Fn(&mut Tape, &[Var]) -> Var) {
        let eps = 1e-2f32;
        let tol = 2e-2f32;
        // analytic
        let mut t = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|m| t.leaf(m.clone(), true)).collect();
        let out = f(&mut t, &vars);
        t.backward(out);
        for (vi, input) in inputs.iter().enumerate() {
            let analytic = t
                .grad(vars[vi])
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols()));
            for k in 0..input.len() {
                let mut plus = inputs.to_vec();
                plus[vi].as_mut_slice()[k] += eps;
                let mut minus = inputs.to_vec();
                minus[vi].as_mut_slice()[k] -= eps;
                let eval = |ms: &[Matrix]| {
                    let mut t = Tape::new();
                    let vs: Vec<Var> = ms.iter().map(|m| t.leaf(m.clone(), true)).collect();
                    let o = f(&mut t, &vs);
                    t.value(o).item()
                };
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let a = analytic.as_slice()[k];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "input {vi} elem {k}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn m(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            &[m(&[vec![0.3, -0.7], vec![1.1, 0.2]]), m(&[vec![0.5, 0.1], vec![-0.4, 0.9]])],
            |t, v| {
                let y = t.matmul(v[0], v[1]);
                t.sum(y)
            },
        );
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        grad_check(&[m(&[vec![0.3, -0.7]]), m(&[vec![0.5, 0.1]])], |t, v| {
            let a = t.add(v[0], v[1]);
            let b = t.sub(a, v[1]);
            let c = t.mul(b, v[0]);
            let d = t.scale(c, 1.7);
            let e = t.add_const(d, 0.3);
            t.sum(e)
        });
    }

    #[test]
    fn grad_add_row_bias() {
        grad_check(&[m(&[vec![0.3, -0.7], vec![0.2, 0.4]]), m(&[vec![0.5, 0.1]])], |t, v| {
            let y = t.add_row(v[0], v[1]);
            let y = t.sqr(y);
            t.sum(y)
        });
    }

    #[test]
    fn grad_activations() {
        grad_check(&[m(&[vec![0.3, -0.7, 1.2]])], |t, v| {
            let a = t.sigmoid(v[0]);
            let b = t.tanh(a);
            let c = t.exp(b);
            t.sum(c)
        });
        grad_check(&[m(&[vec![0.4, -1.3]])], |t, v| {
            let a = t.log_sigmoid(v[0]);
            t.sum(a)
        });
        grad_check(&[m(&[vec![0.4, -1.3, 0.6]])], |t, v| {
            let a = t.relu(v[0]);
            let b = t.sqr(a);
            t.sum(b)
        });
        grad_check(&[m(&[vec![0.4, 1.3]])], |t, v| {
            let a = t.ln(v[0]);
            t.sum(a)
        });
    }

    #[test]
    fn grad_mean() {
        grad_check(&[m(&[vec![0.3, -0.7], vec![1.0, 2.0]])], |t, v| {
            let a = t.sqr(v[0]);
            t.mean(a)
        });
    }

    #[test]
    fn grad_rows_dot() {
        grad_check(
            &[m(&[vec![0.3, -0.7], vec![1.0, 0.5]]), m(&[vec![0.2, 0.4], vec![-0.3, 0.8]])],
            |t, v| {
                let d = t.rows_dot(v[0], v[1]);
                let d = t.sqr(d);
                t.sum(d)
            },
        );
    }

    #[test]
    fn grad_gather_rows_accumulates_repeats() {
        grad_check(&[m(&[vec![0.3, -0.7], vec![1.0, 0.5], vec![0.1, 0.2]])], |t, v| {
            let idx = Rc::new(vec![1u32, 1, 0]);
            let g = t.gather_rows(v[0], idx);
            let g = t.sqr(g);
            t.sum(g)
        });
    }

    #[test]
    fn grad_segment_mean() {
        grad_check(
            &[m(&[vec![0.3, -0.7], vec![1.0, 0.5], vec![0.1, 0.2], vec![0.9, -0.4]])],
            |t, v| {
                // segments: rows 0..1, 1..1 (empty), 1..4
                let offs = Arc::new(vec![0usize, 1, 1, 4]);
                let s = t.segment_mean(v[0], offs);
                let s = t.sqr(s);
                t.sum(s)
            },
        );
    }

    #[test]
    fn grad_spmm() {
        let sp = Arc::new(SparseMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 0.5), (0, 2, 1.5), (2, 1, -0.7)],
        ));
        grad_check(&[m(&[vec![0.3, -0.7], vec![1.0, 0.5], vec![0.1, 0.2]])], move |t, v| {
            let y = t.spmm(Arc::clone(&sp), v[0]);
            let y = t.sqr(y);
            t.sum(y)
        });
    }

    #[test]
    fn grad_concat_slice() {
        grad_check(
            &[m(&[vec![0.3, -0.7], vec![1.0, 0.5]]), m(&[vec![0.2], vec![-0.3]])],
            |t, v| {
                let c = t.concat_cols(v[0], v[1]);
                let s = t.slice_cols(c, 1..3);
                let s = t.sqr(s);
                t.sum(s)
            },
        );
    }

    #[test]
    fn grad_bce_with_logits() {
        let targets = Rc::new(m(&[vec![1.0, 0.0, 1.0]]));
        grad_check(&[m(&[vec![0.4, -1.3, 2.0]])], move |t, v| {
            let l = t.bce_with_logits(v[0], Rc::clone(&targets));
            t.mean(l)
        });
    }

    #[test]
    fn bce_value_matches_definition() {
        let mut t = Tape::new();
        let x = t.leaf(m(&[vec![0.7, -0.2]]), true);
        let targets = Rc::new(m(&[vec![1.0, 0.0]]));
        let l = t.bce_with_logits(x, targets);
        let want0 = -(stable_sigmoid(0.7f32)).ln();
        let want1 = -(1.0 - stable_sigmoid(-0.2f32)).ln();
        assert!((t.value(l).get(0, 0) - want0).abs() < 1e-5);
        assert!((t.value(l).get(0, 1) - want1).abs() < 1e-5);
    }

    #[test]
    fn grad_mse_composite() {
        grad_check(&[m(&[vec![0.3, -0.7], vec![1.0, 0.5]])], |t, v| {
            let target = t.constant(m(&[vec![0.0, 0.0], vec![1.0, 1.0]]));
            t.mse(v[0], target)
        });
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = sum(x*x + x) — x used twice; grad = 2x + 1.
        let mut t = Tape::new();
        let x = t.leaf(m(&[vec![3.0]]), true);
        let a = t.mul(x, x);
        let b = t.add(a, x);
        let loss = t.sum(b);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().item(), 7.0);
    }

    #[test]
    fn sigmoid_extreme_inputs_are_finite() {
        let mut t = Tape::new();
        let x = t.leaf(m(&[vec![-500.0, 500.0]]), true);
        let s = t.sigmoid(x);
        let ls = t.log_sigmoid(x);
        assert!(t.value(s).as_slice().iter().all(|v| v.is_finite()));
        assert!(t.value(ls).as_slice().iter().all(|v| v.is_finite()));
        assert!((t.value(s).get(0, 0) - 0.0).abs() < 1e-6);
        assert!((t.value(s).get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2), true);
        t.backward(x);
    }
}
