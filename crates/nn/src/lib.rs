//! # coane-nn
//!
//! A minimal, deterministic CPU tensor library with reverse-mode automatic
//! differentiation, written for the CoANE reproduction. The paper trains a
//! 1-D convolutional encoder plus an MLP attribute decoder with Adam and
//! Xavier initialization; this crate provides exactly that machinery (and
//! enough extra ops — sparse-dense matmul, row gathers, segment means,
//! pairwise row dot products — for the GCN-style and embedding-table
//! baselines as well).
//!
//! Design: a [`tape::Tape`] records a computation graph of [`matrix::Matrix`]
//! values with a *closed enum* of operations (no closures), which keeps the
//! backward pass auditable and lets unit tests finite-difference every op.
//! Model parameters live outside the tape in a [`optim::Params`] store; each
//! training step builds a fresh tape, runs forward + backward, and feeds the
//! gradients to an optimizer ([`optim::Adam`] / [`optim::Sgd`]).

pub mod init;
pub mod layers;
pub mod matrix;
pub mod optim;
pub mod pool;
pub mod qkernels;
pub mod sim;
pub mod sparse;
pub mod tape;

pub use layers::{Linear, Mlp};
pub use matrix::{matmul_nt_slices, Matrix};
pub use optim::{Adam, ParamId, Params, Sgd};
pub use qkernels::Precision;
pub use sim::Scorer;
pub use sparse::SparseMatrix;
pub use tape::{Tape, Var};
