//! Quantized distance kernels for the serving layer: int8 (per-row
//! symmetric scale) and f16 (IEEE 754 binary16) row encodings with fused
//! scan kernels, multiversioned for AVX2/AVX-512 exactly like the matmuls
//! in [`crate::matrix`].
//!
//! ## Determinism contract
//!
//! Everything here is bit-identical at any thread count **and across ISA
//! dispatch levels** (scalar / AVX2 / AVX-512):
//!
//! - Quantization is a pure function of the f32 row: the int8 scale is
//!   `max_abs/127` and codes round half-away-from-zero via [`f32::round`];
//!   the f16 encoding is IEEE round-to-nearest-even. No data-dependent tie
//!   breaking, no RNG.
//! - The int8 dot accumulates in `i32` via widening multiply-add. Integer
//!   addition is associative, so *any* vectorization the compiler picks
//!   produces the same value — ISA invariance for free.
//! - The f16 kernels accumulate through [`QDOT_LANES`] fixed accumulator
//!   lanes with a fixed reduction order (the same discipline as the
//!   matmuls' `dot_lanes`), so wider registers change throughput only.
//! - Score combination ([`combine_i8`], [`combine_f16`]) is a fixed
//!   sequence of scalar f32 operations.
//!
//! The serving store scores every candidate against these kernels and then
//! re-ranks the survivors with exact f32 scores, so quantization error
//! affects candidate *selection* only, never the final ranking arithmetic.

use crate::matrix::multiversioned;
use crate::pool;
use crate::sim::Scorer;
use serde::{Deserialize, Serialize, Value};

/// Storage precision of an embedding table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 rows (the original store format).
    #[default]
    F32,
    /// IEEE 754 binary16 rows: half the bytes, ~3 decimal digits.
    F16,
    /// Symmetric per-row int8: a quarter of the bytes plus one f32 scale
    /// (and a reserved zero-point) per row.
    Int8,
}

impl Precision {
    /// Every precision, in a fixed order (useful for sweeps and tests).
    pub const ALL: [Precision; 3] = [Precision::F32, Precision::F16, Precision::Int8];

    /// Parses the lowercase name used by the CLI and the HTTP API.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "f32" => Some(Self::F32),
            "f16" => Some(Self::F16),
            "int8" | "i8" => Some(Self::Int8),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::F16 => "f16",
            Self::Int8 => "int8",
        }
    }

    /// Bytes of scoring-table data per stored element (codes only; the
    /// int8 per-row scale block is accounted separately).
    pub fn bytes_per_element(self) -> usize {
        match self {
            Self::F32 => 4,
            Self::F16 => 2,
            Self::Int8 => 1,
        }
    }
}

impl Serialize for Precision {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for Precision {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(s) => Precision::parse(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown precision {s:?}"))),
            other => {
                Err(serde::Error::custom(format!("expected precision name string, got {other:?}")))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f16 conversion
// ---------------------------------------------------------------------------

/// Converts an f32 to IEEE 754 binary16 bits with round-to-nearest-even —
/// a pure function of the input bits (stable Rust has no native f16, so
/// the conversion is spelled out; it matches hardware `vcvtps2ph` with the
/// default rounding mode).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf stays inf; NaN keeps a payload bit so it stays NaN.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal f16: drop 13 mantissa bits with round-to-nearest-even.
        // A mantissa carry overflows into the exponent, which is exactly
        // the IEEE behavior (up to and including rounding to infinity).
        let mant = man >> 13;
        let rem = man & 0x1fff;
        let mut h = (sign as u32) | (((unbiased + 15) as u32) << 10) | mant;
        if rem > 0x1000 || (rem == 0x1000 && (mant & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    if unbiased < -25 {
        return sign; // underflows to ±0 even after rounding
    }
    // Subnormal f16: shift the 24-bit significand (implicit bit restored)
    // down to the subnormal position, round-to-nearest-even on the
    // remainder. `shift` is in 14..=24, so the masks below stay in range.
    let man = man | 0x0080_0000;
    let shift = (13 - 14 - unbiased) as u32;
    let mant = man >> shift;
    let rem = man & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let mut h = (sign as u32) | mant;
    if rem > half || (rem == half && (mant & 1) == 1) {
        h += 1;
    }
    h as u16
}

/// Converts IEEE 754 binary16 bits to the exactly-representable f32 —
/// every f16 value (including subnormals) converts without rounding.
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) >> 15) << 31;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13) // inf / NaN
    } else if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal: value is man × 2⁻²⁴, exact in f32 (man < 2²⁴).
            let v = (man as f32) * (1.0 / 16_777_216.0);
            return if sign != 0 { -v } else { v };
        }
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Encodes a row as f16 codes. Pure per element.
pub fn quantize_f16_row(row: &[f32]) -> Vec<u16> {
    row.iter().map(|&x| f32_to_f16_bits(x)).collect()
}

/// The f32 value a stored f16 code scores as.
#[inline]
pub fn dequantize_f16(code: u16) -> f32 {
    f16_bits_to_f32(code)
}

// ---------------------------------------------------------------------------
// int8 quantization
// ---------------------------------------------------------------------------

/// Symmetric per-row int8 quantization: `scale = max|x|/127` (1.0 for an
/// all-zero row so dequantization stays well-defined), codes are
/// `clamp(round(x/scale), −127, 127)`. [`f32::round`] rounds half away
/// from zero — a pure function of the input with no data-dependent tie
/// behavior — and the clamp keeps −128 unused so negation is symmetric.
pub fn quantize_i8_row(row: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max_abs > 0.0 && max_abs.is_finite() { max_abs / 127.0 } else { 1.0 };
    let inv = 1.0 / scale;
    let codes = row.iter().map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8).collect();
    (codes, scale)
}

/// Exact integer sum of squared codes for one row (fits `i32` for any
/// realistic dimension: `127² · dim` overflows only past dim ≈ 133k, and
/// quantized stores cap dim at [`MAX_QUANT_DIM`]).
pub fn sumsq_i8(codes: &[i8]) -> i32 {
    codes.iter().map(|&c| (c as i32) * (c as i32)).sum()
}

/// Largest dimension a quantized store accepts: keeps the exact i32
/// accumulators of the int8 kernels far from overflow (`127²·65536 < 2³⁰`).
pub const MAX_QUANT_DIM: usize = 65_536;

// ---------------------------------------------------------------------------
// fused scan kernels
// ---------------------------------------------------------------------------

/// Accumulator lanes in the f16 kernels; same role (and the same
/// fixed-order reduction) as the matmuls' `DOT_LANES`.
const QDOT_LANES: usize = 16;

/// Fixed-lane dot of an f32 query against one f16-coded row: convert,
/// multiply, accumulate into [`QDOT_LANES`] independent chains, reduce in
/// lane order, then the sequential tail. Pure per (query, row) pair.
#[inline(always)]
fn dot_f16_lanes(q: &[f32], codes: &[u16]) -> f32 {
    debug_assert_eq!(q.len(), codes.len());
    let blocks = q.len() / QDOT_LANES;
    let mut acc = [0.0f32; QDOT_LANES];
    for c in 0..blocks {
        let qc = &q[c * QDOT_LANES..(c + 1) * QDOT_LANES];
        let rc = &codes[c * QDOT_LANES..(c + 1) * QDOT_LANES];
        for (o, (&x, &h)) in acc.iter_mut().zip(qc.iter().zip(rc)) {
            *o += x * f16_bits_to_f32(h);
        }
    }
    let mut s = 0.0f32;
    for &lane in &acc {
        s += lane;
    }
    for t in blocks * QDOT_LANES..q.len() {
        s += q[t] * f16_bits_to_f32(codes[t]);
    }
    s
}

/// Fixed-lane squared L2 distance of an f32 query to one f16-coded row.
#[inline(always)]
fn l2_f16_lanes(q: &[f32], codes: &[u16]) -> f32 {
    debug_assert_eq!(q.len(), codes.len());
    let blocks = q.len() / QDOT_LANES;
    let mut acc = [0.0f32; QDOT_LANES];
    for c in 0..blocks {
        let qc = &q[c * QDOT_LANES..(c + 1) * QDOT_LANES];
        let rc = &codes[c * QDOT_LANES..(c + 1) * QDOT_LANES];
        for (o, (&x, &h)) in acc.iter_mut().zip(qc.iter().zip(rc)) {
            let d = x - f16_bits_to_f32(h);
            *o += d * d;
        }
    }
    let mut s = 0.0f32;
    for &lane in &acc {
        s += lane;
    }
    for t in blocks * QDOT_LANES..q.len() {
        let d = q[t] - f16_bits_to_f32(codes[t]);
        s += d * d;
    }
    s
}

multiversioned! {
/// Widening-multiply-add int8 scan over one chunk of rows: `out[r]` is the
/// exact i32 dot of the query codes against row `r` of the chunk. Integer
/// accumulation is associative, so the result is identical however the
/// compiler vectorizes it.
fn i8_dot_block / i8_dot_block_inner(codes: &[i8], q: &[i8], dim: usize, out: &mut [i32]) {
    for (r, o) in out.iter_mut().enumerate() {
        let row = &codes[r * dim..(r + 1) * dim];
        let mut acc = 0i32;
        for (&a, &b) in q.iter().zip(row) {
            acc += (a as i32) * (b as i32);
        }
        *o = acc;
    }
}
}

multiversioned! {
/// Convert-and-accumulate f16 dot scan over one chunk of rows: `out[r]` is
/// the [`dot_f16_lanes`] product of the query against row `r`.
fn f16_dot_block / f16_dot_block_inner(codes: &[u16], q: &[f32], dim: usize, out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot_f16_lanes(q, &codes[r * dim..(r + 1) * dim]);
    }
}
}

multiversioned! {
/// f16 squared-L2 scan over one chunk of rows.
fn f16_l2_block / f16_l2_block_inner(codes: &[u16], q: &[f32], dim: usize, out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = l2_f16_lanes(q, &codes[r * dim..(r + 1) * dim]);
    }
}
}

/// Dispatched int8 dot over one contiguous chunk of rows on the calling
/// thread (no pool) — the per-candidate entry point for graph traversal,
/// where each call scores a handful of rows at most.
#[inline]
pub fn i8_dot_rows(codes: &[i8], q: &[i8], dim: usize, out: &mut [i32]) {
    i8_dot_block(codes, q, dim, out);
}

/// Dispatched f16 dot over one contiguous chunk of rows (no pool).
#[inline]
pub fn f16_dot_rows(codes: &[u16], q: &[f32], dim: usize, out: &mut [f32]) {
    f16_dot_block(codes, q, dim, out);
}

/// Dispatched f16 squared-L2 over one contiguous chunk of rows (no pool).
#[inline]
pub fn f16_l2_rows(codes: &[u16], q: &[f32], dim: usize, out: &mut [f32]) {
    f16_l2_block(codes, q, dim, out);
}

/// Rows per parallel chunk in the scan entry points: big enough to
/// amortize dispatch, small enough to load-balance a skewed pool.
const SCAN_CHUNK: usize = 512;

/// Scans every row of an int8 code table against a quantized query,
/// writing exact i32 dots. Parallel on the workspace pool over disjoint
/// row chunks; each dot is a pure integer function of its (query, row)
/// pair, so the output is bit-identical at any thread count and ISA level.
pub fn i8_dot_scan(codes: &[i8], q: &[i8], dim: usize, out: &mut [i32]) {
    assert_eq!(q.len(), dim, "i8_dot_scan query dimension mismatch");
    assert_eq!(codes.len(), out.len() * dim, "i8_dot_scan table shape mismatch");
    pool::parallel_chunks(out, SCAN_CHUNK, |start, slab| {
        i8_dot_block(&codes[start * dim..(start + slab.len()) * dim], q, dim, slab);
    });
}

/// Scans every row of an f16 code table against an f32 query: dots for
/// dot/cosine ranking, or squared L2 distances with `l2 = true`.
pub fn f16_scan(codes: &[u16], q: &[f32], dim: usize, l2: bool, out: &mut [f32]) {
    assert_eq!(q.len(), dim, "f16_scan query dimension mismatch");
    assert_eq!(codes.len(), out.len() * dim, "f16_scan table shape mismatch");
    pool::parallel_chunks(out, SCAN_CHUNK, |start, slab| {
        let chunk = &codes[start * dim..(start + slab.len()) * dim];
        if l2 {
            f16_l2_block(chunk, q, dim, slab);
        } else {
            f16_dot_block(chunk, q, dim, slab);
        }
    });
}

/// Scalar reference for the int8 dot — the exact value every dispatch
/// level must reproduce (used by the ISA-equality tests).
pub fn i8_dot_reference(q: &[i8], row: &[i8]) -> i32 {
    q.iter().zip(row).map(|(&a, &b)| (a as i32) * (b as i32)).sum()
}

/// Scalar reference for the f16 dot: the same fixed-lane algorithm as the
/// multiversioned kernel, compiled at the baseline ISA only.
pub fn f16_dot_reference(q: &[f32], codes: &[u16]) -> f32 {
    dot_f16_lanes(q, codes)
}

/// Scalar reference for the f16 squared-L2.
pub fn f16_l2_reference(q: &[f32], codes: &[u16]) -> f32 {
    l2_f16_lanes(q, codes)
}

// ---------------------------------------------------------------------------
// score combination
// ---------------------------------------------------------------------------

/// Combines an exact int8 dot with per-side scales and code sums-of-squares
/// into a similarity score (greater = more similar, matching
/// [`Scorer::score`] orientation). A fixed sequence of scalar f32
/// operations — deterministic everywhere the integer inputs are.
#[inline]
pub fn combine_i8(
    scorer: Scorer,
    idot: i32,
    qscale: f32,
    qsumsq: i32,
    rscale: f32,
    rsumsq: i32,
) -> f32 {
    let d = idot as f32;
    match scorer {
        Scorer::Dot => d * (qscale * rscale),
        Scorer::Cosine => {
            let qn = qscale * (qsumsq as f32).sqrt();
            let rn = rscale * (rsumsq as f32).sqrt();
            (d * (qscale * rscale)) / (qn * rn + 1e-12)
        }
        Scorer::Euclidean => {
            let qs = qscale * qscale * (qsumsq as f32);
            let rs = rscale * rscale * (rsumsq as f32);
            -(qs - 2.0 * (qscale * rscale) * d + rs)
        }
    }
}

/// Combines an f16 dot (or squared L2 for Euclidean) with precomputed
/// per-side norms into a similarity score.
#[inline]
pub fn combine_f16(scorer: Scorer, dot_or_l2: f32, qnorm: f32, rnorm: f32) -> f32 {
    match scorer {
        Scorer::Dot => dot_or_l2,
        Scorer::Cosine => dot_or_l2 / (qnorm * rnorm + 1e-12),
        Scorer::Euclidean => -dot_or_l2,
    }
}

/// Strict left-to-right L2 norm of an f16-coded row's dequantized values —
/// the per-row constant the cosine route divides by. Matches
/// [`crate::sim::norm`]'s sequential order on the dequantized slice.
pub fn f16_row_norm(codes: &[u16]) -> f32 {
    codes
        .iter()
        .map(|&h| {
            let v = f16_bits_to_f32(h);
            v * v
        })
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (LCG) — no RNG dep in this crate.
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn precision_parse_roundtrips() {
        for p in Precision::ALL {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("i8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp64"), None);
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn f16_roundtrip_is_exact_for_every_code() {
        // Every finite f16 value converts to f32 and back to the same bits.
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
                continue;
            }
            assert_eq!(f32_to_f16_bits(x), h, "code {h:#06x} (value {x}) did not roundtrip");
        }
    }

    #[test]
    fn f16_conversion_matches_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // rounds to inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001); // min subnormal
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000); // underflow
        assert_eq!(f16_bits_to_f32(0x3555), 0.333_251_95); // ≈ 1/3
    }

    #[test]
    fn f16_rounding_is_nearest_even() {
        // 1 + 2⁻¹¹ sits exactly between 1.0 and the next f16; even wins.
        let halfway = f32::from_bits(0x3f80_1000);
        assert_eq!(f32_to_f16_bits(halfway), 0x3c00);
        // Just above the midpoint rounds up.
        let above = f32::from_bits(0x3f80_1001);
        assert_eq!(f32_to_f16_bits(above), 0x3c01);
        // Odd mantissa at the midpoint rounds up to even.
        let odd_mid = f32::from_bits(0x3f80_3000); // 1 + 3·2⁻¹²
        assert_eq!(f32_to_f16_bits(odd_mid), 0x3c02);
    }

    #[test]
    fn f16_relative_error_is_bounded() {
        for (i, &x) in fill(9, 4096).iter().enumerate() {
            let r = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!((r - x).abs() <= x.abs() * (1.0 / 2048.0) + 1e-24, "element {i}: {x} → {r}");
        }
    }

    #[test]
    fn i8_quantization_bounds_and_determinism() {
        let row = fill(3, 257);
        let (codes, scale) = quantize_i8_row(&row);
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!((scale - max_abs / 127.0).abs() < 1e-12);
        for (i, (&c, &x)) in codes.iter().zip(&row).enumerate() {
            assert!((-127..=127).contains(&(c as i32)), "code {c} out of range");
            let deq = c as f32 * scale;
            assert!((deq - x).abs() <= scale * 0.5 + 1e-7, "element {i}: {x} vs {deq}");
        }
        // Pure function: identical on every call.
        assert_eq!(quantize_i8_row(&row), (codes, scale));
        // All-zero rows take scale 1.0 and all-zero codes.
        let (z, s) = quantize_i8_row(&[0.0; 16]);
        assert_eq!(s, 1.0);
        assert!(z.iter().all(|&c| c == 0));
    }

    #[test]
    fn i8_scan_matches_reference_and_is_chunk_invariant() {
        let dim = 48;
        let n = 700; // crosses a SCAN_CHUNK boundary
        let rows = fill(1, n * dim);
        let q = fill(2, dim);
        let mut codes = Vec::with_capacity(n * dim);
        for r in 0..n {
            codes.extend(quantize_i8_row(&rows[r * dim..(r + 1) * dim]).0);
        }
        let (qc, _) = quantize_i8_row(&q);
        let mut out = vec![0i32; n];
        i8_dot_scan(&codes, &qc, dim, &mut out);
        for r in 0..n {
            assert_eq!(out[r], i8_dot_reference(&qc, &codes[r * dim..(r + 1) * dim]), "row {r}");
        }
    }

    #[test]
    fn f16_scan_matches_reference_bitwise() {
        let dim = 40; // exercises both the lane blocks and the tail
        let n = 600;
        let rows = fill(5, n * dim);
        let q = fill(6, dim);
        let codes: Vec<u16> = rows.iter().map(|&x| f32_to_f16_bits(x)).collect();
        let mut dots = vec![0.0f32; n];
        let mut l2s = vec![0.0f32; n];
        f16_scan(&codes, &q, dim, false, &mut dots);
        f16_scan(&codes, &q, dim, true, &mut l2s);
        for r in 0..n {
            let row = &codes[r * dim..(r + 1) * dim];
            assert_eq!(dots[r].to_bits(), f16_dot_reference(&q, row).to_bits(), "dot row {r}");
            assert_eq!(l2s[r].to_bits(), f16_l2_reference(&q, row).to_bits(), "l2 row {r}");
        }
    }

    #[test]
    fn scans_are_thread_count_invariant() {
        let dim = 32;
        let n = 1500;
        let rows = fill(11, n * dim);
        let q = fill(12, dim);
        let codes_f16: Vec<u16> = rows.iter().map(|&x| f32_to_f16_bits(x)).collect();
        let mut codes_i8 = Vec::with_capacity(n * dim);
        for r in 0..n {
            codes_i8.extend(quantize_i8_row(&rows[r * dim..(r + 1) * dim]).0);
        }
        let (qc, _) = quantize_i8_row(&q);
        let default_threads = pool::threads();
        let mut reference: Option<(Vec<i32>, Vec<f32>)> = None;
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let mut di = vec![0i32; n];
            let mut df = vec![0.0f32; n];
            i8_dot_scan(&codes_i8, &qc, dim, &mut di);
            f16_scan(&codes_f16, &q, dim, false, &mut df);
            match &reference {
                None => reference = Some((di, df)),
                Some((ri, rf)) => {
                    assert_eq!(ri, &di, "int8 scan diverged at {threads} threads");
                    assert_eq!(
                        rf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        df.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "f16 scan diverged at {threads} threads"
                    );
                }
            }
        }
        pool::set_threads(default_threads);
    }

    #[test]
    fn combine_i8_approximates_f32_scores() {
        let dim = 64;
        let a = fill(21, dim);
        let b = fill(22, dim);
        let (ac, asc) = quantize_i8_row(&a);
        let (bc, bsc) = quantize_i8_row(&b);
        let idot = i8_dot_reference(&ac, &bc);
        for scorer in Scorer::ALL {
            let approx = combine_i8(scorer, idot, asc, sumsq_i8(&ac), bsc, sumsq_i8(&bc));
            let exact = scorer.score(&a, &b);
            assert!(
                (approx - exact).abs() <= 0.02 * (1.0 + exact.abs()),
                "{}: {approx} vs {exact}",
                scorer.name()
            );
        }
    }

    #[test]
    fn combine_f16_approximates_f32_scores() {
        let dim = 64;
        let a = fill(31, dim);
        let b = fill(32, dim);
        let bq = quantize_f16_row(&b);
        let aq: Vec<f32> = a.iter().map(|&x| f16_bits_to_f32(f32_to_f16_bits(x))).collect();
        let qn = crate::sim::norm(&aq);
        let rn = f16_row_norm(&bq);
        for scorer in Scorer::ALL {
            let raw = match scorer {
                Scorer::Euclidean => f16_l2_reference(&aq, &bq),
                _ => f16_dot_reference(&aq, &bq),
            };
            let approx = combine_f16(scorer, raw, qn, rn);
            let exact = scorer.score(&a, &b);
            assert!(
                (approx - exact).abs() <= 0.01 * (1.0 + exact.abs()),
                "{}: {approx} vs {exact}",
                scorer.name()
            );
        }
    }

    #[test]
    fn zero_rows_score_zero_under_cosine() {
        let (zc, zs) = quantize_i8_row(&[0.0; 8]);
        let (qc, qs) = quantize_i8_row(&fill(41, 8));
        let d = i8_dot_reference(&qc, &zc);
        assert_eq!(combine_i8(Scorer::Cosine, d, qs, sumsq_i8(&qc), zs, sumsq_i8(&zc)), 0.0);
        let zf = quantize_f16_row(&[0.0; 8]);
        assert_eq!(combine_f16(Scorer::Cosine, 0.0, 1.0, f16_row_norm(&zf)), 0.0);
    }
}
