//! Neural-network layers built on [`Params`] + [`Tape`]: a dense linear
//! layer and the 2-hidden-layer ReLU MLP the paper uses as its attribute
//! decoder (§3.3.3).

use rand::Rng;

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::optim::{ParamId, Params};
use crate::tape::{Tape, Var};

/// Activation functions supported by [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (the paper's decoder activation).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no activation).
    Linear,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Linear => x,
        }
    }
}

/// A dense layer `y = x W + b` with Xavier-initialized `W ∈ R^{in×out}`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers the layer's parameters in `params`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = params.add(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = params.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter handle.
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Forward pass. `vars` is the output of [`Params::attach`] in the same
    /// parameter order used at construction.
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        let h = tape.matmul(x, vars[self.w.index()]);
        tape.add_row(h, vars[self.b.index()])
    }
}

/// A multi-layer perceptron. The paper's attribute decoder is
/// `Mlp::new(params, "dec", &[d', h1, h2, d], Activation::Relu, rng)` —
/// two hidden ReLU layers, linear output.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (`dims.len() - 1` layers).
    /// The activation is applied after every layer except the last.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], mut x: Var) -> Var {
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, vars, x);
            if i + 1 < self.layers.len() {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "l", 4, 3, &mut rng);
        assert_eq!(params.get(lin.weight()).shape(), (4, 3));
        assert_eq!(params.get(lin.bias()).shape(), (1, 3));
        let mut t = Tape::new();
        let vars = params.attach(&mut t);
        let x = t.constant(Matrix::zeros(5, 4));
        let y = lin.forward(&mut t, &vars, x);
        assert_eq!(t.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR is not linearly separable — passing this requires working
        // hidden-layer gradients end to end.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let y = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            let mut t = Tape::new();
            let vars = params.attach(&mut t);
            let xin = t.constant(x.clone());
            let logits = mlp.forward(&mut t, &vars, xin);
            let probs = t.sigmoid(logits);
            let target = t.constant(y.clone());
            let loss = t.mse(probs, target);
            t.backward(loss);
            last = t.value(loss).item();
            let grads = params.collect_grads(&t, &vars);
            opt.step(&mut params, &grads);
        }
        assert!(last < 0.02, "XOR loss stayed at {last}");
    }

    #[test]
    fn activations_apply() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_rows(&[vec![-1.0, 2.0]]));
        let r = Activation::Relu.apply(&mut t, x);
        assert_eq!(t.value(r).as_slice(), &[0.0, 2.0]);
        let l = Activation::Linear.apply(&mut t, x);
        assert_eq!(l, x);
    }

    #[test]
    fn mlp_layer_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", &[8, 16, 16, 4], Activation::Relu, &mut rng);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(params.len(), 6); // w + b per layer
    }
}
