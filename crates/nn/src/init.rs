//! Parameter initialization. The paper initializes model parameters and node
//! embeddings with Xavier (Glorot) uniform initialization [Glorot & Bengio
//! 2010], which we reproduce here.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier-uniform matrix: entries drawn from
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))` with
/// `fan_in = rows`, `fan_out = cols`.
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform matrix in `[lo, hi)`.
pub fn uniform<R: Rng>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard-normal matrix scaled by `std`.
pub fn normal<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Matrix {
    // Box–Muller; two values per draw.
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_bound_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
        // Not degenerate: plenty of distinct values.
        let distinct: std::collections::HashSet<u32> =
            m.as_slice().iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 1000);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = normal(100, 100, 2.0, &mut rng);
        let mean = m.sum() / m.len() as f32;
        let var =
            m.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = xavier_uniform(8, 8, &mut ChaCha8Rng::seed_from_u64(42));
        let b = xavier_uniform(8, 8, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
