//! Sparse CSR matrices used as *constant* operands in the autograd graph
//! (e.g. the normalized adjacency `Â` of GCN-style encoders).
//!
//! The dense products are parallelized over output-row ranges via
//! [`crate::pool`]; every output element accumulates its contributions in
//! ascending input-row order regardless of the partition, so results are
//! bit-identical for any thread count.

use crate::matrix::{multiversioned, Matrix};
use crate::pool;
use std::ops::Range;

/// A sparse matrix in CSR format with `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from CSR parts.
    ///
    /// # Panics
    /// Panics on inconsistent parts or out-of-range column indices.
    pub fn from_csr(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "values length");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr total");
        assert!(indices.iter().all(|&j| (j as usize) < cols), "column index out of range");
        Self { rows, cols, indptr, indices, values }
    }

    /// Builds from a list of `(row, col, value)` triplets (duplicates summed).
    ///
    /// The sort is *stable* so duplicates of the same `(row, col)` are summed
    /// in insertion order — a builder that merges duplicates on the fly (e.g.
    /// `coane-core`'s context-row cache) reproduces the exact same f32 sums.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, f32)>) -> Self {
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            assert!(r < rows && c < cols, "triplet out of range");
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let indices = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Self { rows, cols, indptr, indices, values }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row view `(indices, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Concatenates the given row ranges, in order, into a new matrix with
    /// the same column count. Rows are copied verbatim (two `memcpy`s per
    /// contiguous range, exact-nnz allocation, no sorting), so the result is
    /// bit-identical to rebuilding those rows from triplets.
    ///
    /// # Panics
    /// Panics if a range is decreasing or ends past `self.rows`.
    pub fn select_row_ranges(&self, ranges: &[Range<usize>]) -> SparseMatrix {
        let mut total_rows = 0usize;
        let mut total_nnz = 0usize;
        for r in ranges {
            assert!(r.start <= r.end && r.end <= self.rows, "row range out of bounds");
            total_rows += r.end - r.start;
            total_nnz += self.indptr[r.end] - self.indptr[r.start];
        }
        let mut indptr = Vec::with_capacity(total_rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(total_nnz);
        let mut values = Vec::with_capacity(total_nnz);
        for r in ranges {
            let (s, e) = (self.indptr[r.start], self.indptr[r.end]);
            let base = indices.len();
            indices.extend_from_slice(&self.indices[s..e]);
            values.extend_from_slice(&self.values[s..e]);
            for row in r.clone() {
                indptr.push(base + (self.indptr[row + 1] - s));
            }
        }
        Self { rows: total_rows, cols: self.cols, indptr, indices, values }
    }

    /// Dense product `self · x`, parallel over output-row chunks (each CSR
    /// row writes one disjoint output row, so the partition cannot change
    /// the result).
    pub fn matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let n = x.cols();
        let mut out = Matrix::zeros(self.rows, n);
        if self.rows == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * self.nnz() * n);
        pool::parallel_chunks_with(out.as_mut_slice(), pool::ROW_CHUNK * n, threads, {
            |start, chunk| {
                spmm_block(
                    &self.indptr,
                    &self.indices,
                    &self.values,
                    x.as_slice(),
                    n,
                    start / n,
                    chunk,
                );
            }
        });
        out
    }

    /// Dense product with the transpose: `selfᵀ · x` (used in the SpMM
    /// backward pass). Each worker owns a contiguous range of *output* rows
    /// and scans the whole input, accumulating only entries whose column
    /// lands in its range — so contributions arrive in ascending input-row
    /// order for every output element and the result is bit-identical to a
    /// sequential scatter for any thread count.
    pub fn transpose_matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.rows, x.rows(), "spmm_t shape mismatch");
        let n = x.cols();
        let mut out = Matrix::zeros(self.cols, n);
        if self.cols == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * self.nnz() * n);
        // One chunk per worker (not ROW_CHUNK-sized) because every chunk
        // re-scans the full input: more chunks would multiply the scan cost,
        // and the partition has no effect on the bits.
        let rows_per = self.cols.div_ceil(threads).max(1);
        pool::parallel_chunks_with(out.as_mut_slice(), rows_per * n, threads, {
            |start, chunk| {
                spmm_t_block(
                    &self.indptr,
                    &self.indices,
                    &self.values,
                    x.as_slice(),
                    n,
                    self.rows,
                    start / n,
                    chunk,
                );
            }
        });
        out
    }

    /// Raw CSR row pointers (length `rows + 1`). Exposes per-row nnz so
    /// callers can size batch allocations exactly.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Densifies (test helper; O(rows·cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (idx, val) = self.row(i);
            for (&j, &v) in idx.iter().zip(val) {
                out.set(i, j as usize, v);
            }
        }
        out
    }
}

multiversioned! {
/// One chunk of `A · X` output rows (`A` in CSR parts, `X` row-major of
/// width `n`): each output row accumulates its row's nnz contributions in
/// ascending column-slot order, exactly like the naive loop, so runtime ISA
/// dispatch cannot change the bits (no FP contraction — mul and add stay
/// separate instructions at every width).
fn spmm_block / spmm_block_inner(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
    n: usize,
    i0: usize,
    chunk: &mut [f32],
) {
    for (ii, orow) in chunk.chunks_mut(n).enumerate() {
        let (s, e) = (indptr[i0 + ii], indptr[i0 + ii + 1]);
        for (&j, &a) in indices[s..e].iter().zip(&values[s..e]) {
            let xrow = &x[j as usize * n..(j as usize + 1) * n];
            for (o, &b) in orow.iter_mut().zip(xrow) {
                *o += a * b;
            }
        }
    }
}
}

multiversioned! {
/// One output-row range of `Aᵀ · X`: scans every input row and scatters the
/// entries whose column lands in `[lo_row, lo_row + chunk rows)`. Ascending
/// input-row accumulation order per output element, independent of the
/// partition and of the dispatched ISA.
fn spmm_t_block / spmm_t_block_inner(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
    n: usize,
    in_rows: usize,
    lo_row: usize,
    chunk: &mut [f32],
) {
    let lo = lo_row as u32;
    let hi = lo + (chunk.len() / n) as u32;
    for i in 0..in_rows {
        let (s, e) = (indptr[i], indptr[i + 1]);
        let xrow = &x[i * n..(i + 1) * n];
        for (&j, &a) in indices[s..e].iter().zip(&values[s..e]) {
            if j < lo || j >= hi {
                continue;
            }
            let o0 = (j - lo) as usize * n;
            let orow = &mut chunk[o0..o0 + n];
            for (o, &b) in orow.iter_mut().zip(xrow) {
                *o += a * b;
            }
        }
    }
}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [0, 3, 0]]
        SparseMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
    }

    #[test]
    fn triplets_to_csr() {
        let m = example();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[1u32][..], &[3.0f32][..]));
    }

    #[test]
    fn duplicate_triplets_summed() {
        let m = SparseMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.row(0), (&[1u32][..], &[3.5f32][..]));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = example();
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.0], vec![0.5, -1.0]]);
        let y = m.matmul_dense(&x);
        let y2 = m.to_dense().matmul(&x);
        assert_eq!(y, y2);
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = example();
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = m.transpose_matmul_dense(&x);
        let y2 = m.to_dense().transpose().matmul(&x);
        assert_eq!(y, y2);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn rejects_bad_column() {
        SparseMatrix::from_csr(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn select_row_ranges_concatenates_verbatim() {
        let m = example();
        let s = m.select_row_ranges(&[0..2, 1..3, 2..2]);
        assert_eq!(s.shape(), (4, 3));
        // Selected rows m0,m1,m1,m2 carry 2, 0, 0, 1 entries respectively.
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.row(0), m.row(0));
        assert_eq!(s.row(1), m.row(1));
        assert_eq!(s.row(2), m.row(1));
        assert_eq!(s.row(3), m.row(2));
    }

    #[test]
    fn select_row_ranges_empty_selection() {
        let m = example();
        let s = m.select_row_ranges(&[]);
        assert_eq!(s.shape(), (0, 3));
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn select_row_ranges_rejects_overrun() {
        example().select_row_ranges(&[0..1, 1..4]);
    }

    #[test]
    fn duplicate_triplets_summed_in_insertion_order() {
        // f32 addition is non-associative; the stable sort pins the sum to
        // push order, which on-the-fly merging builders replicate.
        let vals = [1.0e-8f32, 1.0, -1.0];
        let t: Vec<_> = vals.iter().map(|&v| (0usize, 0usize, v)).collect();
        let m = SparseMatrix::from_triplets(1, 1, t);
        assert_eq!(m.row(0).1, &[((1.0e-8f32 + 1.0) + -1.0)][..]);
    }
}
