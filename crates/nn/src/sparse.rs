//! Sparse CSR matrices used as *constant* operands in the autograd graph
//! (e.g. the normalized adjacency `Â` of GCN-style encoders).
//!
//! The dense products are parallelized over output-row ranges via
//! [`crate::pool`]; every output element accumulates its contributions in
//! ascending input-row order regardless of the partition, so results are
//! bit-identical for any thread count.

use crate::matrix::Matrix;
use crate::pool;

/// A sparse matrix in CSR format with `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from CSR parts.
    ///
    /// # Panics
    /// Panics on inconsistent parts or out-of-range column indices.
    pub fn from_csr(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "values length");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr total");
        assert!(indices.iter().all(|&j| (j as usize) < cols), "column index out of range");
        Self { rows, cols, indptr, indices, values }
    }

    /// Builds from a list of `(row, col, value)` triplets (duplicates summed).
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, f32)>) -> Self {
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            assert!(r < rows && c < cols, "triplet out of range");
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let indices = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Self { rows, cols, indptr, indices, values }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row view `(indices, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Dense product `self · x`, parallel over output-row chunks (each CSR
    /// row writes one disjoint output row, so the partition cannot change
    /// the result).
    pub fn matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let n = x.cols();
        let mut out = Matrix::zeros(self.rows, n);
        if self.rows == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * self.nnz() * n);
        pool::parallel_chunks_with(out.as_mut_slice(), pool::ROW_CHUNK * n, threads, {
            |start, chunk| {
                let i0 = start / n;
                for (ii, orow) in chunk.chunks_mut(n).enumerate() {
                    let (idx, val) = self.row(i0 + ii);
                    for (&j, &a) in idx.iter().zip(val) {
                        let xrow = x.row(j as usize);
                        for (o, &b) in orow.iter_mut().zip(xrow) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        out
    }

    /// Dense product with the transpose: `selfᵀ · x` (used in the SpMM
    /// backward pass). Each worker owns a contiguous range of *output* rows
    /// and scans the whole input, accumulating only entries whose column
    /// lands in its range — so contributions arrive in ascending input-row
    /// order for every output element and the result is bit-identical to a
    /// sequential scatter for any thread count.
    pub fn transpose_matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.rows, x.rows(), "spmm_t shape mismatch");
        let n = x.cols();
        let mut out = Matrix::zeros(self.cols, n);
        if self.cols == 0 || n == 0 {
            return out;
        }
        let threads = pool::threads_for(2 * self.nnz() * n);
        // One chunk per worker (not ROW_CHUNK-sized) because every chunk
        // re-scans the full input: more chunks would multiply the scan cost,
        // and the partition has no effect on the bits.
        let rows_per = self.cols.div_ceil(threads).max(1);
        pool::parallel_chunks_with(out.as_mut_slice(), rows_per * n, threads, {
            |start, chunk| {
                let lo = (start / n) as u32;
                let hi = lo + (chunk.len() / n) as u32;
                for i in 0..self.rows {
                    let (idx, val) = self.row(i);
                    let xrow = x.row(i);
                    for (&j, &a) in idx.iter().zip(val) {
                        if j < lo || j >= hi {
                            continue;
                        }
                        let o0 = (j - lo) as usize * n;
                        let orow = &mut chunk[o0..o0 + n];
                        for (o, &b) in orow.iter_mut().zip(xrow) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        out
    }

    /// Densifies (test helper; O(rows·cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (idx, val) = self.row(i);
            for (&j, &v) in idx.iter().zip(val) {
                out.set(i, j as usize, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [0, 3, 0]]
        SparseMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
    }

    #[test]
    fn triplets_to_csr() {
        let m = example();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[1u32][..], &[3.0f32][..]));
    }

    #[test]
    fn duplicate_triplets_summed() {
        let m = SparseMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.row(0), (&[1u32][..], &[3.5f32][..]));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = example();
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.0], vec![0.5, -1.0]]);
        let y = m.matmul_dense(&x);
        let y2 = m.to_dense().matmul(&x);
        assert_eq!(y, y2);
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = example();
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = m.transpose_matmul_dense(&x);
        let y2 = m.to_dense().transpose().matmul(&x);
        assert_eq!(y, y2);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn rejects_bad_column() {
        SparseMatrix::from_csr(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
