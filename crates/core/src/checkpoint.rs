//! Crash-safe training checkpoints.
//!
//! [`crate::Coane::fit_resumable`] periodically snapshots the full training
//! state — model parameters, Adam moments, the epoch counter, accumulated
//! statistics and the exact ChaCha8 RNG stream position — so an interrupted
//! run restarted on the same checkpoint directory continues where it
//! stopped and, thanks to the workspace's bit-identical determinism
//! contract, finishes with *exactly* the embeddings of an uninterrupted run.
//!
//! ## File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"COANECKP"
//! 8       4     format version (u32 LE)
//! 12      8     payload length (u64 LE)
//! 20      4     CRC32 (IEEE) of the payload bytes (u32 LE)
//! 24      ...   payload
//! ```
//!
//! The payload is a flat little-endian encoding of [`TrainCheckpoint`]
//! (see `encode_payload`); matrices are stored as `rows, cols, f32 data`,
//! which round-trips every parameter bit-exactly (no decimal formatting).
//! Writes are atomic: the bytes go to a `.tmp` sibling which is fsynced and
//! then renamed over the final name, so a crash mid-write can never leave a
//! half-written file under a checkpoint name. Corruption (truncation, bit
//! flips) is detected by the length and CRC32 checks, and
//! [`latest_valid`] silently falls back to the newest checkpoint that still
//! verifies.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use coane_error::{CoaneError, CoaneResult};
use coane_nn::Matrix;
use rand_chacha::ChaCha8State;

use crate::config::{CoaneConfig, ContextSource, EncoderKind, NegativeLossKind, PositiveLossKind};

/// Magic bytes identifying a CoANE checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"COANECKP";
/// On-disk checkpoint format version this build reads and writes.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;
/// Sanity bound on collection lengths decoded from untrusted files.
const MAX_DECODE_ITEMS: u64 = 1 << 24;

/// Where and how often [`crate::Coane::fit_resumable`] checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint files (created if missing).
    pub dir: PathBuf,
    /// Snapshot every this many completed epochs (>= 1). The final epoch is
    /// always checkpointed regardless of alignment.
    pub every_epochs: usize,
    /// How many of the newest checkpoints to retain (>= 1). Keeping at
    /// least two means a corrupted latest file still leaves a valid
    /// predecessor to fall back to.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` after every epoch, retaining the newest two.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), every_epochs: 1, keep: 2 }
    }

    pub(crate) fn validate(&self) -> CoaneResult<()> {
        if self.every_epochs < 1 {
            return Err(CoaneError::config("checkpoint every_epochs must be >= 1"));
        }
        if self.keep < 1 {
            return Err(CoaneError::config("checkpoint keep must be >= 1"));
        }
        Ok(())
    }
}

/// The complete resumable training state at an epoch boundary.
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// Fingerprint of every result-affecting [`CoaneConfig`] field; a
    /// resume with a different configuration is rejected rather than
    /// silently producing embeddings that match neither run.
    pub fingerprint: u64,
    /// Number of completed epochs (training resumes at this epoch index).
    pub epoch: u64,
    /// Learning rate in effect (may differ from the configured rate after
    /// non-finite-loss recovery halved it).
    pub lr: f32,
    /// Adam step counter.
    pub adam_t: u64,
    /// Exact ChaCha8 stream position of the training RNG.
    pub rng: ChaCha8State,
    /// Non-finite-loss recoveries performed so far.
    pub recoveries: u64,
    /// Per-epoch losses accumulated so far.
    pub epoch_losses: Vec<f32>,
    /// Per-epoch wall-clock seconds accumulated so far.
    pub epoch_seconds: Vec<f64>,
    /// Named model parameters, in [`coane_nn::Params`] insertion order.
    pub params: Vec<(String, Matrix)>,
    /// Adam first moments, parallel to `params` (empty before step 1).
    pub adam_m: Vec<Matrix>,
    /// Adam second moments, parallel to `params` (empty before step 1).
    pub adam_v: Vec<Matrix>,
}

/// Fingerprint of every configuration field that affects training results.
/// Thread count, prefetch depth, inference chunk size, and
/// checkpoint/recovery knobs are deliberately excluded: the determinism
/// contract makes them pure throughput/robustness knobs, so a run
/// checkpointed at 1 thread without prefetch may resume at 4 with a deep
/// pipeline (and vice versa).
pub fn config_fingerprint(cfg: &CoaneConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(cfg.embed_dim as u64);
    h.write_u64(cfg.context_size as u64);
    h.write_u64(cfg.walks_per_node as u64);
    h.write_u64(cfg.walk_length as u64);
    h.write_u64(cfg.subsample_t.to_bits());
    h.write_u64(cfg.num_negatives as u64);
    h.write_u64(cfg.neg_strength.to_bits() as u64);
    h.write_u64(cfg.gamma.to_bits() as u64);
    h.write_u64(cfg.learning_rate.to_bits() as u64);
    h.write_u64(cfg.batch_size as u64);
    h.write_u64(match cfg.negative_mode {
        coane_walks::NegativeMode::BatchSampling => 0,
        coane_walks::NegativeMode::PreSampling { pool_factor } => 1 + pool_factor as u64,
    });
    h.write_u64(cfg.decoder_hidden.0 as u64);
    h.write_u64(cfg.decoder_hidden.1 as u64);
    h.write_u64(match cfg.encoder {
        EncoderKind::Convolution => 0,
        EncoderKind::FullyConnected => 1,
    });
    h.write_u64(match cfg.context_source {
        ContextSource::RandomWalk => 0,
        ContextSource::FirstHop => 1,
    });
    h.write_u64(match cfg.ablation.positive {
        PositiveLossKind::GraphLikelihood => 0,
        PositiveLossKind::SkipGram => 1,
        PositiveLossKind::None => 2,
    });
    h.write_u64(match cfg.ablation.negative {
        NegativeLossKind::Contextual => 0,
        NegativeLossKind::Uniform => 1,
        NegativeLossKind::None => 2,
    });
    h.write_u64(cfg.ablation.use_attributes as u64);
    h.write_u64(cfg.ablation.attribute_preservation as u64);
    h.write_u64(cfg.seed);
    h.finish()
}

/// File name of the checkpoint written after `epoch` completed epochs.
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("ckpt-{epoch:08}.coane")
}

fn epoch_of_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".coane")?;
    stem.parse().ok()
}

/// Atomically writes `ckpt` into `dir` (creating it if needed) and prunes
/// old checkpoints down to `keep`. Returns the final file path.
pub fn save_checkpoint(dir: &Path, ckpt: &TrainCheckpoint, keep: usize) -> CoaneResult<PathBuf> {
    fs::create_dir_all(dir).map_err(|e| CoaneError::io(dir, e))?;
    let final_path = dir.join(checkpoint_file_name(ckpt.epoch));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(ckpt.epoch)));

    let payload = encode_payload(ckpt);
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&CHECKPOINT_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    {
        let mut f = fs::File::create(&tmp_path).map_err(|e| CoaneError::io(&tmp_path, e))?;
        f.write_all(&bytes).map_err(|e| CoaneError::io(&tmp_path, e))?;
        // Flush file contents to stable storage before the rename makes the
        // checkpoint visible — otherwise a crash could expose a valid name
        // pointing at unwritten blocks.
        f.sync_all().map_err(|e| CoaneError::io(&tmp_path, e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| CoaneError::io(&final_path, e))?;

    prune(dir, keep)?;
    Ok(final_path)
}

/// Removes all but the newest `keep` checkpoints (by epoch number).
fn prune(dir: &Path, keep: usize) -> CoaneResult<()> {
    let mut epochs: Vec<u64> = list_checkpoint_epochs(dir)?;
    epochs.sort_unstable();
    while epochs.len() > keep.max(1) {
        let victim = dir.join(checkpoint_file_name(epochs.remove(0)));
        fs::remove_file(&victim).map_err(|e| CoaneError::io(&victim, e))?;
    }
    Ok(())
}

/// Epoch numbers of every file in `dir` that *looks like* a checkpoint
/// (named `ckpt-NNNNNNNN.coane`), unsorted and unverified. An absent
/// directory yields an empty list.
pub fn list_checkpoint_epochs(dir: &Path) -> CoaneResult<Vec<u64>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CoaneError::io(dir, e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CoaneError::io(dir, e))?;
        if let Some(epoch) = entry.file_name().to_str().and_then(epoch_of_file_name) {
            out.push(epoch);
        }
    }
    Ok(out)
}

/// Loads and fully verifies one checkpoint file: magic, format version,
/// payload length, CRC32, and structural decode.
pub fn load_checkpoint(path: &Path) -> CoaneResult<TrainCheckpoint> {
    let bytes = fs::read(path).map_err(|e| CoaneError::io(path, e))?;
    if bytes.len() < 24 {
        return Err(CoaneError::checkpoint(path, "file shorter than the 24-byte header"));
    }
    if &bytes[0..8] != CHECKPOINT_MAGIC {
        return Err(CoaneError::checkpoint(path, "bad magic (not a CoANE checkpoint)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CHECKPOINT_FORMAT_VERSION {
        return Err(CoaneError::checkpoint(
            path,
            format!(
                "unsupported format version {version} (this build reads \
                 {CHECKPOINT_FORMAT_VERSION})"
            ),
        ));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload.len() != payload_len {
        return Err(CoaneError::checkpoint(
            path,
            format!(
                "truncated: header promises {payload_len} payload bytes, file has {}",
                payload.len()
            ),
        ));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(CoaneError::checkpoint(
            path,
            format!("CRC32 mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"),
        ));
    }
    decode_payload(payload).map_err(|msg| CoaneError::checkpoint(path, msg))
}

/// Finds the newest checkpoint in `dir` that passes full verification,
/// skipping corrupt or truncated files in favor of older valid ones.
/// Returns `Ok(None)` when the directory is absent or holds no valid
/// checkpoint at all.
pub fn latest_valid(dir: &Path) -> CoaneResult<Option<(PathBuf, TrainCheckpoint)>> {
    let mut epochs = list_checkpoint_epochs(dir)?;
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    for epoch in epochs {
        let path = dir.join(checkpoint_file_name(epoch));
        if let Ok(ckpt) = load_checkpoint(&path) {
            return Ok(Some((path, ckpt)));
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &x in m.as_slice() {
            self.f32(x);
        }
    }
}

fn encode_payload(c: &TrainCheckpoint) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u64(c.fingerprint);
    e.u64(c.epoch);
    e.f32(c.lr);
    e.u64(c.adam_t);
    for k in c.rng.key {
        e.u32(k);
    }
    e.u64(c.rng.counter);
    e.u32(c.rng.idx);
    e.u64(c.recoveries);
    e.u64(c.epoch_losses.len() as u64);
    for &l in &c.epoch_losses {
        e.f32(l);
    }
    e.u64(c.epoch_seconds.len() as u64);
    for &s in &c.epoch_seconds {
        e.f64(s);
    }
    e.u64(c.params.len() as u64);
    for (name, m) in &c.params {
        e.str(name);
        e.matrix(m);
    }
    e.u64(c.adam_m.len() as u64);
    for m in &c.adam_m {
        e.matrix(m);
    }
    e.u64(c.adam_v.len() as u64);
    for m in &c.adam_v {
        e.matrix(m);
    }
    e.0
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn count(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u64()?;
        if n > MAX_DECODE_ITEMS {
            return Err(format!("implausible {what} count {n}"));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.count("string length")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }
    fn matrix(&mut self) -> Result<Matrix, String> {
        let rows = self.count("matrix rows")?;
        let cols = self.count("matrix cols")?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n as u64 <= MAX_DECODE_ITEMS)
            .ok_or_else(|| format!("implausible matrix shape {rows}x{cols}"))?;
        // Bounds-check before allocating so a corrupt header cannot request
        // a giant buffer.
        if self.buf.len() - self.pos < n * 4 {
            return Err(format!("payload truncated inside a {rows}x{cols} matrix"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

fn decode_payload(payload: &[u8]) -> Result<TrainCheckpoint, String> {
    let mut d = Dec { buf: payload, pos: 0 };
    let fingerprint = d.u64()?;
    let epoch = d.u64()?;
    let lr = d.f32()?;
    let adam_t = d.u64()?;
    let mut key = [0u32; 8];
    for k in &mut key {
        *k = d.u32()?;
    }
    let counter = d.u64()?;
    let idx = d.u32()?;
    if idx > 16 {
        return Err(format!("invalid RNG buffer index {idx}"));
    }
    let recoveries = d.u64()?;
    let n_losses = d.count("epoch loss")?;
    let mut epoch_losses = Vec::with_capacity(n_losses);
    for _ in 0..n_losses {
        epoch_losses.push(d.f32()?);
    }
    let n_seconds = d.count("epoch seconds")?;
    let mut epoch_seconds = Vec::with_capacity(n_seconds);
    for _ in 0..n_seconds {
        epoch_seconds.push(d.f64()?);
    }
    let n_params = d.count("parameter")?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let name = d.str()?;
        let m = d.matrix()?;
        params.push((name, m));
    }
    let n_m = d.count("adam first moment")?;
    let mut adam_m = Vec::with_capacity(n_m);
    for _ in 0..n_m {
        adam_m.push(d.matrix()?);
    }
    let n_v = d.count("adam second moment")?;
    let mut adam_v = Vec::with_capacity(n_v);
    for _ in 0..n_v {
        adam_v.push(d.matrix()?);
    }
    if d.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after the checkpoint payload",
            payload.len() - d.pos
        ));
    }
    if adam_m.len() != adam_v.len() {
        return Err(format!(
            "adam moment count mismatch: {} first vs {} second",
            adam_m.len(),
            adam_v.len()
        ));
    }
    Ok(TrainCheckpoint {
        fingerprint,
        epoch,
        lr,
        adam_t,
        rng: ChaCha8State { key, counter, idx },
        recoveries,
        epoch_losses,
        epoch_seconds,
        params,
        adam_m,
        adam_v,
    })
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the integrity check for checkpoint payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a, 64-bit. Tiny, dependency-free, stable across platforms — enough
/// for a configuration fingerprint (not security sensitive).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("coane_checkpoint_test").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(epoch: u64) -> TrainCheckpoint {
        TrainCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            epoch,
            lr: 1e-3,
            adam_t: 42,
            rng: ChaCha8State { key: [1, 2, 3, 4, 5, 6, 7, 8], counter: 99, idx: 5 },
            recoveries: 1,
            epoch_losses: vec![3.5, 2.25, 1.125],
            epoch_seconds: vec![0.5, 0.25, 0.125],
            params: vec![
                (
                    "theta".to_string(),
                    Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.0, 1e-7, -0.0]),
                ),
                ("decoder.w".to_string(), Matrix::from_vec(1, 2, vec![f32::MIN_POSITIVE, 7.0])),
            ],
            adam_m: vec![Matrix::zeros(2, 3), Matrix::zeros(1, 2)],
            adam_v: vec![Matrix::full(2, 3, 0.125), Matrix::full(1, 2, 2.0)],
        }
    }

    fn assert_same(a: &TrainCheckpoint, b: &TrainCheckpoint) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.lr.to_bits(), b.lr.to_bits());
        assert_eq!(a.adam_t, b.adam_t);
        assert_eq!(a.rng, b.rng);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.epoch_losses, b.epoch_losses);
        assert_eq!(a.epoch_seconds, b.epoch_seconds);
        assert_eq!(a.params, b.params);
        assert_eq!(a.adam_m, b.adam_m);
        assert_eq!(a.adam_v, b.adam_v);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let ckpt = sample(3);
        let path = save_checkpoint(&dir, &ckpt, 2).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "ckpt-00000003.coane");
        let loaded = load_checkpoint(&path).unwrap();
        assert_same(&ckpt, &loaded);
        // No stray temp file remains.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
    }

    #[test]
    fn bit_flip_detected_and_skipped() {
        let dir = tmp_dir("bitflip");
        save_checkpoint(&dir, &sample(1), 3).unwrap();
        let p2 = save_checkpoint(&dir, &sample(2), 3).unwrap();
        // Flip one payload bit in the newest checkpoint.
        let mut bytes = fs::read(&p2).unwrap();
        let k = bytes.len() - 10;
        bytes[k] ^= 0x40;
        fs::write(&p2, &bytes).unwrap();
        let err = load_checkpoint(&p2).unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
        // latest_valid falls back to epoch 1.
        let (path, ckpt) = latest_valid(&dir).unwrap().unwrap();
        assert_eq!(ckpt.epoch, 1);
        assert!(path.to_str().unwrap().contains("00000001"));
    }

    #[test]
    fn truncation_detected_and_skipped() {
        let dir = tmp_dir("truncate");
        save_checkpoint(&dir, &sample(5), 3).unwrap();
        let p6 = save_checkpoint(&dir, &sample(6), 3).unwrap();
        let bytes = fs::read(&p6).unwrap();
        fs::write(&p6, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_checkpoint(&p6).unwrap_err().to_string().contains("truncated"));
        let (_, ckpt) = latest_valid(&dir).unwrap().unwrap();
        assert_eq!(ckpt.epoch, 5);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let dir = tmp_dir("magic");
        let p = save_checkpoint(&dir, &sample(1), 2).unwrap();
        let mut bytes = fs::read(&p).unwrap();
        bytes[0] = b'X';
        fs::write(&p, &bytes).unwrap();
        assert!(load_checkpoint(&p).unwrap_err().to_string().contains("magic"));

        let mut bytes = fs::read(&p).unwrap();
        bytes[0..8].copy_from_slice(CHECKPOINT_MAGIC);
        bytes[8] = 99; // version
        fs::write(&p, &bytes).unwrap();
        assert!(load_checkpoint(&p).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        for e in 1..=5 {
            save_checkpoint(&dir, &sample(e), 2).unwrap();
        }
        let mut epochs = list_checkpoint_epochs(&dir).unwrap();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![4, 5]);
    }

    #[test]
    fn empty_or_missing_dir_is_none() {
        let dir = tmp_dir("empty");
        assert!(latest_valid(&dir).unwrap().is_none());
        assert!(latest_valid(&dir.join("nope")).unwrap().is_none());
        // A directory with only garbage files is also None.
        fs::write(dir.join("ckpt-00000001.coane"), b"garbage").unwrap();
        fs::write(dir.join("unrelated.txt"), b"hi").unwrap();
        assert!(latest_valid(&dir).unwrap().is_none());
    }

    #[test]
    fn fingerprint_tracks_result_affecting_fields_only() {
        let base = CoaneConfig::default();
        let f = config_fingerprint(&base);
        assert_eq!(f, config_fingerprint(&CoaneConfig { threads: 16, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { epochs: 99, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { max_lr_retries: 9, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { infer_batch_size: 7, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { prefetch_batches: 0, ..base.clone() }));
        // Memory knobs: every setting yields bit-identical embeddings
        // (tests/streaming.rs), so resuming across them must be legal.
        assert_eq!(f, config_fingerprint(&CoaneConfig { max_cache_bytes: 1024, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { walk_block_size: 64, ..base.clone() }));
        assert_eq!(f, config_fingerprint(&CoaneConfig { coocc_block_size: 128, ..base.clone() }));
        assert_ne!(f, config_fingerprint(&CoaneConfig { seed: 7, ..base.clone() }));
        assert_ne!(f, config_fingerprint(&CoaneConfig { embed_dim: 64, ..base.clone() }));
        assert_ne!(f, config_fingerprint(&CoaneConfig { gamma: 5.0, ..base }));
    }
}
