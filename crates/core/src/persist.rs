//! Model persistence: save a trained CoANE model (filter bank + decoder)
//! to JSON and reload it later — e.g. to embed new nodes inductively in a
//! separate process (see [`crate::inductive::embed_nodes`]).

use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;

use coane_nn::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{Ablation, CoaneConfig, EncoderKind};
use crate::model::CoaneModel;

/// The on-disk form: enough architecture description to rebuild the model
/// plus every named parameter matrix.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    attr_dim: usize,
    embed_dim: usize,
    context_size: usize,
    convolutional: bool,
    decoder_hidden: (usize, usize),
    has_decoder: bool,
    walks_per_node: usize,
    walk_length: usize,
    params: Vec<(String, Matrix)>,
}

/// Saves a trained model. `config` must be the configuration it was trained
/// with; `attr_dim` the training graph's attribute dimensionality.
pub fn save_model(
    path: &Path,
    model: &CoaneModel,
    config: &CoaneConfig,
    attr_dim: usize,
) -> io::Result<()> {
    let saved = SavedModel {
        format_version: 1,
        attr_dim,
        embed_dim: config.embed_dim,
        context_size: config.context_size,
        convolutional: config.encoder == EncoderKind::Convolution,
        decoder_hidden: config.decoder_hidden,
        has_decoder: model.has_decoder(),
        walks_per_node: config.walks_per_node,
        walk_length: config.walk_length,
        params: model
            .params
            .iter()
            .map(|(_, name, value)| (name.to_string(), value.clone()))
            .collect(),
    };
    let f = BufWriter::new(File::create(path)?);
    serde_json::to_writer(f, &saved).map_err(io::Error::other)
}

/// Loads a model saved by [`save_model`]. Returns the model together with a
/// [`CoaneConfig`] carrying the architecture fields needed by
/// [`crate::inductive::embed_nodes`] (other fields take defaults).
pub fn load_model(path: &Path) -> io::Result<(CoaneModel, CoaneConfig)> {
    let f = BufReader::new(File::open(path)?);
    let saved: SavedModel = serde_json::from_reader(f).map_err(io::Error::other)?;
    if saved.format_version != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported model format version {}", saved.format_version),
        ));
    }
    let config = CoaneConfig {
        embed_dim: saved.embed_dim,
        context_size: saved.context_size,
        encoder: if saved.convolutional {
            EncoderKind::Convolution
        } else {
            EncoderKind::FullyConnected
        },
        decoder_hidden: saved.decoder_hidden,
        walks_per_node: saved.walks_per_node,
        walk_length: saved.walk_length,
        ablation: Ablation { attribute_preservation: saved.has_decoder, ..Ablation::full() },
        ..Default::default()
    };
    // Rebuild the architecture (values are immediately overwritten, so the
    // RNG seed is irrelevant), then restore parameter values by name.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = CoaneModel::new(&config, saved.attr_dim, &mut rng);
    let expected: Vec<String> = model.params.iter().map(|(_, name, _)| name.to_string()).collect();
    let got: Vec<&String> = saved.params.iter().map(|(n, _)| n).collect();
    if expected.len() != got.len() || expected.iter().zip(&got).any(|(a, b)| a != *b) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parameter mismatch: expected {expected:?}, file has {got:?}"),
        ));
    }
    for (i, (_, value)) in saved.params.into_iter().enumerate() {
        let id = model
            .params
            .iter()
            .nth(i)
            .map(|(id, _, current)| {
                assert_eq!(
                    current.shape(),
                    value.shape(),
                    "parameter {i} shape changed between save and load"
                );
                id
            })
            .expect("index in range");
        *model.params.get_mut(id) = value;
    }
    Ok((model, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::embed_nodes;
    use crate::trainer::Coane;
    use coane_datasets::generator::planted_partition;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coane_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_inference() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(80, 2, 0.25, 0.02, 30, &mut rng);
        let cfg = CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 15,
            epochs: 3,
            batch_size: 32,
            decoder_hidden: (16, 16),
            ..Default::default()
        };
        let (_, model, _) = Coane::new(cfg.clone()).fit_with_model(&g);
        let path = tmp("model.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        let (loaded, loaded_cfg) = load_model(&path).unwrap();

        // Same inference outputs for the same nodes.
        let nodes: Vec<u32> = (0..10).collect();
        let before = embed_nodes(&model, &cfg, &g, &nodes);
        let after = embed_nodes(&loaded, &loaded_cfg, &g, &nodes);
        assert_eq!(before, after, "loaded model produces different embeddings");
    }

    #[test]
    fn wap_model_roundtrips_without_decoder() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = planted_partition(50, 2, 0.3, 0.03, 16, &mut rng);
        let cfg = CoaneConfig {
            embed_dim: 8,
            context_size: 3,
            walk_length: 10,
            epochs: 1,
            ablation: Ablation::wap(),
            ..Default::default()
        };
        let (_, model, _) = Coane::new(cfg.clone()).fit_with_model(&g);
        let path = tmp("wap.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        let (loaded, _) = load_model(&path).unwrap();
        assert!(!loaded.has_decoder());
    }

    #[test]
    fn corrupted_file_rejected() {
        let path = tmp("bad.json");
        std::fs::write(&path, "{\"format_version\": 99}").unwrap();
        assert!(load_model(&path).is_err());
    }
}
