//! Model persistence: save a trained CoANE model (filter bank + decoder)
//! to JSON and reload it later — e.g. to embed new nodes inductively in a
//! separate process (see [`crate::inductive::embed_nodes`]).
//!
//! Loading treats the file as untrusted: unsupported format versions,
//! missing/renamed parameters and shape mismatches all surface a typed
//! [`CoaneError`] instead of panicking downstream.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use coane_error::{CoaneError, CoaneResult};
use coane_nn::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{Ablation, CoaneConfig, EncoderKind};
use crate::model::CoaneModel;

/// The on-disk format version written by [`save_model`].
pub const MODEL_FORMAT_VERSION: u32 = 1;

/// The on-disk form: enough architecture description to rebuild the model
/// plus every named parameter matrix.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    attr_dim: usize,
    embed_dim: usize,
    context_size: usize,
    convolutional: bool,
    decoder_hidden: (usize, usize),
    has_decoder: bool,
    walks_per_node: usize,
    walk_length: usize,
    params: Vec<(String, Matrix)>,
}

/// Saves a trained model. `config` must be the configuration it was trained
/// with; `attr_dim` the training graph's attribute dimensionality.
pub fn save_model(
    path: &Path,
    model: &CoaneModel,
    config: &CoaneConfig,
    attr_dim: usize,
) -> CoaneResult<()> {
    let saved = SavedModel {
        format_version: MODEL_FORMAT_VERSION,
        attr_dim,
        embed_dim: config.embed_dim,
        context_size: config.context_size,
        convolutional: config.encoder == EncoderKind::Convolution,
        decoder_hidden: config.decoder_hidden,
        has_decoder: model.has_decoder(),
        walks_per_node: config.walks_per_node,
        walk_length: config.walk_length,
        params: model
            .params
            .iter()
            .map(|(_, name, value)| (name.to_string(), value.clone()))
            .collect(),
    };
    let f = BufWriter::new(File::create(path).map_err(|e| CoaneError::io(path, e))?);
    serde_json::to_writer(f, &saved)
        .map_err(|e| CoaneError::parse(e.to_string()).with_parse_context(path, None))
}

/// Loads a model saved by [`save_model`]. Returns the model together with a
/// [`CoaneConfig`] carrying the architecture fields needed by
/// [`crate::inductive::embed_nodes`] (other fields take defaults).
pub fn load_model(path: &Path) -> CoaneResult<(CoaneModel, CoaneConfig)> {
    let f = BufReader::new(File::open(path).map_err(|e| CoaneError::io(path, e))?);
    let saved: SavedModel = serde_json::from_reader(f)
        .map_err(|e| CoaneError::parse(e.to_string()).with_parse_context(path, None))?;
    if saved.format_version != MODEL_FORMAT_VERSION {
        return Err(CoaneError::parse(format!(
            "unsupported model format version {} (this build reads version {MODEL_FORMAT_VERSION})",
            saved.format_version
        ))
        .with_parse_context(path, None));
    }
    let config = CoaneConfig {
        embed_dim: saved.embed_dim,
        context_size: saved.context_size,
        encoder: if saved.convolutional {
            EncoderKind::Convolution
        } else {
            EncoderKind::FullyConnected
        },
        decoder_hidden: saved.decoder_hidden,
        walks_per_node: saved.walks_per_node,
        walk_length: saved.walk_length,
        ablation: Ablation { attribute_preservation: saved.has_decoder, ..Ablation::full() },
        ..Default::default()
    };
    // A file with absurd architecture fields (embed_dim 0, even context…)
    // must not reach CoaneModel::new, which panics on invalid configs.
    config.validate().map_err(|e| {
        CoaneError::parse(format!("invalid architecture in model file: {e}"))
            .with_parse_context(path, None)
    })?;
    // Rebuild the architecture (values are immediately overwritten, so the
    // RNG seed is irrelevant), then restore parameter values by name.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = CoaneModel::new(&config, saved.attr_dim, &mut rng);
    let expected: Vec<(String, (usize, usize))> =
        model.params.iter().map(|(_, name, value)| (name.to_string(), value.shape())).collect();
    if expected.len() != saved.params.len() {
        return Err(CoaneError::parse(format!(
            "parameter count mismatch: architecture has {} parameters, file has {}",
            expected.len(),
            saved.params.len()
        ))
        .with_parse_context(path, None));
    }
    let mut values = Vec::with_capacity(saved.params.len());
    for ((exp_name, exp_shape), (got_name, value)) in expected.iter().zip(saved.params) {
        if *exp_name != got_name {
            return Err(CoaneError::parse(format!(
                "parameter name mismatch: expected {exp_name:?}, file has {got_name:?}"
            ))
            .with_parse_context(path, None));
        }
        if *exp_shape != value.shape() {
            return Err(CoaneError::parse(format!(
                "parameter {exp_name:?} shape mismatch: architecture expects {exp_shape:?}, \
                 file has {:?}",
                value.shape()
            ))
            .with_parse_context(path, None));
        }
        values.push(value);
    }
    model
        .params
        .import_values(values)
        .map_err(|msg| CoaneError::parse(msg).with_parse_context(path, None))?;
    Ok((model, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::embed_nodes;
    use crate::trainer::Coane;
    use coane_datasets::generator::planted_partition;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coane_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trained() -> (coane_graph::AttributedGraph, CoaneConfig, CoaneModel) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = planted_partition(80, 2, 0.25, 0.02, 30, &mut rng);
        let cfg = CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 15,
            epochs: 3,
            batch_size: 32,
            decoder_hidden: (16, 16),
            ..Default::default()
        };
        let (_, model, _) = Coane::new(cfg.clone()).fit_with_model(&g);
        (g, cfg, model)
    }

    #[test]
    fn roundtrip_preserves_inference() {
        let (g, cfg, model) = trained();
        let path = tmp("model.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        let (loaded, loaded_cfg) = load_model(&path).unwrap();

        // Same inference outputs for the same nodes.
        let nodes: Vec<u32> = (0..10).collect();
        let before = embed_nodes(&model, &cfg, &g, &nodes);
        let after = embed_nodes(&loaded, &loaded_cfg, &g, &nodes);
        assert_eq!(before, after, "loaded model produces different embeddings");
    }

    #[test]
    fn wap_model_roundtrips_without_decoder() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = planted_partition(50, 2, 0.3, 0.03, 16, &mut rng);
        let cfg = CoaneConfig {
            embed_dim: 8,
            context_size: 3,
            walk_length: 10,
            epochs: 1,
            ablation: Ablation::wap(),
            ..Default::default()
        };
        let (_, model, _) = Coane::new(cfg.clone()).fit_with_model(&g);
        let path = tmp("wap.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        let (loaded, _) = load_model(&path).unwrap();
        assert!(!loaded.has_decoder());
    }

    #[test]
    fn version_mismatch_rejected_with_description() {
        let (g, cfg, model) = trained();
        let path = tmp("future.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen("\"format_version\":1", "\"format_version\":99", 1);
        assert_ne!(text, bumped, "fixture drifted: version field not found");
        std::fs::write(&path, bumped).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, CoaneError::Parse { .. }), "{err:?}");
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn shape_mismatch_rejected_with_description() {
        let (g, cfg, model) = trained();
        let path = tmp("reshaped.json");
        save_model(&path, &model, &cfg, g.attr_dim()).unwrap();
        // Claim a different embedding width than the stored theta matrix:
        // the architecture rebuild then disagrees with every stored shape.
        let text = std::fs::read_to_string(&path).unwrap();
        let reshaped = text.replacen("\"embed_dim\":16", "\"embed_dim\":32", 1);
        assert_ne!(text, reshaped, "fixture drifted: embed_dim field not found");
        std::fs::write(&path, reshaped).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn corrupted_and_truncated_files_rejected() {
        let path = tmp("bad.json");
        std::fs::write(&path, "{\"format_version\": 99}").unwrap();
        assert!(load_model(&path).is_err());

        // Truncated mid-stream.
        let (g, cfg, model) = trained();
        let full = tmp("full.json");
        save_model(&full, &model, &cfg, g.attr_dim()).unwrap();
        let text = std::fs::read_to_string(&full).unwrap();
        let cut = tmp("cut.json");
        std::fs::write(&cut, &text[..text.len() / 2]).unwrap();
        let err = load_model(&cut).unwrap_err();
        assert!(matches!(err, CoaneError::Parse { .. }), "{err:?}");

        // Missing file is an io error.
        let err = load_model(&tmp("does-not-exist.json")).unwrap_err();
        assert!(matches!(err, CoaneError::Io { .. }), "{err:?}");
    }
}
