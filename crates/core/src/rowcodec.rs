//! Delta+varint codec for compressed context rows.
//!
//! The memory-budgeted [`crate::cache::ContextRowCache`] stores sparse rows
//! as a byte stream instead of a CSR triple. Each row encodes as:
//!
//! ```text
//! varint(nnz)
//! varint(col[0])  varint(col[1]−col[0]−1)  …   // strictly increasing deltas
//! flag: 1 ⇒ every value is exactly 1.0f32 (binary attributes — free)
//!       0 ⇒ nnz raw little-endian f32 words follow
//! ```
//!
//! Values round-trip **bit-exactly** (raw `to_bits` when not all-ones, and
//! `1.0f32` is exactly representable), which the budgeted cache's
//! bit-identity contract depends on. Round-trip and budget-accounting
//! invariants are locked by proptests in `tests/properties.rs`.

/// Appends `x` as a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        buf.push((x as u8 & 0x7F) | 0x80);
        x >>= 7;
    }
    buf.push(x as u8);
}

/// Reads a LEB128 varint at `*pos`, advancing it.
///
/// # Panics
/// Panics on a truncated buffer (the cache only decodes streams it wrote).
#[inline]
pub fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= ((b & 0x7F) as u64) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// Encodes one sparse row. `cols` must be strictly increasing (the cache's
/// rows always are: duplicate columns are merged at build time).
///
/// # Panics
/// Panics if `cols` and `vals` lengths differ or `cols` is not strictly
/// increasing.
pub fn encode_row(cols: &[u32], vals: &[f32], buf: &mut Vec<u8>) {
    assert_eq!(cols.len(), vals.len(), "cols/vals length mismatch");
    write_varint(buf, cols.len() as u64);
    let mut prev: Option<u32> = None;
    for &c in cols {
        match prev {
            None => write_varint(buf, c as u64),
            Some(p) => {
                assert!(c > p, "columns must be strictly increasing");
                write_varint(buf, (c - p - 1) as u64);
            }
        }
        prev = Some(c);
    }
    if cols.is_empty() {
        return;
    }
    if vals.iter().all(|&v| v.to_bits() == 1.0f32.to_bits()) {
        buf.push(1);
    } else {
        buf.push(0);
        for &v in vals {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Decodes one row at `*pos`, appending its columns/values to `cols`/`vals`
/// and advancing `*pos` past the row. Returns the row's nnz.
pub fn decode_row(data: &[u8], pos: &mut usize, cols: &mut Vec<u32>, vals: &mut Vec<f32>) -> usize {
    let nnz = read_varint(data, pos) as usize;
    let mut col = 0u32;
    for k in 0..nnz {
        let delta = read_varint(data, pos) as u32;
        col = if k == 0 { delta } else { col + delta + 1 };
        cols.push(col);
    }
    if nnz == 0 {
        return 0;
    }
    let flag = data[*pos];
    *pos += 1;
    if flag == 1 {
        vals.extend(std::iter::repeat_n(1.0f32, nnz));
    } else {
        for _ in 0..nnz {
            let raw: [u8; 4] = data[*pos..*pos + 4].try_into().unwrap();
            vals.push(f32::from_bits(u32::from_le_bytes(raw)));
            *pos += 4;
        }
    }
    nnz
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cols: &[u32], vals: &[f32]) {
        let mut buf = Vec::new();
        encode_row(cols, vals, &mut buf);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        let mut pos = 0usize;
        let nnz = decode_row(&buf, &mut pos, &mut c, &mut v);
        assert_eq!(pos, buf.len(), "trailing bytes");
        assert_eq!(nnz, cols.len());
        assert_eq!(c, cols);
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_row() {
        round_trip(&[], &[]);
    }

    #[test]
    fn all_ones_row_costs_one_value_byte() {
        let cols: Vec<u32> = (0..100).map(|k| k * 3).collect();
        let vals = vec![1.0f32; 100];
        let mut buf = Vec::new();
        encode_row(&cols, &vals, &mut buf);
        round_trip(&cols, &vals);
        let mut general = Vec::new();
        encode_row(&cols, &[&vals[..99], &[2.0f32][..]].concat(), &mut general);
        assert_eq!(buf.len() + 4 * 100, general.len(), "all-ones flag not exploited");
    }

    #[test]
    fn exotic_float_bits_survive() {
        round_trip(&[0, 7, u32::MAX - 1], &[-0.0, f32::MIN_POSITIVE / 2.0, 3.5e37]);
    }

    #[test]
    fn varint_boundaries() {
        for x in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_columns_rejected() {
        encode_row(&[3, 3], &[1.0, 2.0], &mut Vec::new());
    }
}
