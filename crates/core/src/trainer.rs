//! Algorithm 1: CoANE training with batch updating and per-epoch renewal,
//! wrapped in a fault-tolerance layer: non-finite-loss recovery (rollback +
//! learning-rate halving) and atomic checkpoint/resume
//! ([`Coane::fit_resumable`]).

use coane_error::{CoaneError, CoaneResult};
use coane_graph::{AttributedGraph, NodeAttributes, NodeId};
use coane_nn::init::xavier_uniform;
use coane_nn::{Adam, Matrix, Tape};
use coane_walks::{
    CoMatrices, ContextSet, ContextsConfig, ContextualNegativeSampler, PositivePairs, WalkConfig,
    Walker,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use coane_obs::Obs;

use crate::batch::{first_hop_walks, ContextBatch};
use crate::cache::ContextRowCache;
use crate::checkpoint::{self, CheckpointConfig, TrainCheckpoint};
use crate::config::{CoaneConfig, ContextSource, NegativeLossKind};
use crate::loss::{attribute_loss, negative_loss, positive_loss, total_loss, LossContext};
use crate::model::CoaneModel;
use crate::telemetry::{CheckpointRecord, EpochRecord, RecoveryRecord, ResumeRecord};

/// Per-epoch training statistics.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Total objective value per epoch (summed over batches).
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// `k_p` used by the positive likelihood.
    pub k_p: usize,
    /// Total contexts extracted.
    pub num_contexts: usize,
    /// Non-finite-loss recoveries performed (rollback + LR halving).
    pub recoveries: usize,
    /// When training resumed from a checkpoint, the epoch it restarted at.
    pub resumed_from_epoch: Option<usize>,
    /// Checkpoints written during this run.
    pub checkpoints_written: usize,
    /// Learning rate at the end of training (lower than configured iff
    /// recovery halved it).
    pub final_lr: f32,
}

/// The CoANE embedder. Construct with a [`CoaneConfig`], call
/// [`Coane::fit`] (or [`Coane::fit_detailed`] for stats and per-epoch
/// callbacks) to obtain the `(n × d')` embedding matrix. For long runs that
/// must survive interruption, [`Coane::fit_resumable`] adds crash-safe
/// checkpointing with bit-identical resume.
#[derive(Debug)]
pub struct Coane {
    config: CoaneConfig,
    /// Telemetry sink; disabled by default (every instrumentation call is a
    /// no-op branch). Never part of the checkpoint fingerprint: telemetry
    /// is observation-only and cannot affect results.
    obs: Obs,
    /// Test-only fault injection: epochs whose loss is forced to NaN once.
    fault_epochs: Vec<usize>,
}

/// Pre-processing-phase state: contexts, co-occurrence matrices, positive
/// pairs, the contextual negative sampler, and the epoch-persistent
/// context-row cache every batch is sliced from.
struct Prepared {
    contexts: std::sync::Arc<ContextSet>,
    co: CoMatrices,
    pairs: PositivePairs,
    sampler: ContextualNegativeSampler,
    cache: ContextRowCache,
}

/// Telemetry-only per-epoch accumulator. Filled by `train_batch` only when
/// the observer is enabled; its values never feed back into training.
#[derive(Default)]
struct EpochAccum {
    pos: f64,
    neg: f64,
    att: f64,
    grad_norm: f64,
    batches: u64,
    cache_rows: u64,
    nnz: u64,
}

impl Coane {
    /// New trainer with `config`.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`Coane::try_new`] when the
    /// config comes from external input.
    pub fn new(config: CoaneConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid CoaneConfig: {e}"))
    }

    /// New trainer with `config`, surfacing validation failures as a typed
    /// [`CoaneError::Config`] instead of panicking.
    pub fn try_new(config: CoaneConfig) -> CoaneResult<Self> {
        config.validate()?;
        Ok(Self { config, obs: Obs::disabled(), fault_epochs: Vec::new() })
    }

    /// The configuration.
    pub fn config(&self) -> &CoaneConfig {
        &self.config
    }

    /// Attaches a telemetry collector. Every training phase then records
    /// timing scopes, counters, and structured events (per-epoch
    /// [`EpochRecord`]s, NaN-guard [`RecoveryRecord`]s, checkpoint write
    /// latency) into `obs`. Telemetry is observation-only: it never draws
    /// from the training RNG or reorders float operations, so the returned
    /// embeddings are bit-identical to an unobserved run at any thread
    /// count (enforced by `tests/determinism.rs`).
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Forces the training loss to come out NaN once per listed epoch (an
    /// epoch listed twice faults twice, exercising repeated recovery). This
    /// exists so the recovery path is tested against the *real* rollback
    /// machinery rather than a simulation; it is not part of the public API.
    #[doc(hidden)]
    pub fn with_injected_loss_faults(mut self, epochs: &[usize]) -> Self {
        self.fault_epochs = epochs.to_vec();
        self
    }

    /// Trains and returns the final embedding matrix (`n × d'`).
    ///
    /// # Panics
    /// Panics if training fails (e.g. non-finite loss persists through all
    /// recovery attempts); use [`Coane::try_fit`] for a typed error.
    pub fn fit(&self, graph: &AttributedGraph) -> Matrix {
        self.try_fit(graph).unwrap_or_else(|e| panic!("training failed: {e}"))
    }

    /// Trains and returns the final embedding matrix, surfacing failures as
    /// typed [`CoaneError`]s.
    pub fn try_fit(&self, graph: &AttributedGraph) -> CoaneResult<Matrix> {
        Ok(self.run(graph, None, |_, _| {})?.0)
    }

    /// Trains and additionally returns the fitted model (for filter-weight
    /// inspection, Fig. 6b).
    pub fn fit_with_model(&self, graph: &AttributedGraph) -> (Matrix, CoaneModel, TrainStats) {
        self.run(graph, None, |_, _| {}).unwrap_or_else(|e| panic!("training failed: {e}"))
    }

    /// [`Coane::fit_with_model`] with typed errors instead of panics.
    pub fn try_fit_with_model(
        &self,
        graph: &AttributedGraph,
    ) -> CoaneResult<(Matrix, CoaneModel, TrainStats)> {
        self.run(graph, None, |_, _| {})
    }

    /// Trains, returning embeddings and statistics. `on_epoch(e, z)` is
    /// invoked after every epoch with the *renewed* full embedding matrix —
    /// the hook behind the convergence curves of Fig. 4d / Fig. 6.
    pub fn fit_detailed(
        &self,
        graph: &AttributedGraph,
        on_epoch: impl FnMut(usize, &Matrix),
    ) -> (Matrix, TrainStats) {
        let (z, _, stats) =
            self.run(graph, None, on_epoch).unwrap_or_else(|e| panic!("training failed: {e}"));
        (z, stats)
    }

    /// Fault-tolerant training: periodically writes atomic checkpoints into
    /// `ckpt.dir` and, when the directory already holds a valid checkpoint
    /// from a previous (interrupted) run with the same result-affecting
    /// configuration, resumes from it instead of starting over.
    ///
    /// Because checkpoints capture the exact RNG stream position alongside
    /// parameters and optimizer moments — and the whole pipeline is
    /// bit-deterministic for any thread count — an interrupted-and-resumed
    /// run produces embeddings `==` to those of an uninterrupted run.
    /// Corrupt or truncated checkpoint files are detected by CRC and
    /// skipped in favor of the newest valid one; a checkpoint written under
    /// a different configuration is rejected with
    /// [`CoaneError::Checkpoint`].
    pub fn fit_resumable(
        &self,
        graph: &AttributedGraph,
        ckpt: &CheckpointConfig,
    ) -> CoaneResult<(Matrix, TrainStats)> {
        let (z, _, stats) = self.run(graph, Some(ckpt), |_, _| {})?;
        Ok((z, stats))
    }

    /// [`Coane::fit_resumable`] variant that also returns the fitted model
    /// (e.g. to persist it with [`crate::persist::save_model`] afterwards).
    pub fn fit_resumable_with_model(
        &self,
        graph: &AttributedGraph,
        ckpt: &CheckpointConfig,
    ) -> CoaneResult<(Matrix, CoaneModel, TrainStats)> {
        self.run(graph, Some(ckpt), |_, _| {})
    }

    /// The fully general training entry point: optional checkpointing, a
    /// per-epoch callback (invoked with the renewed embedding matrix), and
    /// the fitted model in the result. Every other `fit_*` method is a
    /// specialization of this.
    pub fn try_fit_full(
        &self,
        graph: &AttributedGraph,
        checkpointing: Option<&CheckpointConfig>,
        on_epoch: impl FnMut(usize, &Matrix),
    ) -> CoaneResult<(Matrix, CoaneModel, TrainStats)> {
        self.run(graph, checkpointing, on_epoch)
    }

    fn run(
        &self,
        graph: &AttributedGraph,
        checkpointing: Option<&CheckpointConfig>,
        mut on_epoch: impl FnMut(usize, &Matrix),
    ) -> CoaneResult<(Matrix, CoaneModel, TrainStats)> {
        let cfg = &self.config;
        // One knob for every parallel stage: walk generation, preprocessing
        // and the training kernels all read the pool's thread count. Results
        // are bit-identical for any setting (see `coane_nn::pool`).
        coane_nn::pool::set_threads(cfg.threads);
        // WF ablation: strip attributes down to identity rows.
        let owned_graph;
        let graph: &AttributedGraph = if cfg.ablation.use_attributes {
            graph
        } else {
            owned_graph = graph.clone().with_attrs(NodeAttributes::identity(graph.num_nodes()));
            &owned_graph
        };

        let _fit_scope = self.obs.scope("fit");
        let n = graph.num_nodes();
        let prep = {
            let _scope = self.obs.scope("prepare");
            self.prepare(graph)
        };
        let mut stats = TrainStats {
            k_p: prep.pairs.k_p,
            num_contexts: prep.contexts.num_contexts(),
            final_lr: cfg.learning_rate,
            ..Default::default()
        };

        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0xC0A0E));
        let mut model = CoaneModel::new(cfg, graph.attr_dim(), &mut rng);
        let mut adam = Adam::new(cfg.learning_rate);
        // Initialize the embedding cache with Xavier, as the paper
        // initializes "both model parameters and embedding vectors".
        let mut z_cache = xavier_uniform(n, cfg.embed_dim, &mut rng);

        let fingerprint = checkpoint::config_fingerprint(cfg);
        let mut start_epoch = 0usize;
        let mut renewed = false;
        if let Some(ck) = checkpointing {
            ck.validate()?;
            if let Some((path, saved)) = checkpoint::latest_valid(&ck.dir)? {
                if saved.fingerprint != fingerprint {
                    return Err(CoaneError::checkpoint(
                        &path,
                        "configuration fingerprint mismatch: this checkpoint was written under \
                         different result-affecting settings (resuming would produce embeddings \
                         matching neither run); use a fresh checkpoint directory",
                    ));
                }
                if saved.params.len() != model.params.len() {
                    return Err(CoaneError::checkpoint(
                        &path,
                        format!(
                            "parameter count mismatch: model has {}, checkpoint has {}",
                            model.params.len(),
                            saved.params.len()
                        ),
                    ));
                }
                for ((_, expect, _), (got, _)) in model.params.iter().zip(&saved.params) {
                    if expect != got {
                        return Err(CoaneError::checkpoint(
                            &path,
                            format!("parameter name mismatch: expected {expect:?}, found {got:?}"),
                        ));
                    }
                }
                let values: Vec<Matrix> = saved.params.into_iter().map(|(_, m)| m).collect();
                model
                    .params
                    .import_values(values)
                    .map_err(|msg| CoaneError::checkpoint(&path, msg))?;
                adam = Adam::import_state(saved.lr, saved.adam_t, saved.adam_m, saved.adam_v)
                    .map_err(|msg| CoaneError::checkpoint(&path, msg))?;
                rng = ChaCha8Rng::from_state(&saved.rng);
                stats.epoch_losses = saved.epoch_losses;
                stats.epoch_seconds = saved.epoch_seconds;
                stats.recoveries = saved.recoveries as usize;
                stats.final_lr = adam.lr;
                start_epoch = saved.epoch as usize;
                stats.resumed_from_epoch = Some(start_epoch);
                self.obs.event("resume", &ResumeRecord { epoch: start_epoch as u64 });
                // The embedding cache is not checkpointed: renewal recomputes
                // it deterministically from the restored filters.
                {
                    let _scope = self.obs.scope("renew");
                    self.renew(&prep.cache, &model, &mut z_cache);
                }
                renewed = true;
            }
        }

        let mut local_of: Vec<Option<u32>> = vec![None; n];
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let mut retries_left = cfg.max_lr_retries;
        let mut pending_faults = self.fault_epochs.clone();
        let mut epoch = start_epoch;
        while epoch < cfg.epochs {
            // Snapshot the healthy state at the epoch boundary so a
            // non-finite epoch can be rolled back and retried at a lower LR.
            let snap_params = model.params.export_values();
            let snap_adam = adam.clone();
            let snap_rng = rng.clone();
            let snap_z = z_cache.clone();

            let _epoch_scope = self.obs.scope("epoch");
            let started = std::time::Instant::now();
            // Reset to identity before shuffling: the epoch-e permutation
            // then depends only on the RNG state at the epoch boundary (which
            // checkpoints capture exactly), not on every earlier shuffle.
            for (i, slot) in order.iter_mut().enumerate() {
                *slot = i as NodeId;
            }
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut accum = EpochAccum::default();
            let (mut occ_sum, mut occ_samples) = (0u64, 0u64);
            // Pipelined batch assembly: batch i+1's sparse operand is sliced
            // out of the context-row cache on a background worker while batch
            // i trains. Only the (pure-function-of-index) assembly moves off
            // the main thread — negative sampling and every parameter update
            // stay on the main-thread RNG in batch order, so the training
            // trajectory is bit-identical with prefetching on, off, or at any
            // depth. The occupancy probe only reads a producer-side counter.
            let batch_chunks: Vec<&[NodeId]> = order.chunks(cfg.batch_size).collect();
            coane_nn::pool::prefetch_probed(
                batch_chunks.len(),
                cfg.prefetch_batches,
                |i| prep.cache.batch(graph, batch_chunks[i]),
                |i, batch| {
                    epoch_loss += self.train_batch(
                        graph,
                        &prep,
                        &mut model,
                        &mut adam,
                        &mut z_cache,
                        &mut local_of,
                        batch_chunks[i],
                        batch,
                        &mut rng,
                        &mut accum,
                    );
                },
                |ready| {
                    occ_sum += ready as u64;
                    occ_samples += 1;
                },
            );
            if let Some(pos) = pending_faults.iter().position(|&e| e == epoch) {
                pending_faults.swap_remove(pos);
                epoch_loss = f32::NAN;
            }

            if !(epoch_loss.is_finite() && model.params.all_finite()) {
                if retries_left == 0 {
                    return Err(CoaneError::numeric(format!(
                        "non-finite training loss at epoch {epoch} persisted through \
                         {} rollback(s) with learning-rate halving (last lr {:e}); the \
                         objective is numerically unstable for this input — check the \
                         graph's attribute scale or lower the learning rate",
                        cfg.max_lr_retries, adam.lr
                    )));
                }
                retries_left -= 1;
                stats.recoveries += 1;
                self.obs.event(
                    "recovery",
                    &RecoveryRecord {
                        epoch: epoch as u64,
                        lr: (adam.lr * 0.5) as f64,
                        retries_left: retries_left as u64,
                    },
                );
                model
                    .params
                    .import_values(snap_params)
                    .expect("epoch snapshot matches live parameter shapes");
                adam = snap_adam;
                adam.lr *= 0.5;
                stats.final_lr = adam.lr;
                rng = snap_rng;
                z_cache = snap_z;
                continue; // retry the same epoch at the halved learning rate
            }

            let secs = started.elapsed().as_secs_f64();
            stats.epoch_losses.push(epoch_loss);
            stats.epoch_seconds.push(secs);
            if self.obs.is_enabled() {
                let record = EpochRecord {
                    epoch: epoch as u64,
                    loss: epoch_loss as f64,
                    loss_pos: accum.pos,
                    loss_neg: accum.neg,
                    loss_att: accum.att,
                    grad_norm: accum.grad_norm / accum.batches.max(1) as f64,
                    lr: adam.lr as f64,
                    seconds: secs,
                    nodes: n as u64,
                    nodes_per_sec: n as f64 / secs.max(f64::EPSILON),
                    batches: accum.batches,
                    cache_rows: accum.cache_rows,
                    nnz: accum.nnz,
                    prefetch_depth: cfg.prefetch_batches as u64,
                    prefetch_occupancy: if occ_samples == 0 {
                        0.0
                    } else {
                        occ_sum as f64 / occ_samples as f64
                    },
                };
                self.obs.add("train/batches", record.batches);
                self.obs.add("cache/rows_served", record.cache_rows);
                self.obs.add("train/nnz", record.nnz);
                self.obs.gauge("nodes_per_sec", record.nodes_per_sec);
                self.obs.gauge("prefetch/occupancy", record.prefetch_occupancy);
                self.obs.event("epoch", &record);
            }
            // Renew all embeddings with the current filters (Algorithm 1's
            // final "Renew z_v" step, run each epoch so callbacks and the
            // next epoch's cache see consistent embeddings).
            {
                let _scope = self.obs.scope("renew");
                self.renew(&prep.cache, &model, &mut z_cache);
            }
            renewed = true;
            on_epoch(epoch, &z_cache);

            if let Some(ck) = checkpointing {
                let done = epoch + 1;
                if done.is_multiple_of(ck.every_epochs) || done == cfg.epochs {
                    let (lr, adam_t, m, v) = adam.export_state();
                    let ckpt = TrainCheckpoint {
                        fingerprint,
                        epoch: done as u64,
                        lr,
                        adam_t,
                        rng: rng.state(),
                        recoveries: stats.recoveries as u64,
                        epoch_losses: stats.epoch_losses.clone(),
                        epoch_seconds: stats.epoch_seconds.clone(),
                        params: model
                            .params
                            .iter()
                            .map(|(_, name, value)| (name.to_string(), value.clone()))
                            .collect(),
                        adam_m: m.to_vec(),
                        adam_v: v.to_vec(),
                    };
                    let write_started = std::time::Instant::now();
                    {
                        let _scope = self.obs.scope("checkpoint");
                        checkpoint::save_checkpoint(&ck.dir, &ckpt, ck.keep)?;
                    }
                    stats.checkpoints_written += 1;
                    self.obs.event(
                        "checkpoint",
                        &CheckpointRecord {
                            epoch: done as u64,
                            write_secs: write_started.elapsed().as_secs_f64(),
                        },
                    );
                }
            }
            epoch += 1;
        }
        if !renewed {
            let _scope = self.obs.scope("renew");
            self.renew(&prep.cache, &model, &mut z_cache);
        }
        stats.final_lr = adam.lr;
        Ok((z_cache, model, stats))
    }

    /// Trains on one prebuilt batch (assembled inline or on the prefetch
    /// pipeline — either way bit-identical to [`ContextBatch::build`]).
    #[allow(clippy::too_many_arguments)]
    fn train_batch(
        &self,
        graph: &AttributedGraph,
        prep: &Prepared,
        model: &mut CoaneModel,
        adam: &mut Adam,
        z_cache: &mut Matrix,
        local_of: &mut [Option<u32>],
        batch_nodes: &[NodeId],
        batch: ContextBatch,
        rng: &mut ChaCha8Rng,
        accum: &mut EpochAccum,
    ) -> f32 {
        let cfg = &self.config;
        for (k, &v) in batch_nodes.iter().enumerate() {
            local_of[v as usize] = Some(k as u32);
        }

        // Draw negatives (outside the tape, always on the main-thread RNG).
        let negatives: Vec<Vec<NodeId>> = match cfg.ablation.negative {
            NegativeLossKind::None => vec![Vec::new(); batch_nodes.len()],
            NegativeLossKind::Contextual => batch_nodes
                .iter()
                .map(|&v| {
                    prep.sampler.negatives(
                        v,
                        cfg.num_negatives,
                        cfg.negative_mode,
                        batch_nodes,
                        rng,
                    )
                })
                .collect(),
            NegativeLossKind::Uniform => batch_nodes
                .iter()
                .map(|&v| {
                    (0..cfg.num_negatives)
                        .map(|_| {
                            use rand::Rng;
                            let mut u = rng.gen_range(0..graph.num_nodes()) as NodeId;
                            while u == v {
                                u = rng.gen_range(0..graph.num_nodes()) as NodeId;
                            }
                            u
                        })
                        .collect()
                })
                .collect(),
        };

        let mut tape = Tape::new();
        let vars = model.params.attach(&mut tape);
        let z = model.encode(&mut tape, &vars, &batch);
        let decoded = if cfg.ablation.attribute_preservation {
            model.decode(&mut tape, &vars, z)
        } else {
            None
        };
        let ctx = LossContext { batch_nodes, local: local_of, z_cache };
        let l_pos = positive_loss(&mut tape, z, &ctx, cfg.ablation.positive, &prep.pairs, &prep.co);
        let l_neg =
            negative_loss(&mut tape, z, &ctx, cfg.ablation.negative, &negatives, cfg.neg_strength);
        let l_att = attribute_loss(&mut tape, decoded, &batch.x_target, cfg.gamma);
        let loss_value = if let Some(loss) = total_loss(&mut tape, [l_pos, l_neg, l_att]) {
            tape.backward(loss);
            let grads = model.params.take_grads(&mut tape, &vars);
            if self.obs.is_enabled() {
                // Global gradient L2 norm, read before the optimizer step.
                accum.grad_norm += grads
                    .iter()
                    .flat_map(|g| g.as_slice())
                    .map(|&x| x as f64 * x as f64)
                    .sum::<f64>()
                    .sqrt();
            }
            adam.step(&mut model.params, &grads);
            tape.value(loss).item()
        } else {
            0.0
        };
        if self.obs.is_enabled() {
            accum.batches += 1;
            accum.cache_rows += batch.num_contexts() as u64;
            accum.nnz += batch.rb.nnz() as u64;
            let term = |v| tape.value(v).item() as f64;
            accum.pos += l_pos.map(&term).unwrap_or(0.0);
            accum.neg += l_neg.map(&term).unwrap_or(0.0);
            accum.att += l_att.map(&term).unwrap_or(0.0);
        }

        // Embedding-updating step: write the fresh batch embeddings into the
        // cache so later batches see them.
        let z_val = tape.value(z);
        for (k, &v) in batch_nodes.iter().enumerate() {
            z_cache.row_mut(v as usize).copy_from_slice(z_val.row(k));
            local_of[v as usize] = None;
        }
        loss_value
    }

    /// Recomputes every node's embedding with the current filters.
    ///
    /// Runs the no-grad forward over `infer_batch_size`-node chunks in
    /// parallel: each node's embedding depends only on its own cached
    /// context rows and `Θ`, so the chunk decomposition (and thread count)
    /// cannot change a single bit — see `coane_nn::pool`.
    fn renew(&self, cache: &ContextRowCache, model: &CoaneModel, z_cache: &mut Matrix) {
        let d = model.embed_dim();
        let chunk_nodes = self.config.infer_batch_size;
        coane_nn::pool::parallel_chunks(z_cache.as_mut_slice(), chunk_nodes * d, |start, out| {
            let v0 = (start / d) as NodeId;
            let nodes: Vec<NodeId> = (v0..v0 + (out.len() / d) as NodeId).collect();
            let z = model.encode_nograd(&cache.infer_batch(&nodes));
            out.copy_from_slice(z.as_slice());
        });
    }

    fn prepare(&self, graph: &AttributedGraph) -> Prepared {
        let cfg = &self.config;
        let ctx_cfg = ContextsConfig {
            context_size: cfg.context_size,
            subsample_t: match cfg.context_source {
                ContextSource::RandomWalk => cfg.subsample_t,
                // first-hop pseudo-walks already yield one context per
                // directed edge; subsampling would just lose edges.
                ContextSource::FirstHop => f64::INFINITY,
            },
            seed: cfg.seed ^ 0x51_7e,
        };
        let contexts = match cfg.context_source {
            ContextSource::RandomWalk => {
                let walker = Walker::new(
                    graph,
                    WalkConfig {
                        walks_per_node: cfg.walks_per_node,
                        walk_length: cfg.walk_length,
                        p: 1.0,
                        q: 1.0,
                        seed: cfg.seed,
                    },
                );
                if cfg.walk_block_size > 0 {
                    // Streaming path: walks flow through a bounded channel
                    // in blocks and are dropped after context extraction —
                    // the full `r·n` walk set is never resident. Contexts
                    // are bit-identical to the materialized path
                    // (tests/streaming.rs).
                    ContextSet::build_streamed_obs(
                        &walker,
                        graph.num_nodes(),
                        cfg.walk_block_size,
                        &ctx_cfg,
                        &self.obs,
                    )
                } else {
                    let walks = walker.generate_all_obs(cfg.threads, &self.obs);
                    ContextSet::build_obs(&walks, graph.num_nodes(), &ctx_cfg, &self.obs)
                }
            }
            ContextSource::FirstHop => {
                let walks = {
                    let _scope = self.obs.scope("walks");
                    first_hop_walks(graph)
                };
                ContextSet::build_obs(&walks, graph.num_nodes(), &ctx_cfg, &self.obs)
            }
        };
        // Shared with the cache's rebuild rung (rung 3) without a second
        // copy, and with the trainer's own uses via deref.
        let contexts = std::sync::Arc::new(contexts);
        let co = if cfg.coocc_block_size > 0 {
            CoMatrices::build_blocked_obs(&contexts, graph, cfg.coocc_block_size, &self.obs)
        } else {
            CoMatrices::build_obs(&contexts, graph, &self.obs)
        };
        let k_p = contexts.max_count().max(1);
        let pairs = {
            let _scope = self.obs.scope("positive_pairs");
            PositivePairs::select(&co, k_p)
        };
        let sampler = {
            let _scope = self.obs.scope("sampler");
            ContextualNegativeSampler::new(&contexts)
        };
        // Contexts are frozen from here on: materialize every sparse context
        // row once so per-epoch batch assembly is a row-range concatenation.
        let cache = {
            let _scope = self.obs.scope("cache");
            if cfg.max_cache_bytes > 0 {
                ContextRowCache::build_budgeted(graph, &contexts, cfg.encoder, cfg.max_cache_bytes)
            } else {
                ContextRowCache::build(graph, &contexts, cfg.encoder)
            }
        };
        if self.obs.is_enabled() {
            self.obs.add("cache/rows_built", cache.num_contexts() as u64);
            self.obs.add("cache/nnz_built", cache.nnz() as u64);
            self.obs.add("cache/resident_bytes", cache.resident_bytes() as u64);
            let mode = match cache.mode() {
                crate::cache::CacheMode::Materialized => "cache/mode_materialized",
                crate::cache::CacheMode::Compressed => "cache/mode_compressed",
                crate::cache::CacheMode::Rebuild => "cache/mode_rebuild",
            };
            self.obs.add(mode, 1);
        }
        Prepared { contexts, co, pairs, sampler, cache }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use coane_datasets::{social_circle_graph, SocialCircleConfig};

    fn small_graph() -> AttributedGraph {
        let cfg = SocialCircleConfig {
            num_nodes: 120,
            num_communities: 3,
            circles_per_community: 2,
            attr_dim: 60,
            num_edges: 360,
            mixing: 0.1,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        social_circle_graph(&cfg, &mut rng).0
    }

    fn fast_config() -> CoaneConfig {
        CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 20,
            epochs: 3,
            batch_size: 40,
            decoder_hidden: (32, 32),
            num_negatives: 5,
            subsample_t: 1e-3,
            threads: 2,
            ..Default::default()
        }
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coane_trainer_ckpt").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fit_produces_finite_embeddings() {
        let g = small_graph();
        let z = Coane::new(fast_config()).fit(&g);
        assert_eq!(z.shape(), (120, 16));
        z.assert_finite("embedding");
        // Not collapsed: row norms vary and are non-zero.
        let norms: Vec<f32> =
            (0..z.rows()).map(|r| z.row(r).iter().map(|x| x * x).sum::<f32>().sqrt()).collect();
        assert!(norms.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 6, ..fast_config() };
        let (_, stats) = Coane::new(cfg).fit_detailed(&g, |_, _| {});
        assert_eq!(stats.epoch_losses.len(), 6);
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn embeddings_reflect_communities() {
        // Mean intra-community cosine similarity should exceed
        // inter-community similarity after training.
        let g = small_graph();
        let labels = g.labels().unwrap().to_vec();
        let cfg = CoaneConfig { epochs: 8, ..fast_config() };
        let z = Coane::new(cfg).fit(&g);
        let cos = coane_nn::sim::cosine;
        let (mut same, mut ns) = (0.0f64, 0usize);
        let (mut diff, mut nd) = (0.0f64, 0usize);
        for i in 0..z.rows() {
            for j in (i + 1)..z.rows() {
                let c = cos(z.row(i), z.row(j)) as f64;
                if labels[i] == labels[j] {
                    same += c;
                    ns += 1;
                } else {
                    diff += c;
                    nd += 1;
                }
            }
        }
        let (ms, md) = (same / ns as f64, diff / nd as f64);
        assert!(ms > md, "intra {ms} <= inter {md}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_graph();
        let z1 = Coane::new(fast_config()).fit(&g);
        let z2 = Coane::new(fast_config()).fit(&g);
        assert_eq!(z1, z2);
    }

    #[test]
    fn all_ablations_run() {
        let g = small_graph();
        for ablation in [
            Ablation::full(),
            Ablation::wp(),
            Ablation::sg(),
            Ablation::wn(),
            Ablation::ns(),
            Ablation::sgns(),
            Ablation::wf(),
            Ablation::wap(),
        ] {
            let cfg = CoaneConfig { ablation, epochs: 1, ..fast_config() };
            let z = Coane::new(cfg).fit(&g);
            z.assert_finite("ablation embedding");
        }
    }

    #[test]
    fn fc_encoder_and_first_hop_contexts_run() {
        let g = small_graph();
        let cfg = CoaneConfig {
            encoder: crate::config::EncoderKind::FullyConnected,
            epochs: 1,
            ..fast_config()
        };
        Coane::new(cfg).fit(&g);
        let cfg =
            CoaneConfig { context_source: ContextSource::FirstHop, epochs: 1, ..fast_config() };
        Coane::new(cfg).fit(&g);
    }

    #[test]
    fn presampling_mode_runs() {
        let g = small_graph();
        let cfg = CoaneConfig {
            negative_mode: coane_walks::NegativeMode::PreSampling { pool_factor: 3 },
            epochs: 1,
            ..fast_config()
        };
        Coane::new(cfg).fit(&g);
    }

    #[test]
    fn epoch_callback_sees_renewed_embeddings() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 2, ..fast_config() };
        let mut calls = 0usize;
        Coane::new(cfg).fit_detailed(&g, |e, z| {
            assert_eq!(e, calls);
            assert_eq!(z.shape(), (120, 16));
            calls += 1;
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn zero_epochs_still_renews() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 0, ..fast_config() };
        let z = Coane::new(cfg).fit(&g);
        z.assert_finite("untrained embedding");
    }

    #[test]
    fn try_new_rejects_bad_config_without_panicking() {
        let err = Coane::try_new(CoaneConfig { embed_dim: 7, ..fast_config() }).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("embed_dim"), "{err}");
    }

    #[test]
    fn injected_nan_loss_triggers_rollback_and_lr_halving() {
        let g = small_graph();
        let cfg = fast_config();
        let base_lr = cfg.learning_rate;
        let (z, stats) = {
            let trainer = Coane::new(cfg).with_injected_loss_faults(&[1]);
            let (z, _, stats) = trainer.run(&g, None, |_, _| {}).unwrap();
            (z, stats)
        };
        z.assert_finite("post-recovery embedding");
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.epoch_losses.len(), 3, "all epochs completed after retry");
        assert!(
            (stats.final_lr - base_lr * 0.5).abs() < 1e-12,
            "lr {} not halved from {base_lr}",
            stats.final_lr
        );
    }

    #[test]
    fn persistent_nan_exhausts_retries_into_typed_numeric_error() {
        let g = small_graph();
        let cfg = CoaneConfig { max_lr_retries: 2, ..fast_config() };
        // Epoch 1 faults three times: two recoveries, then exhaustion.
        let trainer = Coane::new(cfg).with_injected_loss_faults(&[1, 1, 1]);
        let err = trainer.run(&g, None, |_, _| {}).unwrap_err();
        assert!(matches!(err, CoaneError::Numeric { .. }), "{err:?}");
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("epoch 1"), "{err}");
    }

    #[test]
    fn fresh_fit_resumable_matches_plain_fit() {
        let g = small_graph();
        let dir = ckpt_dir("fresh");
        let trainer = Coane::new(fast_config());
        let (z_resumable, stats) = trainer.fit_resumable(&g, &CheckpointConfig::new(&dir)).unwrap();
        let z_plain = trainer.fit(&g);
        assert_eq!(z_resumable, z_plain, "checkpoint writes must not perturb training");
        assert_eq!(stats.checkpoints_written, 3);
        assert!(stats.resumed_from_epoch.is_none());
    }

    #[test]
    fn resume_continues_bit_identically() {
        let g = small_graph();
        let dir = ckpt_dir("resume");
        // Interrupted run: 2 of 5 epochs, checkpointing each.
        let partial = Coane::new(CoaneConfig { epochs: 2, ..fast_config() });
        partial.fit_resumable(&g, &CheckpointConfig::new(&dir)).unwrap();
        // Resumed run picks up at epoch 2 and finishes 5.
        let full_cfg = CoaneConfig { epochs: 5, ..fast_config() };
        let (z_resumed, stats) =
            Coane::new(full_cfg.clone()).fit_resumable(&g, &CheckpointConfig::new(&dir)).unwrap();
        assert_eq!(stats.resumed_from_epoch, Some(2));
        assert_eq!(stats.epoch_losses.len(), 5);
        // Uninterrupted reference.
        let z_direct = Coane::new(full_cfg).fit(&g);
        assert_eq!(z_resumed, z_direct, "resume is not bit-identical");
    }

    #[test]
    fn resume_rejects_mismatched_config_fingerprint() {
        let g = small_graph();
        let dir = ckpt_dir("fingerprint");
        Coane::new(CoaneConfig { epochs: 1, ..fast_config() })
            .fit_resumable(&g, &CheckpointConfig::new(&dir))
            .unwrap();
        let other = CoaneConfig { seed: 777, epochs: 2, ..fast_config() };
        let err = Coane::new(other).fit_resumable(&g, &CheckpointConfig::new(&dir)).unwrap_err();
        assert!(matches!(err, CoaneError::Checkpoint { .. }), "{err:?}");
        assert_eq!(err.exit_code(), 7);
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn invalid_checkpoint_config_rejected() {
        let g = small_graph();
        let dir = ckpt_dir("invalid-cfg");
        let bad = CheckpointConfig { every_epochs: 0, ..CheckpointConfig::new(&dir) };
        let err = Coane::new(fast_config()).fit_resumable(&g, &bad).unwrap_err();
        assert!(matches!(err, CoaneError::Config { .. }), "{err:?}");
    }
}
