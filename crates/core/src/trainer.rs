//! Algorithm 1: CoANE training with batch updating and per-epoch renewal.

use coane_graph::{AttributedGraph, NodeAttributes, NodeId};
use coane_nn::init::xavier_uniform;
use coane_nn::{Adam, Matrix, Tape};
use coane_walks::{
    CoMatrices, ContextSet, ContextsConfig, ContextualNegativeSampler, PositivePairs, WalkConfig,
    Walker,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::batch::{first_hop_walks, ContextBatch};
use crate::config::{CoaneConfig, ContextSource, NegativeLossKind};
use crate::loss::{attribute_loss, negative_loss, positive_loss, total_loss, LossContext};
use crate::model::CoaneModel;

/// Per-epoch training statistics.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Total objective value per epoch (summed over batches).
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// `k_p` used by the positive likelihood.
    pub k_p: usize,
    /// Total contexts extracted.
    pub num_contexts: usize,
}

/// The CoANE embedder. Construct with a [`CoaneConfig`], call
/// [`Coane::fit`] (or [`Coane::fit_detailed`] for stats and per-epoch
/// callbacks) to obtain the `(n × d')` embedding matrix.
pub struct Coane {
    config: CoaneConfig,
}

/// Pre-processing-phase state: contexts, co-occurrence matrices, positive
/// pairs and the contextual negative sampler.
struct Prepared {
    contexts: ContextSet,
    co: CoMatrices,
    pairs: PositivePairs,
    sampler: ContextualNegativeSampler,
}

impl Coane {
    /// New trainer with `config` (validated).
    pub fn new(config: CoaneConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CoaneConfig {
        &self.config
    }

    /// Trains and returns the final embedding matrix (`n × d'`).
    pub fn fit(&self, graph: &AttributedGraph) -> Matrix {
        self.fit_detailed(graph, |_, _| {}).0
    }

    /// Trains and additionally returns the fitted model (for filter-weight
    /// inspection, Fig. 6b).
    pub fn fit_with_model(&self, graph: &AttributedGraph) -> (Matrix, CoaneModel, TrainStats) {
        self.run(graph, |_, _| {})
    }

    /// Trains, returning embeddings and statistics. `on_epoch(e, z)` is
    /// invoked after every epoch with the *renewed* full embedding matrix —
    /// the hook behind the convergence curves of Fig. 4d / Fig. 6.
    pub fn fit_detailed(
        &self,
        graph: &AttributedGraph,
        on_epoch: impl FnMut(usize, &Matrix),
    ) -> (Matrix, TrainStats) {
        let (z, _, stats) = self.run(graph, on_epoch);
        (z, stats)
    }

    fn run(
        &self,
        graph: &AttributedGraph,
        mut on_epoch: impl FnMut(usize, &Matrix),
    ) -> (Matrix, CoaneModel, TrainStats) {
        let cfg = &self.config;
        // One knob for every parallel stage: walk generation, preprocessing
        // and the training kernels all read the pool's thread count. Results
        // are bit-identical for any setting (see `coane_nn::pool`).
        coane_nn::pool::set_threads(cfg.threads);
        // WF ablation: strip attributes down to identity rows.
        let owned_graph;
        let graph: &AttributedGraph = if cfg.ablation.use_attributes {
            graph
        } else {
            owned_graph = graph.clone().with_attrs(NodeAttributes::identity(graph.num_nodes()));
            &owned_graph
        };

        let n = graph.num_nodes();
        let prep = self.prepare(graph);
        let mut stats = TrainStats {
            k_p: prep.pairs.k_p,
            num_contexts: prep.contexts.num_contexts(),
            ..Default::default()
        };

        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0xC0A0E));
        let mut model = CoaneModel::new(cfg, graph.attr_dim(), &mut rng);
        let mut adam = Adam::new(cfg.learning_rate);
        // Initialize the embedding cache with Xavier, as the paper
        // initializes "both model parameters and embedding vectors".
        let mut z_cache = xavier_uniform(n, cfg.embed_dim, &mut rng);

        let mut local_of: Vec<Option<u32>> = vec![None; n];
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        for epoch in 0..cfg.epochs {
            let started = std::time::Instant::now();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            for batch_nodes in order.chunks(cfg.batch_size) {
                epoch_loss += self.train_batch(
                    graph,
                    &prep,
                    &mut model,
                    &mut adam,
                    &mut z_cache,
                    &mut local_of,
                    batch_nodes,
                    &mut rng,
                );
            }
            stats.epoch_losses.push(epoch_loss);
            stats.epoch_seconds.push(started.elapsed().as_secs_f64());
            // Renew all embeddings with the current filters (Algorithm 1's
            // final "Renew z_v" step, run each epoch so callbacks and the
            // next epoch's cache see consistent embeddings).
            self.renew(graph, &prep.contexts, &model, &mut z_cache);
            on_epoch(epoch, &z_cache);
        }
        if cfg.epochs == 0 {
            self.renew(graph, &prep.contexts, &model, &mut z_cache);
        }
        (z_cache, model, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn train_batch(
        &self,
        graph: &AttributedGraph,
        prep: &Prepared,
        model: &mut CoaneModel,
        adam: &mut Adam,
        z_cache: &mut Matrix,
        local_of: &mut [Option<u32>],
        batch_nodes: &[NodeId],
        rng: &mut ChaCha8Rng,
    ) -> f32 {
        let cfg = &self.config;
        for (k, &v) in batch_nodes.iter().enumerate() {
            local_of[v as usize] = Some(k as u32);
        }
        let batch = ContextBatch::build(graph, &prep.contexts, batch_nodes, cfg.encoder);

        // Draw negatives (outside the tape).
        let negatives: Vec<Vec<NodeId>> = match cfg.ablation.negative {
            NegativeLossKind::None => vec![Vec::new(); batch_nodes.len()],
            NegativeLossKind::Contextual => batch_nodes
                .iter()
                .map(|&v| {
                    prep.sampler.negatives(
                        v,
                        cfg.num_negatives,
                        cfg.negative_mode,
                        batch_nodes,
                        rng,
                    )
                })
                .collect(),
            NegativeLossKind::Uniform => batch_nodes
                .iter()
                .map(|&v| {
                    (0..cfg.num_negatives)
                        .map(|_| {
                            use rand::Rng;
                            let mut u = rng.gen_range(0..graph.num_nodes()) as NodeId;
                            while u == v {
                                u = rng.gen_range(0..graph.num_nodes()) as NodeId;
                            }
                            u
                        })
                        .collect()
                })
                .collect(),
        };

        let mut tape = Tape::new();
        let vars = model.params.attach(&mut tape);
        let z = model.encode(&mut tape, &vars, &batch);
        let decoded = if cfg.ablation.attribute_preservation {
            model.decode(&mut tape, &vars, z)
        } else {
            None
        };
        let ctx = LossContext { batch_nodes, local: local_of, z_cache };
        let l_pos = positive_loss(&mut tape, z, &ctx, cfg.ablation.positive, &prep.pairs, &prep.co);
        let l_neg =
            negative_loss(&mut tape, z, &ctx, cfg.ablation.negative, &negatives, cfg.neg_strength);
        let l_att = attribute_loss(&mut tape, decoded, &batch.x_target, cfg.gamma);
        let loss_value = if let Some(loss) = total_loss(&mut tape, [l_pos, l_neg, l_att]) {
            tape.backward(loss);
            let grads = model.params.collect_grads(&tape, &vars);
            adam.step(&mut model.params, &grads);
            tape.value(loss).item()
        } else {
            0.0
        };

        // Embedding-updating step: write the fresh batch embeddings into the
        // cache so later batches see them.
        let z_val = tape.value(z);
        for (k, &v) in batch_nodes.iter().enumerate() {
            z_cache.row_mut(v as usize).copy_from_slice(z_val.row(k));
            local_of[v as usize] = None;
        }
        loss_value
    }

    /// Recomputes every node's embedding with the current filters.
    fn renew(
        &self,
        graph: &AttributedGraph,
        contexts: &ContextSet,
        model: &CoaneModel,
        z_cache: &mut Matrix,
    ) {
        let n = graph.num_nodes();
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        for chunk in all.chunks(self.config.batch_size.max(64)) {
            let batch = ContextBatch::build(graph, contexts, chunk, self.config.encoder);
            let mut tape = Tape::new();
            let vars = model.params.attach(&mut tape);
            let z = model.encode(&mut tape, &vars, &batch);
            let z_val = tape.value(z);
            for (k, &v) in chunk.iter().enumerate() {
                z_cache.row_mut(v as usize).copy_from_slice(z_val.row(k));
            }
        }
    }

    fn prepare(&self, graph: &AttributedGraph) -> Prepared {
        let cfg = &self.config;
        let walks = match cfg.context_source {
            ContextSource::RandomWalk => {
                let walker = Walker::new(
                    graph,
                    WalkConfig {
                        walks_per_node: cfg.walks_per_node,
                        walk_length: cfg.walk_length,
                        p: 1.0,
                        q: 1.0,
                        seed: cfg.seed,
                    },
                );
                walker.generate_all(cfg.threads)
            }
            ContextSource::FirstHop => first_hop_walks(graph),
        };
        let contexts = ContextSet::build(
            &walks,
            graph.num_nodes(),
            &ContextsConfig {
                context_size: cfg.context_size,
                subsample_t: match cfg.context_source {
                    ContextSource::RandomWalk => cfg.subsample_t,
                    // first-hop pseudo-walks already yield one context per
                    // directed edge; subsampling would just lose edges.
                    ContextSource::FirstHop => f64::INFINITY,
                },
                seed: cfg.seed ^ 0x51_7e,
            },
        );
        let co = CoMatrices::build(&contexts, graph);
        let k_p = contexts.max_count().max(1);
        let pairs = PositivePairs::select(&co, k_p);
        let sampler = ContextualNegativeSampler::new(&contexts);
        Prepared { contexts, co, pairs, sampler }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use coane_datasets::{social_circle_graph, SocialCircleConfig};

    fn small_graph() -> AttributedGraph {
        let cfg = SocialCircleConfig {
            num_nodes: 120,
            num_communities: 3,
            circles_per_community: 2,
            attr_dim: 60,
            num_edges: 360,
            mixing: 0.1,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        social_circle_graph(&cfg, &mut rng).0
    }

    fn fast_config() -> CoaneConfig {
        CoaneConfig {
            embed_dim: 16,
            context_size: 3,
            walk_length: 20,
            epochs: 3,
            batch_size: 40,
            decoder_hidden: (32, 32),
            num_negatives: 5,
            subsample_t: 1e-3,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn fit_produces_finite_embeddings() {
        let g = small_graph();
        let z = Coane::new(fast_config()).fit(&g);
        assert_eq!(z.shape(), (120, 16));
        z.assert_finite("embedding");
        // Not collapsed: row norms vary and are non-zero.
        let norms: Vec<f32> =
            (0..z.rows()).map(|r| z.row(r).iter().map(|x| x * x).sum::<f32>().sqrt()).collect();
        assert!(norms.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 6, ..fast_config() };
        let (_, stats) = Coane::new(cfg).fit_detailed(&g, |_, _| {});
        assert_eq!(stats.epoch_losses.len(), 6);
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn embeddings_reflect_communities() {
        // Mean intra-community cosine similarity should exceed
        // inter-community similarity after training.
        let g = small_graph();
        let labels = g.labels().unwrap().to_vec();
        let cfg = CoaneConfig { epochs: 8, ..fast_config() };
        let z = Coane::new(cfg).fit(&g);
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb + 1e-12)
        };
        let (mut same, mut ns) = (0.0f64, 0usize);
        let (mut diff, mut nd) = (0.0f64, 0usize);
        for i in 0..z.rows() {
            for j in (i + 1)..z.rows() {
                let c = cos(z.row(i), z.row(j)) as f64;
                if labels[i] == labels[j] {
                    same += c;
                    ns += 1;
                } else {
                    diff += c;
                    nd += 1;
                }
            }
        }
        let (ms, md) = (same / ns as f64, diff / nd as f64);
        assert!(ms > md, "intra {ms} <= inter {md}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_graph();
        let z1 = Coane::new(fast_config()).fit(&g);
        let z2 = Coane::new(fast_config()).fit(&g);
        assert_eq!(z1, z2);
    }

    #[test]
    fn all_ablations_run() {
        let g = small_graph();
        for ablation in [
            Ablation::full(),
            Ablation::wp(),
            Ablation::sg(),
            Ablation::wn(),
            Ablation::ns(),
            Ablation::sgns(),
            Ablation::wf(),
            Ablation::wap(),
        ] {
            let cfg = CoaneConfig { ablation, epochs: 1, ..fast_config() };
            let z = Coane::new(cfg).fit(&g);
            z.assert_finite("ablation embedding");
        }
    }

    #[test]
    fn fc_encoder_and_first_hop_contexts_run() {
        let g = small_graph();
        let cfg = CoaneConfig {
            encoder: crate::config::EncoderKind::FullyConnected,
            epochs: 1,
            ..fast_config()
        };
        Coane::new(cfg).fit(&g);
        let cfg =
            CoaneConfig { context_source: ContextSource::FirstHop, epochs: 1, ..fast_config() };
        Coane::new(cfg).fit(&g);
    }

    #[test]
    fn presampling_mode_runs() {
        let g = small_graph();
        let cfg = CoaneConfig {
            negative_mode: coane_walks::NegativeMode::PreSampling { pool_factor: 3 },
            epochs: 1,
            ..fast_config()
        };
        Coane::new(cfg).fit(&g);
    }

    #[test]
    fn epoch_callback_sees_renewed_embeddings() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 2, ..fast_config() };
        let mut calls = 0usize;
        Coane::new(cfg).fit_detailed(&g, |e, z| {
            assert_eq!(e, calls);
            assert_eq!(z.shape(), (120, 16));
            calls += 1;
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn zero_epochs_still_renews() {
        let g = small_graph();
        let cfg = CoaneConfig { epochs: 0, ..fast_config() };
        let z = Coane::new(cfg).fit(&g);
        z.assert_finite("untrained embedding");
    }
}
