//! Structured telemetry records emitted by the trainer.
//!
//! Each type here is the payload of one [`coane_obs::Obs::event`] kind; the
//! sink serializes it to one JSONL line with a `"t"` timestamp and
//! `"event"` kind added (see DESIGN.md §2.7 for the full schema). All
//! values are *observations* of the training run — recording them never
//! feeds back into the computation, so embeddings are bit-identical with
//! telemetry on or off.

use serde::{Deserialize, Serialize};

/// Per-epoch record (`"event": "epoch"`): the three objective terms of
/// §3.3, optimizer state, throughput, and pipeline health.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Total objective summed over batches (what [`crate::TrainStats`]
    /// reports).
    pub loss: f64,
    /// Positive graph-likelihood term `L_pos`, summed over batches.
    pub loss_pos: f64,
    /// Contextual negative-sampling term, summed over batches.
    pub loss_neg: f64,
    /// Attribute-preservation term `γ·MSE`, summed over batches.
    pub loss_att: f64,
    /// Mean per-batch global gradient L2 norm (over all parameters).
    pub grad_norm: f64,
    /// Learning rate in effect this epoch (halved by NaN recovery).
    pub lr: f64,
    /// Wall-clock seconds for the epoch (train + renew excluded).
    pub seconds: f64,
    /// Nodes trained this epoch (one pass = all nodes).
    pub nodes: u64,
    /// Training throughput: `nodes / seconds`.
    pub nodes_per_sec: f64,
    /// Batches processed.
    pub batches: u64,
    /// Context rows served from the context-row cache.
    pub cache_rows: u64,
    /// Sparse non-zeros processed through the encoder.
    pub nnz: u64,
    /// Configured prefetch pipeline depth.
    pub prefetch_depth: u64,
    /// Mean number of batches ready ahead of the consumer (0 ..= depth);
    /// a value near the depth means the pipeline is keeping up.
    pub prefetch_occupancy: f64,
}

/// Non-finite-loss recovery record (`"event": "recovery"`): the NaN guard
/// rolled the epoch back and halved the learning rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Epoch that produced the non-finite loss (it will be retried).
    pub epoch: u64,
    /// Learning rate after halving.
    pub lr: f64,
    /// Retries remaining before training fails with a `Numeric` error.
    pub retries_left: u64,
}

/// Checkpoint-write record (`"event": "checkpoint"`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Number of completed epochs the checkpoint captures.
    pub epoch: u64,
    /// Wall-clock seconds the atomic write took.
    pub write_secs: f64,
}

/// Resume record (`"event": "resume"`): training restarted from a valid
/// checkpoint instead of from scratch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResumeRecord {
    /// Epoch the checkpoint restored to (training continues from here).
    pub epoch: u64,
}
