//! CoANE hyperparameters and ablation switches.

use coane_error::CoaneError;
use coane_walks::NegativeMode;

/// Which feature-extraction layer encodes a context (Fig. 6a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// The paper's 1-D convolution: a distinct `d×d'` weight block per
    /// context position, capturing positional information.
    Convolution,
    /// The fully-connected control: one shared `d×d'` block for all
    /// positions (position-agnostic), as in the paper's FC-layer comparison.
    FullyConnected,
}

/// The positive structure-preservation term (§3.3.1 and Fig. 6c cases).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PositiveLossKind {
    /// CoANE's positive graph likelihood on top-`k_p` entries of `D̃`,
    /// with the `Z = [L|R]` split.
    GraphLikelihood,
    /// The plain skip-gram positive term (`SG` ablation): `−log σ(z_i·z_j)`
    /// over co-occurring pairs, no `[L|R]` split, no `D¹` boost, no top-`k_p`.
    SkipGram,
    /// No positive term (`WP` ablation).
    None,
}

/// The negative-sampling term (§3.3.2 and Fig. 6c cases).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeLossKind {
    /// CoANE's contextually negative sampling: negatives drawn from
    /// `P_V(v) ∝ |context(v)|` outside the target's context, squared-dot
    /// penalty with strength `a`.
    Contextual,
    /// Word2vec-style uniform negative sampling (`NS` ablation):
    /// uniform negatives, `−log σ(−z_i·z_j)` penalty.
    Uniform,
    /// No negative term (`WN` ablation).
    None,
}

/// How structural contexts are generated (Fig. 5 / Fig. 6a comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContextSource {
    /// Random-walk windows (the paper's method).
    RandomWalk,
    /// First-hop neighbours only: each context is `[u, v, u']` slots drawn
    /// from direct neighbours — the paper's "first-hop neighbors" control.
    FirstHop,
}

/// Ablation switches reproducing §4.5's eight cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Positive term (WP = `None`, SG = `SkipGram`).
    pub positive: PositiveLossKind,
    /// Negative term (WN = `None`, NS = `Uniform`).
    pub negative: NegativeLossKind,
    /// `false` replaces node attributes with one-hot identity rows (WF).
    pub use_attributes: bool,
    /// `false` drops the attribute-preservation loss (WAP).
    pub attribute_preservation: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            positive: PositiveLossKind::GraphLikelihood,
            negative: NegativeLossKind::Contextual,
            use_attributes: true,
            attribute_preservation: true,
        }
    }
}

impl Ablation {
    /// The complete CoANE objective.
    pub fn full() -> Self {
        Self::default()
    }

    /// WP — without positive graph likelihood.
    pub fn wp() -> Self {
        Self { positive: PositiveLossKind::None, ..Self::default() }
    }

    /// SG — skip-gram positive term.
    pub fn sg() -> Self {
        Self { positive: PositiveLossKind::SkipGram, ..Self::default() }
    }

    /// WN — without contextually negative sampling.
    pub fn wn() -> Self {
        Self { negative: NegativeLossKind::None, ..Self::default() }
    }

    /// NS — uniform negative sampling.
    pub fn ns() -> Self {
        Self { negative: NegativeLossKind::Uniform, ..Self::default() }
    }

    /// SGNS — skip-gram + uniform negative sampling.
    pub fn sgns() -> Self {
        Self {
            positive: PositiveLossKind::SkipGram,
            negative: NegativeLossKind::Uniform,
            ..Self::default()
        }
    }

    /// WF — without node attributes (identity features).
    pub fn wf() -> Self {
        Self { use_attributes: false, ..Self::default() }
    }

    /// WAP — without attribute preservation.
    pub fn wap() -> Self {
        Self { attribute_preservation: false, ..Self::default() }
    }
}

/// Full CoANE configuration. Defaults follow §4.1: `d' = 128`, `r = 1`,
/// `l = 80`, `t = 1e-5`, `k = 20`, Adam with lr `1e-3`, 2-hidden-layer ReLU
/// decoder; `a`, `c`, `γ` sit inside their published tuning ranges.
#[derive(Clone, Debug)]
pub struct CoaneConfig {
    /// Embedding dimensionality `d'` (must be even for the `[L|R]` split).
    pub embed_dim: usize,
    /// Context window size `c` (odd).
    pub context_size: usize,
    /// Walks per node `r`.
    pub walks_per_node: usize,
    /// Walk length `l`.
    pub walk_length: usize,
    /// Subsampling threshold `t`.
    pub subsample_t: f64,
    /// Number of negative samples `k`.
    pub num_negatives: usize,
    /// Negative-loss strength `a` (tuned in `[1e-5, 1e-1]`).
    pub neg_strength: f32,
    /// Attribute-preservation weight `γ` (tuned in `[1e3, 1e7]`; note the
    /// MSE here averages over `b·d` entries, so the effective per-entry
    /// weight matches the paper's summed convention at `γ/d ≈` theirs).
    pub gamma: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Maximum epochs `N_max`.
    pub epochs: usize,
    /// Training-batch node count `n_B`.
    pub batch_size: usize,
    /// Pre- vs batch-sampling of negatives (§3.3.2).
    pub negative_mode: NegativeMode,
    /// Hidden widths of the 2-hidden-layer ReLU attribute decoder.
    pub decoder_hidden: (usize, usize),
    /// Encoder layer kind (Fig. 6a).
    pub encoder: EncoderKind,
    /// Context generation strategy (Fig. 5 / 6a).
    pub context_source: ContextSource,
    /// Objective ablation switches (Fig. 6c).
    pub ablation: Ablation,
    /// Worker threads for all parallel compute: walk generation,
    /// preprocessing and the training kernels (set process-wide via
    /// `coane_nn::pool::set_threads` when `fit` starts). Embeddings are
    /// bit-identical for any value; this only controls throughput.
    pub threads: usize,
    /// Bound on non-finite-loss recovery attempts: when an epoch produces a
    /// NaN/Inf loss or parameter, the trainer rolls back to the last healthy
    /// epoch snapshot and halves the learning rate, at most this many times
    /// across the run before surfacing [`CoaneError::Numeric`].
    pub max_lr_retries: usize,
    /// Node-chunk size for no-grad inference passes (per-epoch embedding
    /// renewal and inductive encoding). Per-node outputs are independent, so
    /// like `threads` this is a pure throughput knob: embeddings are
    /// bit-identical for any value and it is excluded from the checkpoint
    /// config fingerprint.
    pub infer_batch_size: usize,
    /// Depth of the training-batch prefetch pipeline: how many upcoming
    /// batches may be assembled on pool workers while the current one trains.
    /// `0` disables prefetching (batches assemble inline). Consumption order
    /// is the batch order either way and negatives stay on the main-thread
    /// RNG, so this is also a pure throughput knob excluded from the
    /// checkpoint config fingerprint.
    pub prefetch_batches: usize,
    /// Memory budget in bytes for the context-row cache. `0` means
    /// unbounded (always materialize). When set, the cache walks a fallback
    /// ladder — materialized → delta+varint compressed → per-batch rebuild
    /// (DESIGN.md §2.12) — picking the fastest representation that fits.
    /// Every rung yields bit-identical embeddings, so like `threads` this is
    /// excluded from the checkpoint config fingerprint.
    pub max_cache_bytes: usize,
    /// Walk-block size for streaming context generation: walks are produced
    /// and consumed in blocks of this many walks through a bounded channel
    /// instead of materializing all `n·r` walks at once. `0` means
    /// materialize (the seed behavior). Streaming reproduces the
    /// materialized contexts bit for bit at any block size or thread count,
    /// so this is a pure memory/throughput knob excluded from the
    /// checkpoint config fingerprint. Only the random-walk context source
    /// streams; `FirstHop` ignores this.
    pub walk_block_size: usize,
    /// Node-range block size for the co-occurrence accumulation: `D` is
    /// built per block of this many nodes and merged in deterministic block
    /// order, bounding the transient pair buffer to one block's pairs. `0`
    /// means monolithic (the seed behavior). Bit-identical to the
    /// monolithic builder for any value, so it is excluded from the
    /// checkpoint config fingerprint.
    pub coocc_block_size: usize,
    /// RNG seed (walks, init, batching, sampling).
    pub seed: u64,
}

impl Default for CoaneConfig {
    fn default() -> Self {
        Self {
            embed_dim: 128,
            context_size: 5,
            walks_per_node: 1,
            walk_length: 80,
            subsample_t: 1e-5,
            num_negatives: 20,
            neg_strength: 1e-3,
            gamma: 10.0,
            learning_rate: 1e-3,
            epochs: 10,
            batch_size: 256,
            negative_mode: NegativeMode::BatchSampling,
            decoder_hidden: (256, 256),
            encoder: EncoderKind::Convolution,
            context_source: ContextSource::RandomWalk,
            ablation: Ablation::full(),
            threads: 4,
            max_lr_retries: 3,
            infer_batch_size: 256,
            prefetch_batches: 2,
            max_cache_bytes: 0,
            walk_block_size: 0,
            coocc_block_size: 0,
            seed: 42,
        }
    }
}

impl CoaneConfig {
    /// Validates invariants (even `d'`, odd `c`, positive sizes). Returns a
    /// typed [`CoaneError::Config`] describing the first violation, so
    /// user-supplied configurations (CLI flags, config files) surface a
    /// message and an exit code instead of a panic.
    pub fn validate(&self) -> Result<(), CoaneError> {
        if self.embed_dim < 2 || !self.embed_dim.is_multiple_of(2) {
            return Err(CoaneError::config(format!(
                "embed_dim must be even and >= 2 (the [L|R] split), got {}",
                self.embed_dim
            )));
        }
        if self.context_size % 2 != 1 {
            return Err(CoaneError::config(format!(
                "context_size must be odd, got {}",
                self.context_size
            )));
        }
        if self.walks_per_node < 1 {
            return Err(CoaneError::config("walks_per_node must be >= 1"));
        }
        if self.walk_length < 1 {
            return Err(CoaneError::config("walk_length must be >= 1"));
        }
        if self.batch_size < 1 {
            return Err(CoaneError::config("batch_size must be >= 1"));
        }
        if self.num_negatives < 1 && self.ablation.negative != NegativeLossKind::None {
            return Err(CoaneError::config(
                "num_negatives must be >= 1 unless the negative term is ablated",
            ));
        }
        if !self.neg_strength.is_finite() || self.neg_strength < 0.0 {
            return Err(CoaneError::config(format!(
                "neg_strength must be finite and >= 0, got {}",
                self.neg_strength
            )));
        }
        if !self.gamma.is_finite() || self.gamma < 0.0 {
            return Err(CoaneError::config(format!(
                "gamma must be finite and >= 0, got {}",
                self.gamma
            )));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(CoaneError::config(format!(
                "learning_rate must be finite and > 0, got {}",
                self.learning_rate
            )));
        }
        if self.subsample_t.is_nan() || self.subsample_t < 0.0 {
            return Err(CoaneError::config(format!(
                "subsample_t must be >= 0 (infinity disables subsampling), got {}",
                self.subsample_t
            )));
        }
        if self.infer_batch_size < 1 {
            return Err(CoaneError::config("infer_batch_size must be >= 1"));
        }
        if self.max_lr_retries > 64 {
            return Err(CoaneError::config(format!(
                "max_lr_retries must be <= 64 (learning rate underflows beyond that), got {}",
                self.max_lr_retries
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid_and_paper_aligned() {
        let c = CoaneConfig::default();
        c.validate().unwrap();
        assert_eq!(c.embed_dim, 128);
        assert_eq!(c.walks_per_node, 1);
        assert_eq!(c.walk_length, 80);
        assert_eq!(c.num_negatives, 20);
        assert!((c.subsample_t - 1e-5).abs() < 1e-12);
        assert!((c.learning_rate - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn ablation_constructors() {
        assert_eq!(Ablation::wp().positive, PositiveLossKind::None);
        assert_eq!(Ablation::sg().positive, PositiveLossKind::SkipGram);
        assert_eq!(Ablation::wn().negative, NegativeLossKind::None);
        assert_eq!(Ablation::ns().negative, NegativeLossKind::Uniform);
        let sgns = Ablation::sgns();
        assert_eq!(sgns.positive, PositiveLossKind::SkipGram);
        assert_eq!(sgns.negative, NegativeLossKind::Uniform);
        assert!(!Ablation::wf().use_attributes);
        assert!(!Ablation::wap().attribute_preservation);
        assert_eq!(Ablation::full(), Ablation::default());
    }

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        let cases: Vec<(CoaneConfig, &str)> = vec![
            (CoaneConfig { embed_dim: 127, ..Default::default() }, "even"),
            (CoaneConfig { context_size: 4, ..Default::default() }, "odd"),
            (CoaneConfig { walks_per_node: 0, ..Default::default() }, "walks_per_node"),
            (CoaneConfig { walk_length: 0, ..Default::default() }, "walk_length"),
            (CoaneConfig { batch_size: 0, ..Default::default() }, "batch_size"),
            (CoaneConfig { num_negatives: 0, ..Default::default() }, "num_negatives"),
            (CoaneConfig { neg_strength: -1.0, ..Default::default() }, "neg_strength"),
            (CoaneConfig { gamma: f32::NAN, ..Default::default() }, "gamma"),
            (CoaneConfig { learning_rate: 0.0, ..Default::default() }, "learning_rate"),
            (CoaneConfig { subsample_t: f64::NAN, ..Default::default() }, "subsample_t"),
            (CoaneConfig { max_lr_retries: 100, ..Default::default() }, "max_lr_retries"),
            (CoaneConfig { infer_batch_size: 0, ..Default::default() }, "infer_batch_size"),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err(needle);
            assert!(matches!(err, CoaneError::Config { .. }), "{needle}: wrong variant");
            assert!(err.to_string().contains(needle), "{err} missing {needle:?}");
            assert_eq!(err.exit_code(), 2);
        }
        // The negative-term ablation lifts the num_negatives requirement.
        CoaneConfig { num_negatives: 0, ablation: Ablation::wn(), ..Default::default() }
            .validate()
            .unwrap();
    }
}
