//! The CoANE parameter container and encoder/decoder forward passes.
//!
//! Because the paper's 1-D convolution uses receptive field = stride = `c`,
//! each context yields exactly one feature vector
//! `r*_{vi,·} = Θᵀ vec(R_vi)`, so the whole filter bank is one weight matrix
//! `Θ ∈ R^{(c·d)×d'}` applied to the sparse flattened context rows, followed
//! by 1-D average pooling (a segment mean over each node's contexts). This
//! is mathematically identical to Eq. "r*_vij = Σ R_vi ⊙ Θ_j" of §3.2.

use std::sync::Arc;

use coane_nn::init::xavier_uniform;
use coane_nn::layers::{Activation, Mlp};
use coane_nn::{Matrix, ParamId, Params, Tape, Var};
use rand::Rng;

use crate::batch::ContextBatch;
use crate::config::{CoaneConfig, EncoderKind};

/// CoANE's trainable parameters: the filter bank `Θ` and (unless ablated)
/// the attribute-decoder MLP.
pub struct CoaneModel {
    /// All trainable matrices.
    pub params: Params,
    theta: ParamId,
    decoder: Option<Mlp>,
    encoder: EncoderKind,
    context_size: usize,
    attr_dim: usize,
    embed_dim: usize,
}

impl std::fmt::Debug for CoaneModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoaneModel")
            .field("encoder", &self.encoder)
            .field("context_size", &self.context_size)
            .field("attr_dim", &self.attr_dim)
            .field("embed_dim", &self.embed_dim)
            .field("has_decoder", &self.decoder.is_some())
            .field("num_scalars", &self.params.num_scalars())
            .finish()
    }
}

impl CoaneModel {
    /// Initializes the model for graphs with `attr_dim` attributes.
    ///
    /// # Panics
    /// Panics on an invalid configuration — validate with
    /// [`CoaneConfig::validate`] first when the config comes from external
    /// input (the trainer's `try_*` entry points do).
    pub fn new<R: Rng>(config: &CoaneConfig, attr_dim: usize, rng: &mut R) -> Self {
        config.validate().expect("invalid CoaneConfig");
        let mut params = Params::new();
        let in_cols = match config.encoder {
            EncoderKind::Convolution => config.context_size * attr_dim,
            EncoderKind::FullyConnected => attr_dim,
        };
        let theta = params.add("theta", xavier_uniform(in_cols, config.embed_dim, rng));
        let decoder = config.ablation.attribute_preservation.then(|| {
            Mlp::new(
                &mut params,
                "decoder",
                &[config.embed_dim, config.decoder_hidden.0, config.decoder_hidden.1, attr_dim],
                Activation::Relu,
                rng,
            )
        });
        Self {
            params,
            theta,
            decoder,
            encoder: config.encoder,
            context_size: config.context_size,
            attr_dim,
            embed_dim: config.embed_dim,
        }
    }

    /// Embedding dimensionality `d'`.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Whether the attribute decoder is present.
    pub fn has_decoder(&self) -> bool {
        self.decoder.is_some()
    }

    /// Encodes a batch: sparse convolution over every context followed by
    /// average pooling per node. Output shape `(batch, d')`.
    pub fn encode(&self, tape: &mut Tape, vars: &[Var], batch: &ContextBatch) -> Var {
        let theta = vars[self.theta.index()];
        let conv = tape.spmm(Arc::clone(&batch.rb), theta);
        tape.segment_mean(conv, Arc::clone(&batch.offsets))
    }

    /// No-grad encoder forward: the same float operations as
    /// [`CoaneModel::encode`]'s tape path (`matmul_dense` then the shared
    /// [`coane_nn::tape::segment_mean_forward`]) without recording a graph
    /// or cloning `Θ` onto a tape — so the result is bit-identical to the
    /// tape encoder while being safe to run from pool workers. Used by
    /// per-epoch embedding renewal and inductive inference.
    pub fn encode_nograd(&self, batch: &ContextBatch) -> Matrix {
        let conv = batch.rb.matmul_dense(self.params.get(self.theta));
        coane_nn::tape::segment_mean_forward(&conv, &batch.offsets)
    }

    /// Decodes embeddings back to attribute space (`None` under the WAP
    /// ablation). Output shape `(batch, d)`.
    pub fn decode(&self, tape: &mut Tape, vars: &[Var], z: Var) -> Option<Var> {
        self.decoder.as_ref().map(|mlp| mlp.forward(tape, vars, z))
    }

    /// The raw filter-bank matrix `Θ` (`(c·d) × d'`).
    pub fn theta_matrix(&self) -> &Matrix {
        self.params.get(self.theta)
    }

    /// The learned filter bank, reshaped per filter: element `(j, p, a)` is
    /// filter `j`'s weight for attribute `a` at context position `p` — the
    /// tensor visualized in Fig. 6b. For the fully-connected encoder the
    /// position axis has length 1.
    pub fn filters(&self) -> FilterView<'_> {
        FilterView {
            theta: self.params.get(self.theta),
            positions: match self.encoder {
                EncoderKind::Convolution => self.context_size,
                EncoderKind::FullyConnected => 1,
            },
            attr_dim: self.attr_dim,
        }
    }
}

/// Read-only view of the filter bank with `(filter, position, attribute)`
/// indexing.
pub struct FilterView<'a> {
    theta: &'a Matrix,
    positions: usize,
    attr_dim: usize,
}

impl FilterView<'_> {
    /// Number of filters (`d'`).
    pub fn num_filters(&self) -> usize {
        self.theta.cols()
    }

    /// Number of context positions covered.
    pub fn num_positions(&self) -> usize {
        self.positions
    }

    /// Attribute dimensionality.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Weight of `filter` for `attribute` at context `position`.
    pub fn weight(&self, filter: usize, position: usize, attribute: usize) -> f32 {
        assert!(position < self.positions && attribute < self.attr_dim);
        self.theta.get(position * self.attr_dim + attribute, filter)
    }

    /// Mean filter weight per `(position, attribute)` cell, averaged over all
    /// filters — the aggregate heat-map of Fig. 6b.
    pub fn mean_abs_by_position(&self) -> Matrix {
        let mut out = Matrix::zeros(self.positions, self.attr_dim);
        let nf = self.num_filters() as f32;
        for p in 0..self.positions {
            for a in 0..self.attr_dim {
                let mut s = 0.0f32;
                for f in 0..self.num_filters() {
                    s += self.weight(f, p, a).abs();
                }
                out.set(p, a, s / nf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ContextBatch;
    use coane_graph::{GraphBuilder, NodeAttributes};
    use coane_walks::{ContextSet, ContextsConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (coane_graph::AttributedGraph, ContextSet) {
        let mut b = GraphBuilder::new(4, 6);
        b.add_edges(&[(0, 1), (1, 2), (2, 3)]);
        let g = b
            .with_attrs(NodeAttributes::from_sparse_rows(
                6,
                &[vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)], vec![(3, 1.0)]],
            ))
            .build();
        let walks = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]];
        let cs = ContextSet::build(
            &walks,
            4,
            &ContextsConfig { context_size: 3, subsample_t: f64::INFINITY, seed: 0 },
        );
        (g, cs)
    }

    fn small_config() -> CoaneConfig {
        CoaneConfig { embed_dim: 8, context_size: 3, decoder_hidden: (8, 8), ..Default::default() }
    }

    #[test]
    fn encode_shapes() {
        let (g, cs) = fixture();
        let cfg = small_config();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoaneModel::new(&cfg, g.attr_dim(), &mut rng);
        let batch = ContextBatch::build(&g, &cs, &[0, 1, 2], EncoderKind::Convolution);
        let mut t = Tape::new();
        let vars = model.params.attach(&mut t);
        let z = model.encode(&mut t, &vars, &batch);
        assert_eq!(t.value(z).shape(), (3, 8));
        let xhat = model.decode(&mut t, &vars, z).unwrap();
        assert_eq!(t.value(xhat).shape(), (3, 6));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn encode_matches_manual_convolution() {
        // One context, identity-ish attrs: z must equal the mean over
        // contexts of Θᵀ vec(R), here a single row of Θ sums.
        let (g, cs) = fixture();
        let cfg = small_config();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = CoaneModel::new(&cfg, g.attr_dim(), &mut rng);
        let batch = ContextBatch::build(&g, &cs, &[1], EncoderKind::Convolution);
        let mut t = Tape::new();
        let vars = model.params.attach(&mut t);
        let z = model.encode(&mut t, &vars, &batch);
        // manual: for each context row, sum theta rows at the active columns.
        let theta = model.theta_matrix();
        let dense = batch.rb.to_dense();
        let mut manual = [0.0f32; 8];
        let n_ctx = batch.num_contexts() as f32;
        for ctx in 0..batch.num_contexts() {
            for col in 0..dense.cols() {
                let w = dense.get(ctx, col);
                if w != 0.0 {
                    for j in 0..8 {
                        manual[j] += w * theta.get(col, j) / n_ctx;
                    }
                }
            }
        }
        for (j, &m) in manual.iter().enumerate() {
            assert!((t.value(z).get(0, j) - m).abs() < 1e-5, "filter {j}");
        }
    }

    #[test]
    fn encode_nograd_matches_tape_encoder_bitwise() {
        let (g, cs) = fixture();
        let cfg = small_config();
        for encoder in [EncoderKind::Convolution, EncoderKind::FullyConnected] {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let model =
                CoaneModel::new(&CoaneConfig { encoder, ..cfg.clone() }, g.attr_dim(), &mut rng);
            let batch = ContextBatch::build(&g, &cs, &[0, 1, 2, 3], encoder);
            let mut t = Tape::new();
            let vars = model.params.attach(&mut t);
            let z = model.encode(&mut t, &vars, &batch);
            let z_nograd = model.encode_nograd(&batch);
            assert_eq!(t.value(z).as_slice(), z_nograd.as_slice(), "{encoder:?}");
        }
    }

    #[test]
    fn wap_drops_decoder() {
        let cfg = CoaneConfig { ablation: crate::config::Ablation::wap(), ..small_config() };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = CoaneModel::new(&cfg, 6, &mut rng);
        assert!(!model.has_decoder());
        let mut t = Tape::new();
        let vars = model.params.attach(&mut t);
        let z = t.constant(Matrix::zeros(2, 8));
        assert!(model.decode(&mut t, &vars, z).is_none());
    }

    #[test]
    fn filter_view_indexing() {
        let cfg = small_config();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CoaneModel::new(&cfg, 6, &mut rng);
        let f = model.filters();
        assert_eq!(f.num_filters(), 8);
        assert_eq!(f.num_positions(), 3);
        assert_eq!(f.attr_dim(), 6);
        // weight(j, p, a) must address theta[(p*d + a), j]
        let theta = model.theta_matrix();
        assert_eq!(f.weight(2, 1, 4), theta.get(6 + 4, 2));
        let heat = f.mean_abs_by_position();
        assert_eq!(heat.shape(), (3, 6));
        assert!(heat.as_slice().iter().all(|&x| x >= 0.0));
    }
}
